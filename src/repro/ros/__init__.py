"""A minimal ROS2-like layer on top of the DDS middleware.

Mirrors the structure the paper instruments: application logic lives in
callbacks dispatched by a per-process **single-threaded executor**
(:class:`~repro.ros.executor.SingleThreadedExecutor`); subscriptions and
timers feed that executor; publishers wrap DDS writers.  Every ROS
process gets a distinct scheduling priority, as in the paper's
evaluation setup ("We assigned distinct real-time priorities to every
ROS process in descending order").

Callbacks may be plain functions or generators yielding
:class:`~repro.sim.threads.Compute` requests, so services can model
data-dependent execution times that are preemptible by higher-priority
threads (ksoftirq, the monitor thread).
"""

from repro.ros.executor import SingleThreadedExecutor
from repro.ros.executors import (
    EXECUTOR_MODELS,
    CallbackGroup,
    CallbackSpec,
    Dispatch,
    EventLoop,
    Ros2MultiThreadedExecutor,
    Ros2SingleThreadedExecutor,
    run_schedule,
)
from repro.ros.node import Node, Publisher, RosTimer, Subscription

__all__ = [
    "SingleThreadedExecutor",
    "EXECUTOR_MODELS",
    "CallbackGroup",
    "CallbackSpec",
    "Dispatch",
    "EventLoop",
    "Ros2MultiThreadedExecutor",
    "Ros2SingleThreadedExecutor",
    "run_schedule",
    "Node",
    "Publisher",
    "Subscription",
    "RosTimer",
]
