"""Faithful ROS 2 executor models: dispatch semantics as policies.

The existing :class:`~repro.ros.executor.SingleThreadedExecutor` is a
plain FIFO work queue on a simulated thread.  Real rclcpp executors are
not FIFO queues, and the difference is load-bearing for chain latency
("Timing Analysis and Priority-driven Enhancements of ROS 2
Multi-threaded Executors"; Casini et al.'s response-time analysis):

- **Polling-point semantics** (single-threaded executor): the executor
  collects a *ready set* at each wait point -- at most one message per
  subscription -- and processes that whole snapshot to completion before
  polling again.  Work arriving mid-snapshot waits for the next polling
  point, however urgent.
- **Wait-set ordering**: within a ready set, timers run before
  subscriptions, each in registration order -- not arrival order.
- **Callback groups** (multi-threaded executor): a *mutually exclusive*
  group admits one in-flight callback at a time even with idle worker
  threads; a *reentrant* group admits any number.
- **Priority-driven dispatch** (the PiCAS-style enhancement): ready
  callbacks are picked strictly by priority instead of wait-set order,
  removing the polling-point latency anomaly for urgent chains.

These models run on a minimal deterministic event loop
(:class:`EventLoop`) so conformance tests can pin hand-computed
schedules, and the DAG fault stack drives whole scenarios through them.
All tie-breaks are explicit (submission sequence), so schedules are
reproducible run to run and across processes.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Wait-set kind rank: timers are polled before subscriptions (rclcpp).
_KIND_RANK = {"timer": 0, "subscription": 1}

#: Dispatch policies.
POLICY_WAITSET = "waitset"      # rclcpp wait-set order (kind, registration)
POLICY_PRIORITY = "priority"    # priority-driven (PiCAS-style)


class EventLoop:
    """Minimal deterministic discrete-event loop (integer ns)."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0

    def schedule_at(self, time: int, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute time *time* (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run *fn* after *delay* ns."""
        self.schedule_at(self.now + delay, fn)

    def run(self, until: Optional[int] = None) -> None:
        """Drain the event heap (up to time *until*, if given)."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
        if until is not None and until > self.now:
            self.now = until


@dataclass(frozen=True)
class CallbackSpec:
    """One registered callback of an executor."""

    name: str
    kind: str = "subscription"  # "timer" | "subscription"
    group: str = "default"
    #: Larger = more urgent (used by the priority-driven policy only).
    priority: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KIND_RANK:
            raise ValueError(f"unknown callback kind {self.kind!r}")


@dataclass(frozen=True)
class CallbackGroup:
    """rclcpp callback group: mutually exclusive unless *reentrant*."""

    name: str
    reentrant: bool = False


@dataclass(frozen=True)
class Dispatch:
    """One executed callback instance (the conformance-test record)."""

    callback: str
    release: int
    start: int
    finish: int
    thread: int


@dataclass
class _Job:
    callback: str
    release: int
    exec_time: int
    seq: int
    payload: Any = None


class _ExecutorBase:
    """Registration, submission bookkeeping and dispatch recording."""

    def __init__(self, loop: EventLoop, name: str = "executor"):
        self.loop = loop
        self.name = name
        self.specs: Dict[str, CallbackSpec] = {}
        self.groups: Dict[str, CallbackGroup] = {}
        self._order: Dict[str, int] = {}
        self._handlers: Dict[str, Callable[[Any], None]] = {}
        self._seq = 0
        self.dispatches: List[Dispatch] = []
        self.callbacks_executed = 0

    def add_group(self, group: CallbackGroup) -> CallbackGroup:
        """Register a callback group (idempotent by name)."""
        self.groups[group.name] = group
        return group

    def add_callback(
        self,
        spec: CallbackSpec,
        handler: Optional[Callable[[Any], None]] = None,
    ) -> CallbackSpec:
        """Register a callback; registration order defines wait-set order."""
        if spec.name in self.specs:
            raise ValueError(f"{self.name}: duplicate callback {spec.name!r}")
        self.specs[spec.name] = spec
        self._order[spec.name] = len(self._order)
        self.groups.setdefault(spec.group, CallbackGroup(spec.group))
        if handler is not None:
            self._handlers[spec.name] = handler
        return spec

    def _waitset_key(self, job: _Job) -> Tuple[int, int, int]:
        spec = self.specs[job.callback]
        return (_KIND_RANK[spec.kind], self._order[job.callback], job.seq)

    def _priority_key(self, job: _Job) -> Tuple[int, int, int]:
        spec = self.specs[job.callback]
        return (-spec.priority, job.release, job.seq)

    def _record(self, job: _Job, start: int, thread: int) -> None:
        self.dispatches.append(Dispatch(
            callback=job.callback,
            release=job.release,
            start=start,
            finish=self.loop.now,
            thread=thread,
        ))
        self.callbacks_executed += 1
        handler = self._handlers.get(job.callback)
        if handler is not None:
            handler(job.payload)

    def submit(
        self, callback: str, exec_time: int, payload: Any = None
    ) -> None:
        """Release one instance of *callback* now, costing *exec_time* ns."""
        raise NotImplementedError

    @property
    def max_queueing_delay(self) -> int:
        """Largest release->start delay over all dispatches."""
        return max((d.start - d.release for d in self.dispatches), default=0)


class Ros2SingleThreadedExecutor(_ExecutorBase):
    """rclcpp single-threaded executor with polling-point semantics.

    The executor alternates between *polling points* (building a ready
    set: at most one pending instance per callback, ordered timers-first
    then registration order) and draining that snapshot to completion.
    Instances released while a snapshot drains -- even of an urgent
    callback -- wait for the next polling point.

    ``policy=POLICY_PRIORITY`` orders each *snapshot* by priority
    instead of wait-set order (the intra-snapshot half of the
    priority-driven enhancement; the snapshot boundary itself is a
    structural property of the wait-set loop and remains).
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str = "executor",
        policy: str = POLICY_WAITSET,
    ):
        super().__init__(loop, name)
        self.policy = policy
        self._pending: Dict[str, Deque[_Job]] = {}
        self._snapshot: List[_Job] = []
        self._busy = False

    def add_callback(self, spec, handler=None):
        spec = super().add_callback(spec, handler)
        self._pending[spec.name] = deque()
        return spec

    def submit(self, callback: str, exec_time: int, payload: Any = None) -> None:
        self._pending[callback].append(_Job(
            callback=callback,
            release=self.loop.now,
            exec_time=exec_time,
            seq=self._seq,
            payload=payload,
        ))
        self._seq += 1
        if not self._busy and not self._snapshot:
            self._poll()

    def _poll(self) -> None:
        """Polling point: snapshot <= 1 pending instance per callback."""
        ready = [
            self._pending[name].popleft()
            for name in self.specs
            if self._pending[name]
        ]
        if not ready:
            return
        if self.policy == POLICY_PRIORITY:
            ready.sort(key=self._priority_key)
        else:
            ready.sort(key=self._waitset_key)
        self._snapshot = ready
        self._start_next()

    def _start_next(self) -> None:
        job = self._snapshot.pop(0)
        self._busy = True
        start = self.loop.now
        self.loop.schedule(job.exec_time, lambda: self._finish(job, start))

    def _finish(self, job: _Job, start: int) -> None:
        # _busy stays True while the user handler runs: a handler that
        # submit()s (e.g. the fusion join submitting "fuse") must not
        # reentrantly poll and start a job while this dispatch cycle is
        # still deciding what runs next -- that would put two callbacks
        # in flight on a single-threaded executor.
        self._record(job, start, thread=0)
        self._busy = False
        if self._snapshot:
            self._start_next()
        else:
            self._poll()


class Ros2MultiThreadedExecutor(_ExecutorBase):
    """rclcpp multi-threaded executor: worker pool + callback groups.

    *n_threads* workers pull ready work; a callback whose (mutually
    exclusive) group already has an in-flight callback is skipped, even
    with idle threads -- the serialization the executor paper measures.
    With ``policy=POLICY_PRIORITY`` workers pick the highest-priority
    eligible instance instead of FIFO release order.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str = "executor",
        n_threads: int = 2,
        policy: str = POLICY_WAITSET,
    ):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        super().__init__(loop, name)
        self.n_threads = n_threads
        self.policy = policy
        self._ready: List[_Job] = []
        self._free_threads: List[int] = list(range(n_threads))
        self._group_inflight: Dict[str, int] = {}

    def submit(self, callback: str, exec_time: int, payload: Any = None) -> None:
        if callback not in self.specs:
            raise KeyError(f"{self.name}: unknown callback {callback!r}")
        self._ready.append(_Job(
            callback=callback,
            release=self.loop.now,
            exec_time=exec_time,
            seq=self._seq,
            payload=payload,
        ))
        self._seq += 1
        self._dispatch()

    def _eligible(self, job: _Job) -> bool:
        spec = self.specs[job.callback]
        group = self.groups[spec.group]
        if group.reentrant:
            return True
        return self._group_inflight.get(spec.group, 0) == 0

    def _pick(self) -> Optional[_Job]:
        eligible = [job for job in self._ready if self._eligible(job)]
        if not eligible:
            return None
        if self.policy == POLICY_PRIORITY:
            job = min(eligible, key=self._priority_key)
        else:
            job = min(eligible, key=lambda j: (j.release, j.seq))
        self._ready.remove(job)
        return job

    def _dispatch(self) -> None:
        while self._free_threads:
            job = self._pick()
            if job is None:
                return
            thread = self._free_threads.pop(0)
            spec = self.specs[job.callback]
            self._group_inflight[spec.group] = (
                self._group_inflight.get(spec.group, 0) + 1
            )
            start = self.loop.now
            self.loop.schedule(
                job.exec_time, lambda j=job, s=start, t=thread: self._finish(j, s, t)
            )

    def _finish(self, job: _Job, start: int, thread: int) -> None:
        spec = self.specs[job.callback]
        self._group_inflight[spec.group] -= 1
        self._free_threads.append(thread)
        self._free_threads.sort()
        self._record(job, start, thread)
        self._dispatch()


#: Executor-model registry used by DAG scenarios: name -> factory taking
#: ``(loop, executor_name)``.
EXECUTOR_MODELS: Dict[str, Callable[[EventLoop, str], _ExecutorBase]] = {
    "single": lambda loop, name: Ros2SingleThreadedExecutor(loop, name),
    "multi": lambda loop, name: Ros2MultiThreadedExecutor(loop, name, n_threads=2),
    "priority": lambda loop, name: Ros2MultiThreadedExecutor(
        loop, name, n_threads=2, policy=POLICY_PRIORITY
    ),
}


def run_schedule(
    executor: _ExecutorBase,
    jobs: List[Tuple[int, str, int]],
) -> List[Dispatch]:
    """Drive *executor* with ``(release, callback, exec_time)`` jobs.

    Conformance-test harness: schedules every submission on the
    executor's loop, runs to quiescence and returns the dispatch log
    sorted by (start, thread).
    """
    for release, callback, exec_time in jobs:
        executor.loop.schedule_at(
            release,
            lambda c=callback, e=exec_time: executor.submit(c, e),
        )
    executor.loop.run()
    return sorted(executor.dispatches, key=lambda d: (d.start, d.thread))
