"""Single-threaded executor dispatching node callbacks.

One executor per process (node), running as a simulated thread at the
process's scheduling priority.  Work items arrive from subscription
deliveries and timers; the executor pops them FIFO and runs them to
completion -- so a long-running callback delays everything behind it,
which is one of the latency sources the paper's local segments absorb.

A callback may return a generator: the executor then drives it, so the
callback can yield ``Compute(...)`` to consume CPU time preemptibly.
"""

from __future__ import annotations

import types
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.cpu import Ecu
from repro.sim.sync import Semaphore
from repro.sim.threads import SimThread, WaitSem


class SingleThreadedExecutor:
    """FIFO callback dispatcher on a dedicated simulated thread."""

    def __init__(self, ecu: Ecu, name: str, priority: int):
        self.ecu = ecu
        self.sim = ecu.sim
        self.name = name
        self.priority = priority
        self._queue: Deque[Tuple[Callable[..., Any], tuple, int, Any]] = deque()
        self._sem = Semaphore(self.sim, name=f"{name}.exec")
        self.callbacks_executed = 0
        self.callback_errors = 0
        #: Most recent exception raised by a callback (diagnostics).
        self.last_error: Optional[Exception] = None
        #: Sum and max of enqueue->dispatch delay, for diagnostics.
        self.total_queueing_delay = 0
        self.max_queueing_delay = 0
        self.thread: SimThread = ecu.spawn(
            f"{name}.executor", self._body, priority=priority
        )

    def enqueue(self, callback: Callable[..., Any], *args: Any) -> None:
        """Add a work item; the executor thread is woken if idle."""
        spans = self.sim.spans
        self._queue.append((
            callback,
            args,
            self.sim.now,
            None if spans is None else spans.current,
        ))
        self._sem.post()

    @property
    def backlog(self) -> int:
        """Number of queued, not yet started, work items."""
        return len(self._queue)

    def _body(self, _thread):
        while True:
            yield WaitSem(self._sem)
            if not self._queue:
                continue
            callback, args, enqueued_at, ctx = self._queue.popleft()
            delay = self.sim.now - enqueued_at
            self.total_queueing_delay += delay
            if delay > self.max_queueing_delay:
                self.max_queueing_delay = delay
            spans = self.sim.spans
            span = None
            if spans is not None:
                # The compute span of this callback: child of whatever
                # caused the enqueue (a transport span for subscription
                # deliveries, None for timers -> a new chain root).
                span = spans.begin(
                    f"{self.name}.callback", "compute", parent=ctx,
                    queued_ns=delay,
                )
                arg0 = args[0] if args else None
                topic = getattr(arg0, "topic", None)
                if topic is not None:
                    span.attrs["topic"] = topic.name
                    frame = getattr(arg0.data, "frame_index", None)
                    if frame is not None:
                        span.attrs["frame"] = frame
                span_ctx = span.context
                self.thread.span_ctx = span_ctx
                spans.current = span_ctx
            # A faulty callback must not kill the executor: real rclcpp
            # executors survive throwing callbacks; we log and continue.
            try:
                result = callback(*args)
                if isinstance(result, types.GeneratorType):
                    yield from result
            except Exception as error:  # noqa: BLE001 - isolation boundary
                self.callback_errors += 1
                self.last_error = error
                self.sim.emit_trace(
                    "executor.callback_error",
                    executor=self.name,
                    error=repr(error),
                )
            self.callbacks_executed += 1
            if span is not None:
                spans.end(span)
                self.thread.span_ctx = None
                spans.current = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SingleThreadedExecutor {self.name} prio={self.priority}>"
