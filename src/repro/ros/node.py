"""ROS2-like nodes: publishers, subscriptions and timers.

A :class:`Node` is one process: it owns a DDS participant (middleware
event thread) and a single-threaded executor (application thread).  The
paper's services ("blue boxes" in its Fig. 1) map one-to-one onto nodes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.dds.domain import DdsDomain
from repro.dds.qos import QosProfile
from repro.dds.reader import DataReader, ReaderListener
from repro.dds.topic import Sample, Topic
from repro.dds.writer import DataWriter
from repro.ros.executor import SingleThreadedExecutor
from repro.sim.cpu import Ecu
from repro.sim.timers import PeriodicTimer


class Publisher:
    """Thin wrapper over a DDS writer (``node.create_publisher``)."""

    def __init__(self, node: "Node", writer: DataWriter):
        self.node = node
        self.writer = writer

    @property
    def topic(self) -> Topic:
        """The published topic."""
        return self.writer.topic

    def publish(
        self,
        data: Any,
        source_timestamp: Optional[int] = None,
        recovered: bool = False,
    ) -> Optional[Sample]:
        """Publish *data*; returns the sample or None if suppressed."""
        return self.writer.write(
            data, source_timestamp=source_timestamp, recovered=recovered
        )


class _SubscriptionListener(ReaderListener):
    """Bridges DDS delivery into the node's executor queue."""

    def __init__(self, subscription: "Subscription"):
        self.subscription = subscription

    def on_data_available(self, reader: DataReader, sample: Sample) -> None:
        self.subscription.node.executor.enqueue(
            self.subscription.callback, sample
        )


class Subscription:
    """A topic subscription dispatching *callback(sample)* on the executor.

    The callback receives the full :class:`~repro.dds.topic.Sample` (data
    plus source timestamp) and may be a generator yielding ``Compute``.
    """

    def __init__(
        self,
        node: "Node",
        topic: Topic,
        callback: Callable[[Sample], Any],
        qos: Optional[QosProfile] = None,
    ):
        self.node = node
        self.callback = callback
        self.reader: DataReader = node.participant.create_reader(
            topic, qos=qos, listener=_SubscriptionListener(self)
        )

    @property
    def topic(self) -> Topic:
        """The subscribed topic."""
        return self.reader.topic


class RosTimer:
    """A periodic timer whose callback runs on the node's executor."""

    def __init__(
        self,
        node: "Node",
        period: int,
        callback: Callable[[int], Any],
        jitter_ns: int = 0,
    ):
        self.node = node
        self.callback = callback
        self._timer = PeriodicTimer(
            node.ecu.sim,
            period,
            self._fire,
            name=f"{node.name}.timer",
            jitter_ns=jitter_ns,
        )

    def start(self) -> None:
        """Start firing periodically."""
        self._timer.start()

    def stop(self) -> None:
        """Stop firing."""
        self._timer.stop()

    def _fire(self, index: int) -> None:
        self.node.executor.enqueue(self.callback, index)


class Node:
    """One ROS2-like process: participant + single-threaded executor.

    Parameters
    ----------
    domain:
        DDS domain the node joins.
    ecu:
        Hosting ECU.
    name:
        Node (process) name.
    priority:
        Executor thread priority (the process's RT priority).
    middleware_priority:
        Priority of the node's DDS event thread (defaults to the
        executor priority; the paper keeps middleware timers *below*
        the monitor priority).
    """

    def __init__(
        self,
        domain: DdsDomain,
        ecu: Ecu,
        name: str,
        priority: int = 10,
        middleware_priority: Optional[int] = None,
    ):
        self.domain = domain
        self.ecu = ecu
        self.name = name
        self.priority = priority
        if middleware_priority is None:
            middleware_priority = priority
        self.participant = domain.create_participant(
            ecu, name, middleware_priority=middleware_priority
        )
        self.executor = SingleThreadedExecutor(ecu, f"{ecu.name}.{name}", priority)
        self.publishers: List[Publisher] = []
        self.subscriptions: List[Subscription] = []
        self.timers: List[RosTimer] = []

    def create_publisher(
        self, topic: Topic, qos: Optional[QosProfile] = None
    ) -> Publisher:
        """Create a publisher on *topic*."""
        publisher = Publisher(self, self.participant.create_writer(topic, qos=qos))
        self.publishers.append(publisher)
        return publisher

    def create_subscription(
        self,
        topic: Topic,
        callback: Callable[[Sample], Any],
        qos: Optional[QosProfile] = None,
    ) -> Subscription:
        """Subscribe to *topic* with *callback(sample)* on the executor."""
        subscription = Subscription(self, topic, callback, qos=qos)
        self.subscriptions.append(subscription)
        return subscription

    def create_timer(
        self, period: int, callback: Callable[[int], Any], jitter_ns: int = 0
    ) -> RosTimer:
        """Create (but not start) a periodic executor timer."""
        timer = RosTimer(self, period, callback, jitter_ns=jitter_ns)
        self.timers.append(timer)
        return timer

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.ecu.name}.{self.name} prio={self.priority}>"
