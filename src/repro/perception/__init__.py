"""Autoware.Auto-like dual-lidar perception workload.

The paper's running example (its Fig. 1): front and rear lidars publish
point clouds to a *fusion* service on ECU1; the fused cloud crosses the
network to ECU2 where a *classifier* splits ground from non-ground
points, an *object detection* service clusters the non-ground points
into bounding boxes, and a sink (*rviz2* standing in for the planner)
consumes objects and ground points.

The original evaluation replays recorded lidar pcap data; we substitute
a synthetic driving-scenario generator producing point clouds whose
sizes and content vary frame to frame, so the services' execution times
are genuinely data-dependent.  The services perform real (numpy)
computation -- fusion, ray-ground classification, euclidean clustering
-- not canned sleeps; their *simulated* CPU cost additionally scales
with the data via :mod:`repro.sim.workload` models.

:mod:`repro.perception.stack` wires everything onto two simulated ECUs
and defines the event chains and monitors of the paper's use case.
"""

from repro.perception.pointcloud import PointCloud
from repro.perception.scenario import DrivingScenario, ScenarioConfig
from repro.perception.lidar_driver import LidarDriver
from repro.perception.fusion import FusionService
from repro.perception.ground_filter import RayGroundClassifier, classify_ground
from repro.perception.clustering import BoundingBox, EuclideanClusterDetector, euclidean_clusters
from repro.perception.planner import SinkService
from repro.perception.stack import PerceptionStack, StackConfig

__all__ = [
    "PointCloud",
    "DrivingScenario",
    "ScenarioConfig",
    "LidarDriver",
    "FusionService",
    "RayGroundClassifier",
    "classify_ground",
    "BoundingBox",
    "EuclideanClusterDetector",
    "euclidean_clusters",
    "SinkService",
    "PerceptionStack",
    "StackConfig",
]
