"""Point-cloud fusion: joins front and rear sweeps by frame.

The paper's fusion service on ECU1 "joins the data (based on their
timestamps) and publishes a DDS topic comprising a point cloud".  We
join by frame index (carried in the cloud header); a frame is published
once both sides arrived.  The paper's recovery example -- publishing a
front-only cloud when the rear lidar runs late -- is performed by the
*monitor's* exception handler, not here; the service itself simply waits
for both inputs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dds.qos import QosProfile
from repro.dds.topic import Topic
from repro.perception.pointcloud import PointCloud
from repro.ros.node import Node
from repro.sim.threads import Compute
from repro.sim.workload import AffineModel, ExecutionTimeModel


class FusionService:
    """Dual-input fusion node.

    Parameters
    ----------
    node:
        Hosting node (ECU1 in the paper's setup).
    topic_front, topic_rear, topic_out:
        Input and output topics.
    fuse_model:
        CPU cost of the join, parameterized by total point count.
    max_pending:
        Frames to keep waiting for their partner before being evicted
        (prevents unbounded backlog when one side stalls for long).
    """

    def __init__(
        self,
        node: Node,
        topic_front: Topic,
        topic_rear: Topic,
        topic_out: Topic,
        qos: Optional[QosProfile] = None,
        fuse_model: Optional[ExecutionTimeModel] = None,
        max_pending: int = 16,
    ):
        self.node = node
        self.fuse_model = fuse_model or AffineModel(
            base_ns=500_000, per_item_ns=60, noise=0.15
        )
        self.max_pending = max_pending
        self.publisher = node.create_publisher(topic_out, qos=qos)
        self._pending_front: Dict[int, PointCloud] = {}
        self._pending_rear: Dict[int, PointCloud] = {}
        #: Span contexts of waiting frames (span tracing only): the
        #: fusing callback links the partner's causal history so both
        #: chains can walk their own critical path through the join.
        self._ctx_front: Dict[int, object] = {}
        self._ctx_rear: Dict[int, object] = {}
        self.fused_count = 0
        self.evicted_count = 0
        self.sub_front = node.create_subscription(topic_front, self._on_front, qos=qos)
        self.sub_rear = node.create_subscription(topic_rear, self._on_rear, qos=qos)

    def _on_front(self, sample):
        return self._on_cloud(sample.data, self._pending_front, self._pending_rear,
                              self._ctx_front, self._ctx_rear)

    def _on_rear(self, sample):
        return self._on_cloud(sample.data, self._pending_rear, self._pending_front,
                              self._ctx_rear, self._ctx_front)

    def _on_cloud(self, cloud: PointCloud, mine: Dict[int, PointCloud],
                  other: Dict[int, PointCloud],
                  mine_ctx: Dict[int, object], other_ctx: Dict[int, object]):
        spans = self.node.ecu.sim.spans
        partner = other.pop(cloud.frame_index, None)
        if partner is None:
            mine[cloud.frame_index] = cloud
            if spans is not None:
                mine_ctx[cloud.frame_index] = spans.current
            self._evict(mine, mine_ctx)
            return None
        if spans is not None:
            # Causal join: this callback's span gets a link to the
            # earlier arrival's callback span (the waiting branch).
            spans.link_current(other_ctx.pop(cloud.frame_index, None))
        fused = cloud.concatenate(partner)
        work = self.fuse_model.sample(
            self.node.ecu.sim.rng("fusion"), size=len(fused)
        )
        return self._fuse_and_publish(fused, work)

    def _fuse_and_publish(self, fused: PointCloud, work: int):
        yield Compute(work)
        self.publisher.publish(fused)
        self.fused_count += 1

    def _evict(self, pending: Dict[int, PointCloud],
               ctxs: Optional[Dict[int, object]] = None) -> None:
        while len(pending) > self.max_pending:
            oldest = min(pending)
            del pending[oldest]
            if ctxs is not None:
                ctxs.pop(oldest, None)
            self.evicted_count += 1

    @property
    def pending_frames(self) -> int:
        """Frames currently waiting for their partner cloud."""
        return len(self._pending_front) + len(self._pending_rear)
