"""Lidar driver services: the chain's periodic sources.

Each driver runs on its own small sensor ECU (the paper's lidars are
networked sensors feeding ECU1), synthesizes a sweep from the shared
driving scenario every period, and publishes it.  Fault injection hooks
allow experiments to delay or drop individual frames (the paper's
Fig. 3 error case).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dds.qos import QosProfile
from repro.dds.topic import Topic
from repro.perception.pointcloud import PointCloud
from repro.perception.scenario import DrivingScenario
from repro.ros.node import Node
from repro.sim.threads import Compute
from repro.sim.workload import AffineModel, ExecutionTimeModel

#: Injected fault for one frame: extra delay in ns (0 = none) or None to
#: drop the frame entirely.
FaultFn = Callable[[int], Optional[int]]

#: Payload fault: maps (frame, captured cloud) to the cloud actually
#: published -- e.g. a stuck sensor re-emitting its previous sweep.
TransformFn = Callable[[int, PointCloud], PointCloud]


def pointcloud_topic(name: str) -> Topic:
    """A topic sized by the actual point-cloud payload."""
    return Topic(name, type_name="PointCloud2", size_fn=lambda pc: pc.nbytes)


class LidarDriver:
    """Periodic point-cloud source for one lidar mount.

    Parameters
    ----------
    node:
        Hosting node (on the sensor ECU).
    scenario:
        Shared world model (both lidars must use the same instance).
    mount:
        ``"front"`` or ``"rear"``.
    topic:
        Output topic.
    period:
        Publication period in ns.
    capture_model:
        CPU cost of assembling a sweep (driver-side).
    fault_fn:
        Optional per-frame fault injection (delay ns / None to drop).
    transform_fn:
        Optional payload fault applied to the captured cloud just
        before publication (timing is unaffected).
    """

    def __init__(
        self,
        node: Node,
        scenario: DrivingScenario,
        mount: str,
        topic: Topic,
        period: int,
        qos: Optional[QosProfile] = None,
        capture_model: Optional[ExecutionTimeModel] = None,
        fault_fn: Optional[FaultFn] = None,
        transform_fn: Optional[TransformFn] = None,
        jitter_ns: int = 0,
    ):
        self.node = node
        self.scenario = scenario
        self.mount = mount
        self.period = period
        self.capture_model = capture_model or AffineModel(
            base_ns=200_000, per_item_ns=20, noise=0.1
        )
        self.fault_fn = fault_fn
        self.transform_fn = transform_fn
        self.publisher = node.create_publisher(topic, qos=qos)
        self.frames_published = 0
        self.frames_dropped = 0
        self._timer = node.create_timer(period, self._on_timer, jitter_ns=jitter_ns)

    def start(self) -> None:
        """Begin periodic publication."""
        self._timer.start()

    def stop(self) -> None:
        """Stop publishing."""
        self._timer.stop()

    def _on_timer(self, frame: int):
        sim = self.node.ecu.sim
        delay = 0
        if self.fault_fn is not None:
            fault = self.fault_fn(frame)
            if fault is None:
                self.frames_dropped += 1
                sim.emit_trace("lidar.dropped", mount=self.mount, frame=frame)
                return
            delay = fault
        cloud = self.scenario.lidar_frame(
            frame, self.mount, stamp=self.node.ecu.now()
        )
        work = self.capture_model.sample(
            sim.rng(f"lidar:{self.mount}"), size=len(cloud)
        )
        yield Compute(work + delay)
        if self.transform_fn is not None:
            cloud = self.transform_fn(frame, cloud)
        self.publisher.publish(cloud)
        self.frames_published += 1
