"""The chain sink: rviz2 standing in for the trajectory planner.

The paper replaced the (unavailable) planning service with rviz2, which
subscribes to the objects and ground-points topics but publishes
nothing -- making the final monitored segments end at *receive* events.
This sink records arrival times per frame and spends a small rendering
cost; experiments read its log for end-to-end accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dds.qos import QosProfile
from repro.dds.topic import Topic
from repro.ros.node import Node
from repro.sim.threads import Compute
from repro.sim.workload import ConstantModel, ExecutionTimeModel


class SinkService:
    """Terminal consumer of one or more topics."""

    def __init__(
        self,
        node: Node,
        topics: List[Topic],
        qos: Optional[QosProfile] = None,
        render_model: Optional[ExecutionTimeModel] = None,
    ):
        self.node = node
        self.render_model = render_model or ConstantModel(300_000)
        #: topic name -> list of (frame_index, local arrival time, recovered)
        self.arrivals: Dict[str, List[Tuple[int, int, bool]]] = {
            topic.name: [] for topic in topics
        }
        self.subscriptions = [
            node.create_subscription(
                topic, self._make_callback(topic.name), qos=qos
            )
            for topic in topics
        ]

    def _make_callback(self, topic_name: str):
        def callback(sample):
            frame = getattr(sample.data, "frame_index", sample.sequence_number)
            self.arrivals[topic_name].append(
                (frame, self.node.ecu.now(), sample.recovered)
            )
            work = self.render_model.sample(self.node.ecu.sim.rng("sink"))
            if work > 0:
                yield Compute(work)

        return callback

    def frames_seen(self, topic_name: str) -> List[int]:
        """Frame indices received on *topic_name*, in arrival order."""
        return [frame for frame, _t, _r in self.arrivals[topic_name]]

    def arrival_time(self, topic_name: str, frame: int) -> Optional[int]:
        """Arrival time of *frame* on *topic_name* (first occurrence)."""
        for f, t, _r in self.arrivals[topic_name]:
            if f == frame:
                return t
        return None
