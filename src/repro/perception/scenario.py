"""Synthetic driving scenarios replacing the Autoware.Auto pcap data.

Each frame of a scenario yields a lidar sweep: ground-plane returns
(regular polar grid with noise) plus clusters of returns from moving
objects (vehicles/pedestrians) whose count and position evolve over
time.  The per-frame point count therefore fluctuates -- the property
that makes downstream execution times data-dependent, which is all the
pcap data contributed to the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.perception.pointcloud import PointCloud


@dataclass
class ScenarioConfig:
    """Parameters of the synthetic world.

    ``ground_rings``/``points_per_ring`` size the ground sweep;
    ``max_objects`` bounds how many obstacles exist simultaneously;
    object churn (spawn/despawn) follows per-frame probabilities.
    """

    seed: int = 0
    ground_rings: int = 16
    points_per_ring: int = 180
    ring_spacing_m: float = 1.5
    ground_noise_m: float = 0.04
    max_objects: int = 8
    spawn_prob: float = 0.15
    despawn_prob: float = 0.05
    points_per_object_mean: int = 220
    object_speed_mps: float = 8.0
    frame_rate_hz: float = 10.0
    sensor_height_m: float = 1.8


@dataclass
class _SceneObject:
    x: float
    y: float
    vx: float
    vy: float
    width: float
    length: float
    height: float


class DrivingScenario:
    """Deterministic frame-by-frame scene evolution.

    Use :meth:`lidar_frame` to synthesize the sweep a lidar mounted at
    ``mount`` ("front" or "rear") would capture for a given frame.
    Frames must be requested in non-decreasing order per scenario.
    """

    #: How many past frame snapshots to retain (two lidars may request
    #: the same or slightly lagging frames).
    SNAPSHOT_KEEP = 64

    def __init__(
        self,
        config: Optional[ScenarioConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config or ScenarioConfig()
        # An injected generator wins over the config seed so campaigns
        # can share one stream; the default remains self-seeded -- never
        # the global numpy state.
        self._rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        self._objects: List[_SceneObject] = []
        self._frame = -1
        self._snapshots: dict = {}

    # ------------------------------------------------------------------
    # World evolution
    # ------------------------------------------------------------------
    def _snapshot(self, frame: int) -> List[_SceneObject]:
        """Object states at *frame*; evolves the world forward on demand.

        Snapshots of recent frames are cached so the two lidar drivers
        can sample the same frame (or lag slightly) independently.
        """
        if frame in self._snapshots:
            return self._snapshots[frame]
        if frame < self._frame:
            raise ValueError(
                f"frame {frame} is older than the snapshot horizon "
                f"(current {self._frame}, keep {self.SNAPSHOT_KEEP})"
            )
        dt = 1.0 / self.config.frame_rate_hz
        while self._frame < frame:
            self._frame += 1
            # Move objects.
            for obj in self._objects:
                obj.x += obj.vx * dt
                obj.y += obj.vy * dt
            # Despawn.
            self._objects = [
                obj
                for obj in self._objects
                if self._rng.random() > self.config.despawn_prob
                and abs(obj.x) < 80
                and abs(obj.y) < 40
            ]
            # Spawn.
            if (
                len(self._objects) < self.config.max_objects
                and self._rng.random() < self.config.spawn_prob
            ):
                self._objects.append(self._spawn_object())
            self._snapshots[self._frame] = [
                _SceneObject(**vars(obj)) for obj in self._objects
            ]
            stale = self._frame - self.SNAPSHOT_KEEP
            self._snapshots.pop(stale, None)
        return self._snapshots[frame]

    def _spawn_object(self) -> _SceneObject:
        rng = self._rng
        is_vehicle = rng.random() < 0.7
        speed = self.config.object_speed_mps * float(rng.uniform(0.2, 1.5))
        heading = float(rng.uniform(0, 2 * np.pi))
        return _SceneObject(
            x=float(rng.uniform(-60, 60)),
            y=float(rng.uniform(-25, 25)),
            vx=speed * np.cos(heading),
            vy=speed * np.sin(heading),
            width=float(rng.uniform(1.6, 2.2)) if is_vehicle else float(rng.uniform(0.4, 0.8)),
            length=float(rng.uniform(3.8, 5.2)) if is_vehicle else float(rng.uniform(0.4, 0.8)),
            height=float(rng.uniform(1.4, 2.0)) if is_vehicle else float(rng.uniform(1.5, 1.9)),
        )

    @property
    def object_count(self) -> int:
        """Number of live objects in the current frame."""
        return len(self._objects)

    # ------------------------------------------------------------------
    # Lidar synthesis
    # ------------------------------------------------------------------
    def lidar_frame(self, frame: int, mount: str, stamp: int = 0) -> PointCloud:
        """Synthesize the sweep of the front or rear lidar for *frame*."""
        if mount not in ("front", "rear"):
            raise ValueError(f"unknown mount {mount!r}")
        objects = self._snapshot(frame)
        cfg = self.config
        rng = np.random.default_rng(
            (cfg.seed * 1_000_003 + frame * 97 + (0 if mount == "front" else 1))
            % (2**63)
        )
        parts = [self._ground_sweep(rng)]
        x_sign = 1.0 if mount == "front" else -1.0
        for obj in objects:
            # Each lidar sees objects in its half-space (plus overlap).
            if x_sign * obj.x < -5:
                continue
            parts.append(self._object_returns(rng, obj))
        points = np.vstack(parts).astype(np.float32)
        return PointCloud(points=points, frame_index=frame, stamp=stamp,
                          frame_id=f"lidar_{mount}")

    def _ground_sweep(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        radii = (np.arange(1, cfg.ground_rings + 1) * cfg.ring_spacing_m)
        angles = np.linspace(0, 2 * np.pi, cfg.points_per_ring, endpoint=False)
        rr, aa = np.meshgrid(radii, angles, indexing="ij")
        x = (rr * np.cos(aa)).ravel()
        y = (rr * np.sin(aa)).ravel()
        z = rng.normal(-cfg.sensor_height_m, cfg.ground_noise_m, size=x.shape)
        intensity = rng.uniform(0.1, 0.4, size=x.shape)
        return np.column_stack([x, y, z, intensity])

    def _object_returns(self, rng: np.random.Generator, obj: _SceneObject) -> np.ndarray:
        cfg = self.config
        distance = max(1.0, np.hypot(obj.x, obj.y))
        # Point density falls off with distance (solid angle).
        count = max(
            10,
            int(rng.poisson(cfg.points_per_object_mean * min(1.0, 10.0 / distance))),
        )
        x = rng.uniform(-obj.length / 2, obj.length / 2, count) + obj.x
        y = rng.uniform(-obj.width / 2, obj.width / 2, count) + obj.y
        z = rng.uniform(0, obj.height, count) - cfg.sensor_height_m
        intensity = rng.uniform(0.4, 1.0, count)
        return np.column_stack([x, y, z, intensity])
