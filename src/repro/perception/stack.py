"""The full Autoware.Auto use case on two simulated ECUs (paper Fig. 1).

Topology::

    lidar_front ECU --link--> ECU1[fusion] --link--> ECU2[classifier,
    lidar_rear  ECU --link-->                         object_detection,
                                                      rviz]

Monitored segments (paper Figs. 1-2):

======  ======  ===========================================================
name    kind    boundaries
======  ======  ===========================================================
s0_front remote publication(points_front)@lidar_front -> receive@ecu1
s0_rear  remote publication(points_rear)@lidar_rear  -> receive@ecu1
s1_front local  receive(points_front)@fusion -> publication(points_fused)
s1_rear  local  receive(points_rear)@fusion  -> publication(points_fused)
s2       remote publication(points_fused)@ecu1 -> receive@ecu2(classifier)
s3_objects local receive(points_fused)@classifier -> receive(objects)@rviz
s3_ground  local receive(points_fused)@classifier -> receive(ground)@rviz
======  ======  ===========================================================

Chains: {front, rear} x {objects, ground} -- four chains sharing all but
their first two segments, activated synchronously with one period, as in
the paper's Fig. 2.  Thread priorities follow the paper's setup: monitor
thread highest, ksoftirq just below, ROS processes in descending order,
middleware event threads at ordinary priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core import (
    ChainRuntime,
    EventChain,
    EventKind,
    MKConstraint,
    MonitorThread,
    LocalSegmentRuntime,
    SkipGate,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.exceptions import ExceptionHandler, PropagateAlways, RecoverAlways
from repro.core.segments import Segment, local_segment, remote_segment
from repro.dds import DdsDomain, QosProfile, Topic
from repro.network import DriftingClock, JitterModel, Link, NetworkStack, PtpService
from repro.perception.clustering import EuclideanClusterDetector
from repro.perception.fusion import FusionService
from repro.perception.ground_filter import RayGroundClassifier
from repro.perception.lidar_driver import FaultFn, LidarDriver, pointcloud_topic
from repro.perception.planner import SinkService
from repro.perception.pointcloud import PointCloud
from repro.perception.scenario import DrivingScenario, ScenarioConfig
from repro.ros import Node
from repro.sim import Ecu, Simulator, msec, sec, usec
from repro.sim.cpu import FrequencyGovernor
from repro.sim.workload import AffineModel
from repro.tracing import Tracer

SEGMENT_NAMES = (
    "s0_front",
    "s0_rear",
    "s1_front",
    "s1_rear",
    "s2",
    "s3_objects",
    "s3_ground",
)

CHAIN_NAMES = ("front_objects", "front_ground", "rear_objects", "rear_ground")


def _default_deadlines() -> Dict[str, int]:
    # s1's deadline must leave room for its *recovery publication* to
    # still meet s2's expectation (prev fused timestamp + P + d_mon(s2)):
    # with normal fusion latency ~1.5 ms and d_mon(s2) = 10 ms, a
    # recovery at +8 ms yields an inter-fused gap of ~106.5 ms < 110 ms,
    # so front-only recoveries genuinely save the chain (paper Fig. 3).
    return {
        "s0_front": msec(10),
        "s0_rear": msec(10),
        "s1_front": msec(8),
        "s1_rear": msec(8),
        "s2": msec(10),
        "s3_objects": msec(100),  # the paper's Fig. 9 deadline
        "s3_ground": msec(100),
    }


@dataclass
class StackConfig:
    """Everything tunable about the deployed use case."""

    seed: int = 1
    period: int = msec(100)  # 10 FPS lidars
    mk: MKConstraint = field(default_factory=lambda: MKConstraint(3, 10))
    budget_e2e: int = msec(250)
    # Monitoring.
    monitoring: bool = True
    #: Scheduling priority of the monitor threads (the paper: highest).
    monitor_priority: int = 99
    #: One monitor thread per ECU (paper default) or one per segment.
    monitor_thread_per_segment: bool = False
    remote_context: TimeoutContext = TimeoutContext.MONITOR_THREAD
    d_mon: Dict[str, int] = field(default_factory=_default_deadlines)
    d_ex: int = 0
    handlers: Dict[str, ExceptionHandler] = field(default_factory=dict)
    # Platform.
    ecu1_cores: int = 2
    ecu2_cores: int = 4
    ecu2_governor: Optional[Callable[[], FrequencyGovernor]] = None
    link_latency: int = usec(200)
    link_jitter: int = usec(100)
    link_loss: float = 0.0
    #: Route inter-ECU traffic through a shared store-and-forward switch
    #: instead of independent links: network jitter becomes *emergent*
    #: from queueing.  ``switch_bg_load`` adds cross traffic on the
    #: ECU2-bound port (0 disables).
    use_switch: bool = False
    switch_port_rate_bps: float = 1e9
    switch_bg_load: float = 0.0
    clock_drift_ppm: float = 10.0
    ptp_period: int = sec(1)
    ptp_residual: int = usec(2)
    # Workload.
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    classify_base_ns: int = 5_000_000
    classify_per_point_ns: float = 4_500.0
    cluster_base_ns: int = 3_000_000
    cluster_per_point_ns: float = 9_000.0
    fusion_base_ns: int = 500_000
    fusion_per_point_ns: float = 100.0
    compute_noise: float = 0.25
    # Fault injection (per lidar; frame -> extra delay ns or None=drop).
    fault_front: Optional[FaultFn] = None
    fault_rear: Optional[FaultFn] = None
    #: Route every chain through the DAG model as a degenerate
    #: single-path instance (``DagChain.from_linear(...).to_linear()``)
    #: before deployment.  A differential switch: the round-trip must be
    #: behaviour-preserving, which the identity test suite pins down to
    #: byte-identical traces and campaign results.
    via_dag: bool = False
    # Tracing.
    trace_prefixes: tuple = ("dds.", "monitor.", "syncmon.", "lidar.")
    #: Causal span tracing (critical-path attribution).  Off by default:
    #: the kernel hot path then keeps its span-free fast loop and runs
    #: are bit-identical to builds without the tracing subsystem.
    spans: bool = False


def activation_of(sample) -> Optional[int]:
    """Chain activation index carried in every perception message."""
    return getattr(sample.data, "frame_index", None)


class PerceptionStack:
    """Builds and runs the full use case."""

    def __init__(self, config: Optional[StackConfig] = None):
        self.config = config or StackConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        self.tracer = Tracer(self.sim, prefixes=cfg.trace_prefixes)
        if cfg.spans:
            from repro.tracing.spans import SpanRecorder

            self.spans = SpanRecorder(self.sim)
            self.sim.spans = self.spans
        else:
            self.spans = None
        self._build_platform()
        self._build_topics()
        self._build_services()
        self._build_segments()
        self._build_chains()
        if cfg.monitoring:
            self._build_monitors()
        else:
            self.monitor_ecu1 = None
            self.monitor_ecu2 = None
            self.local_runtimes = {}
            self.remote_monitors = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_platform(self) -> None:
        cfg = self.config
        self.ecu_lidar_front = Ecu(self.sim, "lidar_front", n_cores=1)
        self.ecu_lidar_rear = Ecu(self.sim, "lidar_rear", n_cores=1)
        self.ecu1 = Ecu(self.sim, "ecu1", n_cores=cfg.ecu1_cores)
        self.ecu2 = Ecu(
            self.sim,
            "ecu2",
            n_cores=cfg.ecu2_cores,
            governor_factory=cfg.ecu2_governor,
        )
        self.ecus = [
            self.ecu_lidar_front,
            self.ecu_lidar_rear,
            self.ecu1,
            self.ecu2,
        ]
        # PTP-synchronized drifting clocks on every ECU.
        clocks = []
        for i, ecu in enumerate(self.ecus):
            drift = cfg.clock_drift_ppm * (1 if i % 2 == 0 else -1)
            clock = DriftingClock(
                self.sim, offset_ns=usec(50) * (i + 1), drift_ppm=drift,
                name=f"{ecu.name}.clock",
            )
            ecu.clock = clock
            clocks.append(clock)
        self.ptp = PtpService(
            self.sim, clocks, sync_period=cfg.ptp_period,
            residual_error=cfg.ptp_residual,
        )
        # Network: stacks for receivers + links towards them.
        self.domain = DdsDomain(self.sim, local_latency=usec(30))
        self.stack1 = NetworkStack(self.ecu1, ksoftirq_priority=90)
        self.stack2 = NetworkStack(self.ecu2, ksoftirq_priority=90)
        self.domain.register_stack(self.ecu1, self.stack1)
        self.domain.register_stack(self.ecu2, self.stack2)
        jitter = JitterModel("lognormal", cfg.link_jitter) if cfg.link_jitter else None

        if cfg.use_switch:
            from repro.network import BackgroundTraffic, EthernetSwitch, SwitchedLink

            self.switch = EthernetSwitch(
                self.sim, port_rate_bps=cfg.switch_port_rate_bps,
                propagation_delay=cfg.link_latency,
            )
            self.switch.attach("ecu1")
            self.switch.attach("ecu2")

            def link(name, src, dst):
                l = SwitchedLink(self.switch, name, loss_prob=cfg.link_loss)
                self.domain.add_link(src, dst, l)
                return l

            if cfg.switch_bg_load > 0:
                self.bg_traffic = BackgroundTraffic(
                    self.switch, "ecu2", utilization=cfg.switch_bg_load
                )
            else:
                self.bg_traffic = None
        else:
            self.switch = None
            self.bg_traffic = None

            def link(name, src, dst):
                l = Link(
                    self.sim, name, base_latency=cfg.link_latency,
                    jitter=jitter, bandwidth_bps=1e9, loss_prob=cfg.link_loss,
                )
                self.domain.add_link(src, dst, l)
                return l

        self.link_front = link("front->ecu1", self.ecu_lidar_front, self.ecu1)
        self.link_rear = link("rear->ecu1", self.ecu_lidar_rear, self.ecu1)
        self.link_12 = link("ecu1->ecu2", self.ecu1, self.ecu2)

    def _build_topics(self) -> None:
        self.topic_front = pointcloud_topic("points_front")
        self.topic_rear = pointcloud_topic("points_rear")
        self.topic_fused = pointcloud_topic("points_fused")
        self.topic_ground = pointcloud_topic("ground_points")
        self.topic_nonground = pointcloud_topic("points_nonground")
        self.topic_objects = Topic(
            "objects", type_name="DetectedObjects", size_fn=lambda o: o.nbytes
        )

    def _build_services(self) -> None:
        cfg = self.config
        self.scenario = DrivingScenario(cfg.scenario)
        node_front = Node(self.domain, self.ecu_lidar_front, "driver",
                          priority=50, middleware_priority=30)
        node_rear = Node(self.domain, self.ecu_lidar_rear, "driver",
                         priority=50, middleware_priority=30)
        self.node_fusion = Node(self.domain, self.ecu1, "fusion",
                                priority=60, middleware_priority=30)
        self.node_classifier = Node(self.domain, self.ecu2, "classifier",
                                    priority=56, middleware_priority=30)
        self.node_detector = Node(self.domain, self.ecu2, "object_detection",
                                  priority=54, middleware_priority=30)
        self.node_rviz = Node(self.domain, self.ecu2, "rviz",
                              priority=52, middleware_priority=30)

        self.lidar_front = LidarDriver(
            node_front, self.scenario, "front", self.topic_front,
            period=cfg.period, fault_fn=cfg.fault_front,
        )
        self.lidar_rear = LidarDriver(
            node_rear, self.scenario, "rear", self.topic_rear,
            period=cfg.period, fault_fn=cfg.fault_rear,
        )
        self.fusion = FusionService(
            self.node_fusion, self.topic_front, self.topic_rear, self.topic_fused,
            fuse_model=AffineModel(
                cfg.fusion_base_ns, cfg.fusion_per_point_ns, cfg.compute_noise
            ),
        )
        self.classifier = RayGroundClassifier(
            self.node_classifier, self.topic_fused, self.topic_ground,
            self.topic_nonground,
            classify_model=AffineModel(
                cfg.classify_base_ns, cfg.classify_per_point_ns, cfg.compute_noise
            ),
            sensor_height=cfg.scenario.sensor_height_m,
        )
        self.detector = EuclideanClusterDetector(
            self.node_detector, self.topic_nonground, self.topic_objects,
            cluster_model=AffineModel(
                cfg.cluster_base_ns, cfg.cluster_per_point_ns, cfg.compute_noise
            ),
        )
        self.sink = SinkService(
            self.node_rviz, [self.topic_objects, self.topic_ground]
        )

    def _build_segments(self) -> None:
        cfg = self.config
        d = cfg.d_mon
        self.segments: Dict[str, Segment] = {
            "s0_front": remote_segment(
                "s0_front", "points_front", "lidar_front", "ecu1",
                src_process="driver", dst_process="fusion",
                d_mon=d["s0_front"], d_ex=cfg.d_ex,
            ),
            "s0_rear": remote_segment(
                "s0_rear", "points_rear", "lidar_rear", "ecu1",
                src_process="driver", dst_process="fusion",
                d_mon=d["s0_rear"], d_ex=cfg.d_ex,
            ),
            "s1_front": local_segment(
                "s1_front", "ecu1", "points_front", "points_fused",
                start_process="fusion", end_process="fusion",
                d_mon=d["s1_front"], d_ex=cfg.d_ex,
            ),
            "s1_rear": local_segment(
                "s1_rear", "ecu1", "points_rear", "points_fused",
                start_process="fusion", end_process="fusion",
                d_mon=d["s1_rear"], d_ex=cfg.d_ex,
            ),
            "s2": remote_segment(
                "s2", "points_fused", "ecu1", "ecu2",
                src_process="fusion", dst_process="classifier",
                d_mon=d["s2"], d_ex=cfg.d_ex,
            ),
            "s3_objects": local_segment(
                "s3_objects", "ecu2", "points_fused", "objects",
                start_process="classifier", end_process="rviz",
                end_kind=EventKind.RECEIVE,
                d_mon=d["s3_objects"], d_ex=cfg.d_ex,
            ),
            "s3_ground": local_segment(
                "s3_ground", "ecu2", "points_fused", "ground_points",
                start_process="classifier", end_process="rviz",
                end_kind=EventKind.RECEIVE,
                d_mon=d["s3_ground"], d_ex=cfg.d_ex,
            ),
        }

    def _build_chains(self) -> None:
        cfg = self.config
        s = self.segments

        def chain(name, first, second, last):
            event_chain = EventChain(
                name=name,
                segments=[s[first], s[second], s["s2"], s[last]],
                period=cfg.period,
                budget_e2e=cfg.budget_e2e,
                budget_seg=cfg.period,
                mk=cfg.mk,
            )
            if cfg.via_dag:
                from repro.core.dag import DagChain

                event_chain = DagChain.from_linear(event_chain).to_linear()
            return event_chain

        self.chains: Dict[str, EventChain] = {
            "front_objects": chain("front_objects", "s0_front", "s1_front", "s3_objects"),
            "front_ground": chain("front_ground", "s0_front", "s1_front", "s3_ground"),
            "rear_objects": chain("rear_objects", "s0_rear", "s1_rear", "s3_objects"),
            "rear_ground": chain("rear_ground", "s0_rear", "s1_rear", "s3_ground"),
        }
        if cfg.monitoring:
            # Fail at load time on an infeasible scenario-configured
            # d_mon assignment (Eqs. 2-4) instead of monitoring with
            # deadlines no schedulable system could meet.
            from repro.budgeting.feasibility import validate_chain_budgets

            for event_chain in self.chains.values():
                validate_chain_budgets(event_chain)
        self.chain_runtimes: Dict[str, ChainRuntime] = {
            name: ChainRuntime(chain) for name, chain in self.chains.items()
        }

    def _default_handlers(self) -> Dict[str, ExceptionHandler]:
        def front_only_fusion(context):
            # Paper Fig. 3: publish the fused cloud with the data that IS
            # present (the other lidar's sweep), instead of nothing.
            cloud = context.start_data
            if cloud is None:
                cloud = context.last_good_data
            if cloud is None:
                return None
            return PointCloud(
                points=cloud.points,
                frame_index=cloud.frame_index,
                stamp=cloud.stamp,
                frame_id="partial_fusion",
            )

        return {
            "s0_front": PropagateAlways(),
            "s0_rear": PropagateAlways(),
            "s1_front": RecoverAlways(front_only_fusion),
            "s1_rear": RecoverAlways(front_only_fusion),
            "s2": PropagateAlways(),
            "s3_objects": PropagateAlways(),
            "s3_ground": PropagateAlways(),
        }

    def _build_monitors(self) -> None:
        cfg = self.config
        handlers = self._default_handlers()
        handlers.update(cfg.handlers)
        self.monitor_ecu1 = MonitorThread(
            self.ecu1, priority=cfg.monitor_priority
        )
        self.monitor_ecu2 = MonitorThread(
            self.ecu2, priority=cfg.monitor_priority
        )

        # Local segments.  s1_front and s1_rear share the fused publisher
        # as their end event -> one shared skip gate.
        fusion_gate = SkipGate(activation_fn=activation_of)
        self.local_runtimes: Dict[str, LocalSegmentRuntime] = {}
        self._extra_monitors: List[MonitorThread] = []

        def add_local(name, monitor, start_reader, end_writer=None,
                      end_reader=None, gate=None):
            if cfg.monitor_thread_per_segment:
                # Ablation: a dedicated monitor thread per segment
                # removes the fixed-processing-order skew of Fig. 10.
                monitor = MonitorThread(
                    monitor.ecu,
                    name=f"monitor-{name}",
                    priority=cfg.monitor_priority,
                )
                self._extra_monitors.append(monitor)
            runtime = LocalSegmentRuntime(
                self.segments[name],
                handler=handlers[name],
                mk=cfg.mk,
                activation_fn=activation_of,
                skip_gate=gate,
            )
            monitor.add_segment(runtime)
            runtime.attach_start(start_reader)
            if end_writer is not None:
                runtime.attach_end_writer(end_writer)
            if end_reader is not None:
                runtime.attach_end_reader(end_reader)
            self.local_runtimes[name] = runtime
            return runtime

        rt_s1_front = add_local(
            "s1_front", self.monitor_ecu1,
            self.fusion.sub_front.reader, end_writer=self.fusion.publisher.writer,
            gate=fusion_gate,
        )
        rt_s1_rear = add_local(
            "s1_rear", self.monitor_ecu1,
            self.fusion.sub_rear.reader, end_writer=self.fusion.publisher.writer,
            gate=fusion_gate,
        )
        # Fixed processing order on ECU2: objects first, then ground
        # (the skew the paper's Fig. 10 reports).
        rt_s3_objects = add_local(
            "s3_objects", self.monitor_ecu2,
            self.classifier.subscription.reader,
            end_reader=self.sink.subscriptions[0].reader,
        )
        rt_s3_ground = add_local(
            "s3_ground", self.monitor_ecu2,
            self.classifier.subscription.reader,
            end_reader=self.sink.subscriptions[1].reader,
        )

        # Remote segments.
        self.remote_monitors: Dict[str, SyncRemoteMonitor] = {}

        def add_remote(name, reader, monitor_thread, next_local):
            monitor = SyncRemoteMonitor(
                self.segments[name],
                reader,
                period=cfg.period,
                handler=handlers[name],
                mk=cfg.mk,
                context=cfg.remote_context,
                monitor_thread=monitor_thread,
                next_local=next_local,
                activation_fn=activation_of,
            )
            self.remote_monitors[name] = monitor
            return monitor

        add_remote("s0_front", self.fusion.sub_front.reader,
                   self.monitor_ecu1, [rt_s1_front])
        add_remote("s0_rear", self.fusion.sub_rear.reader,
                   self.monitor_ecu1, [rt_s1_rear])
        add_remote("s2", self.classifier.subscription.reader,
                   self.monitor_ecu2, [rt_s3_objects, rt_s3_ground])

        # Chain reporting: shared segments report to every chain they
        # belong to.
        membership = {
            "s0_front": ("front_objects", "front_ground"),
            "s0_rear": ("rear_objects", "rear_ground"),
            "s1_front": ("front_objects", "front_ground"),
            "s1_rear": ("rear_objects", "rear_ground"),
            "s2": CHAIN_NAMES,
            "s3_objects": ("front_objects", "rear_objects"),
            "s3_ground": ("front_ground", "rear_ground"),
        }
        for name, chain_names in membership.items():
            source = self.local_runtimes.get(name) or self.remote_monitors.get(name)
            for chain_name in chain_names:
                source.reporters.append(self.chain_runtimes[chain_name])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, n_frames: int, settle: Optional[int] = None) -> None:
        """Drive the stack for *n_frames* lidar periods.

        Starts PTP and both lidars, runs the simulation long enough for
        the last frame to clear the pipeline, then stops the sources and
        disarms remote monitors.
        """
        cfg = self.config
        self.ptp.start()
        if self.bg_traffic is not None:
            self.bg_traffic.start()
        self.lidar_front.start()
        self.lidar_rear.start()
        horizon = (n_frames - 1) * cfg.period + (settle or 3 * cfg.period)
        stop_at = (n_frames - 1) * cfg.period + 1
        self.sim.schedule_at(stop_at, self.lidar_front.stop)
        self.sim.schedule_at(stop_at, self.lidar_rear.stop)
        # Disarm each remote monitor after the last real frame's deadline
        # has passed but before the (artifact) deadline of the never-sent
        # next frame would fire.
        for monitor in getattr(self, "remote_monitors", {}).values():
            disarm_at = stop_at + monitor.segment.d_mon + cfg.period // 2
            self.sim.schedule_at(disarm_at, monitor.stop)
        self.sim.run(until=horizon)
        for monitor in getattr(self, "remote_monitors", {}).values():
            monitor.stop()
        if self.bg_traffic is not None:
            self.bg_traffic.stop()
        self.ptp.stop()

    # ------------------------------------------------------------------
    # Results access
    # ------------------------------------------------------------------
    def monitored_latencies(self, segment_name: str) -> List[int]:
        """Latency series recorded by the segment's monitor."""
        if segment_name in self.local_runtimes:
            return [lat for _n, lat, _o in self.local_runtimes[segment_name].latencies]
        if segment_name in self.remote_monitors:
            return [lat for _n, lat, _o in self.remote_monitors[segment_name].latencies]
        raise KeyError(f"no monitor for segment {segment_name}")

    def traced_latencies(self, segment_name: str) -> List[int]:
        """Latency series reconstructed from the communication trace
        (the measurement path used for unmonitored runs)."""
        from repro.tracing.analysis import segment_latencies_from_trace

        return segment_latencies_from_trace(self.tracer, self.segments[segment_name])

    def exception_records(self, segment_name: str):
        """TemporalExceptions raised for one segment."""
        if segment_name in self.local_runtimes:
            return list(self.local_runtimes[segment_name].exceptions)
        if segment_name in self.remote_monitors:
            return list(self.remote_monitors[segment_name].exceptions)
        return []
