"""Ray-ground classification: splits a cloud into ground / non-ground.

A simplified version of Autoware's ray-ground classifier: points are
binned by azimuth ray; within each ray, sorted by range, a point is
ground if its height stays near the expected ground level and the local
slope to the previous ground point is below a threshold.  The service
publishes ground points and non-ground points as two separate topics,
exactly like the paper's classifier on ECU2.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dds.qos import QosProfile
from repro.dds.topic import Topic
from repro.perception.pointcloud import PointCloud
from repro.ros.node import Node
from repro.sim.threads import Compute
from repro.sim.workload import AffineModel, ExecutionTimeModel


def classify_ground(
    cloud: PointCloud,
    sensor_height: float = 1.8,
    height_threshold: float = 0.25,
    slope_threshold: float = 0.12,
    n_rays: int = 256,
) -> np.ndarray:
    """Return a boolean ground mask for *cloud*.

    Pure function (unit-testable numerics); the service below wraps it
    with cost modelling and pub/sub plumbing.
    """
    if len(cloud) == 0:
        return np.zeros(0, dtype=bool)
    xyz = cloud.xyz
    x, y, z = xyz[:, 0].astype(np.float64), xyz[:, 1].astype(np.float64), xyz[:, 2].astype(np.float64)
    radius = np.hypot(x, y)
    azimuth = np.arctan2(y, x)
    ray = ((azimuth + np.pi) / (2 * np.pi) * n_rays).astype(np.int64) % n_rays
    ground_level = -sensor_height
    # Sort points by (ray, radius); within a ray compare each point to
    # its radially preceding neighbour (vectorized approximation of the
    # sequential ground-chain walk).
    order = np.lexsort((radius, ray))
    ray_s = ray[order]
    radius_s = radius[order]
    z_s = z[order]
    first_of_ray = np.empty(len(order), dtype=bool)
    first_of_ray[0] = True
    first_of_ray[1:] = ray_s[1:] != ray_s[:-1]
    prev_r = np.empty_like(radius_s)
    prev_z = np.empty_like(z_s)
    prev_r[1:] = radius_s[:-1]
    prev_z[1:] = z_s[:-1]
    prev_r[first_of_ray] = 0.0
    prev_z[first_of_ray] = ground_level
    dr = np.maximum(radius_s - prev_r, 1e-3)
    slope = np.abs(z_s - prev_z) / dr
    near_ground = np.abs(z_s - ground_level) < height_threshold
    ground_sorted = near_ground & (slope < slope_threshold)
    mask = np.zeros(len(cloud), dtype=bool)
    mask[order] = ground_sorted
    return mask


class RayGroundClassifier:
    """The classifier service on ECU2.

    Subscribes to the fused cloud, publishes ``ground_points`` and
    ``points_nonground``.
    """

    def __init__(
        self,
        node: Node,
        topic_in: Topic,
        topic_ground: Topic,
        topic_nonground: Topic,
        qos: Optional[QosProfile] = None,
        classify_model: Optional[ExecutionTimeModel] = None,
        sensor_height: float = 1.8,
    ):
        self.node = node
        self.classify_model = classify_model or AffineModel(
            base_ns=2_000_000, per_item_ns=400, noise=0.2
        )
        self.sensor_height = sensor_height
        self.pub_ground = node.create_publisher(topic_ground, qos=qos)
        self.pub_nonground = node.create_publisher(topic_nonground, qos=qos)
        self.classified_count = 0
        self.subscription = node.create_subscription(topic_in, self._on_cloud, qos=qos)

    def _on_cloud(self, sample):
        cloud: PointCloud = sample.data
        work = self.classify_model.sample(
            self.node.ecu.sim.rng("classifier"), size=len(cloud)
        )
        yield Compute(work)
        mask = classify_ground(cloud, sensor_height=self.sensor_height)
        ground = cloud.select(mask)
        nonground = cloud.select(~mask)
        self.pub_ground.publish(ground)
        self.pub_nonground.publish(nonground)
        self.classified_count += 1
