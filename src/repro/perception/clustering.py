"""Euclidean clustering: non-ground points -> object bounding boxes.

A grid-hashed single-linkage clustering (the classic euclidean cluster
extraction used by Autoware's object detector): points are bucketed into
cells of edge ``eps``; clusters grow over the 27-cell neighbourhood.
Clusters with too few points are discarded as noise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dds.qos import QosProfile
from repro.dds.topic import Topic
from repro.perception.pointcloud import PointCloud
from repro.ros.node import Node
from repro.sim.threads import Compute
from repro.sim.workload import AffineModel, ExecutionTimeModel


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned box around one detected object."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    z_min: float
    z_max: float
    point_count: int

    @property
    def center(self) -> Tuple[float, float, float]:
        """Box centroid."""
        return (
            (self.x_min + self.x_max) / 2,
            (self.y_min + self.y_max) / 2,
            (self.z_min + self.z_max) / 2,
        )

    @property
    def footprint_area(self) -> float:
        """Ground-plane area of the box."""
        return (self.x_max - self.x_min) * (self.y_max - self.y_min)


def euclidean_clusters(
    xyz: np.ndarray, eps: float = 0.8, min_points: int = 8
) -> List[np.ndarray]:
    """Cluster points; returns index arrays, one per cluster.

    Two points belong to the same cluster if a chain of points with
    pairwise cell-adjacency (cell edge = eps) connects them -- the usual
    grid approximation of euclidean cluster extraction.
    """
    if len(xyz) == 0:
        return []
    cells = np.floor(xyz / eps).astype(np.int64)
    # Vectorized bucketing: stable lexsort groups points by cell while
    # keeping ascending point order inside each bucket -- the same
    # membership and order the per-point setdefault/append loop built.
    order = np.lexsort((cells[:, 2], cells[:, 1], cells[:, 0]))
    sorted_cells = cells[order]
    if len(order) > 1:
        change = np.any(sorted_cells[1:] != sorted_cells[:-1], axis=1)
        starts = np.concatenate(([0], np.nonzero(change)[0] + 1))
    else:
        starts = np.array([0])
    ends = np.concatenate((starts[1:], [len(order)]))
    buckets: Dict[Tuple[int, int, int], np.ndarray] = {
        tuple(sorted_cells[s]): order[s:e] for s, e in zip(starts, ends)
    }
    visited = np.zeros(len(xyz), dtype=bool)
    clusters: List[np.ndarray] = []
    neighbour_offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for seed in range(len(xyz)):
        if visited[seed]:
            continue
        frontier = deque([seed])
        visited[seed] = True
        members = []
        while frontier:
            i = frontier.popleft()
            members.append(i)
            cx, cy, cz = cells[i]
            for dx, dy, dz in neighbour_offsets:
                for j in buckets.get((cx + dx, cy + dy, cz + dz), ()):
                    if not visited[j]:
                        visited[j] = True
                        frontier.append(j)
        if len(members) >= min_points:
            clusters.append(np.asarray(members))
    return clusters


def boxes_from_clusters(
    xyz: np.ndarray, clusters: List[np.ndarray]
) -> List[BoundingBox]:
    """Axis-aligned bounding boxes of the clustered points."""
    boxes = []
    for members in clusters:
        pts = xyz[members]
        boxes.append(
            BoundingBox(
                x_min=float(pts[:, 0].min()),
                x_max=float(pts[:, 0].max()),
                y_min=float(pts[:, 1].min()),
                y_max=float(pts[:, 1].max()),
                z_min=float(pts[:, 2].min()),
                z_max=float(pts[:, 2].max()),
                point_count=len(members),
            )
        )
    return boxes


@dataclass
class DetectedObjects:
    """Output message of the object-detection service."""

    frame_index: int
    stamp: int
    boxes: List[BoundingBox]

    @property
    def nbytes(self) -> int:
        """Approximate serialized size."""
        return 64 + 56 * len(self.boxes)


class EuclideanClusterDetector:
    """The object-detection service on ECU2.

    Subscribes to non-ground points, publishes detected objects.
    """

    def __init__(
        self,
        node: Node,
        topic_in: Topic,
        topic_out: Topic,
        qos: Optional[QosProfile] = None,
        cluster_model: Optional[ExecutionTimeModel] = None,
        eps: float = 0.8,
        min_points: int = 8,
    ):
        self.node = node
        self.cluster_model = cluster_model or AffineModel(
            base_ns=1_500_000, per_item_ns=900, noise=0.25
        )
        self.eps = eps
        self.min_points = min_points
        self.publisher = node.create_publisher(topic_out, qos=qos)
        self.detected_count = 0
        self.subscription = node.create_subscription(topic_in, self._on_cloud, qos=qos)

    def _on_cloud(self, sample):
        cloud: PointCloud = sample.data
        work = self.cluster_model.sample(
            self.node.ecu.sim.rng("detector"), size=len(cloud)
        )
        yield Compute(work)
        clusters = euclidean_clusters(cloud.xyz, eps=self.eps, min_points=self.min_points)
        boxes = boxes_from_clusters(cloud.xyz, clusters)
        self.publisher.publish(
            DetectedObjects(
                frame_index=cloud.frame_index, stamp=cloud.stamp, boxes=boxes
            )
        )
        self.detected_count += 1
