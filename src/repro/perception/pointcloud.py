"""Point clouds: the payload flowing through the perception chain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class PointCloud:
    """An (N, 4) float32 array of (x, y, z, intensity) points + header.

    The header carries the *frame index* -- the chain activation number
    assigned by the originating lidar driver and preserved through every
    processing stage, which is how monitors key their per-activation
    bookkeeping -- and the capture timestamp (sensor clock).
    """

    points: np.ndarray
    frame_index: int
    stamp: int
    frame_id: str = "base_link"

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float32)
        if self.points.ndim != 2 or self.points.shape[1] != 4:
            raise ValueError(
                f"expected (N, 4) point array, got shape {self.points.shape}"
            )

    def __len__(self) -> int:
        return int(self.points.shape[0])

    @property
    def nbytes(self) -> int:
        """Serialized payload size (drives network/copy costs)."""
        return int(self.points.nbytes) + 64  # header overhead

    @property
    def xyz(self) -> np.ndarray:
        """The (N, 3) coordinate block."""
        return self.points[:, :3]

    def concatenate(self, other: "PointCloud") -> "PointCloud":
        """Join two clouds (fusion); keeps this cloud's header."""
        return PointCloud(
            points=np.vstack([self.points, other.points]),
            frame_index=self.frame_index,
            stamp=min(self.stamp, other.stamp),
            frame_id=self.frame_id,
        )

    def select(self, mask: np.ndarray) -> "PointCloud":
        """A new cloud containing the masked subset of points."""
        return PointCloud(
            points=self.points[mask],
            frame_index=self.frame_index,
            stamp=self.stamp,
            frame_id=self.frame_id,
        )

    def translated(self, dx: float = 0.0, dy: float = 0.0, dz: float = 0.0) -> "PointCloud":
        """A new cloud shifted by a fixed offset (sensor extrinsics)."""
        shifted = self.points.copy()
        shifted[:, 0] += dx
        shifted[:, 1] += dy
        shifted[:, 2] += dz
        return PointCloud(
            points=shifted,
            frame_index=self.frame_index,
            stamp=self.stamp,
            frame_id=self.frame_id,
        )

    @staticmethod
    def empty(frame_index: int = 0, stamp: int = 0) -> "PointCloud":
        """A cloud with zero points (recovery placeholder)."""
        return PointCloud(
            points=np.empty((0, 4), dtype=np.float32),
            frame_index=frame_index,
            stamp=stamp,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PointCloud frame={self.frame_index} n={len(self)}>"
