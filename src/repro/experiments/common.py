"""Shared experiment configuration."""

from __future__ import annotations

import os
from typing import Callable

from repro.sim import BurstyGovernor, msec
from repro.sim.cpu import FrequencyGovernor


def default_frames(fallback: int = 400) -> int:
    """Number of chain activations to simulate.

    Controlled by the ``REPRO_FRAMES`` environment variable; the paper's
    Fig. 9 used ~4700 data points per segment (``REPRO_FRAMES=4700``).
    """
    value = os.environ.get("REPRO_FRAMES")
    if value:
        return max(10, int(value))
    return fallback


def interference_governor(
    slow_min: float = 0.08,
    slow_max: float = 0.4,
    mean_interval_ms: float = 350.0,
    mean_dwell_ms: float = 90.0,
) -> Callable[[], FrequencyGovernor]:
    """The ECU2 interference model used by the evaluation experiments.

    Stands in for the paper's "performance and power optimizations"
    (thread migration was already allowed; frequency scaling and
    co-running interference produce the heavy latency tail of Fig. 9).
    """

    def factory() -> FrequencyGovernor:
        return BurstyGovernor(
            nominal=1.0,
            slow_min=slow_min,
            slow_max=slow_max,
            mean_interval=msec(mean_interval_ms),
            mean_dwell=msec(mean_dwell_ms),
        )

    return factory
