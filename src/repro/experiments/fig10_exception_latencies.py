"""Fig. 10 -- Segment latencies for the temporal-exception cases only.

The paper filters the monitored Fig. 9 run down to the activations in
which a temporal exception occurred (934 points for the objects
segment, 1699 for ground points) and shows that detection + handling
overshoots the 100 ms deadline by at most a few hundred microseconds --
with the ground-points segment systematically behind the objects
segment because one monitor thread processes the buffers in fixed
order.

Shape properties asserted by the benchmark:

- every exception-case latency lies in ``[d_mon, d_mon + sub-ms]``;
- the ground segment's overshoot distribution sits above the objects
  segment's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import TukeyStats, summarize
from repro.experiments.common import default_frames, interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec

SEGMENTS = ("s3_objects", "s3_ground")


@dataclass
class Fig10Result:
    """Exception-case latencies and overshoots per segment."""

    n_frames: int
    deadline: int
    #: Full monitored latency of exception activations (start -> handled).
    exception_latencies: Dict[str, List[int]]
    #: Overshoot beyond the nominal deadline (handler-entry latency).
    overshoots: Dict[str, List[int]]
    stats: Dict[str, TukeyStats]


def run_fig10(
    n_frames: Optional[int] = None,
    seed: int = 42,
    deadline: int = msec(100),
) -> Fig10Result:
    """Monitored run under interference; keep only exception cases."""
    if n_frames is None:
        n_frames = default_frames()
    d_mon = {
        "s0_front": msec(10),
        "s0_rear": msec(10),
        "s1_front": msec(8),
        "s1_rear": msec(8),
        "s2": msec(10),
        "s3_objects": deadline,
        "s3_ground": deadline,
    }
    stack = PerceptionStack(StackConfig(
        seed=seed,
        monitoring=True,
        d_mon=d_mon,
        ecu2_governor=interference_governor(),
    ))
    stack.run(n_frames=n_frames, settle=msec(1500))

    exception_latencies: Dict[str, List[int]] = {}
    overshoots: Dict[str, List[int]] = {}
    stats: Dict[str, TukeyStats] = {}
    for name in SEGMENTS:
        runtime = stack.local_runtimes[name]
        excepted = {e.activation for e in runtime.exceptions}
        latencies = [
            lat for n, lat, _o in runtime.latencies if n in excepted
        ]
        shoot = [e.detection_latency for e in runtime.exceptions]
        exception_latencies[name] = latencies
        overshoots[name] = shoot
        if latencies:
            stats[f"{name} exception latency"] = summarize(latencies)
        if shoot:
            stats[f"{name} overshoot"] = summarize(shoot)
    return Fig10Result(
        n_frames=n_frames,
        deadline=deadline,
        exception_latencies=exception_latencies,
        overshoots=overshoots,
        stats=stats,
    )
