"""Fig. 12 -- Exception-entry latency of remote monitoring.

The paper programs the remote-segment deadline timer inside the DDS
middleware (eProsima event thread) and measures the time from nominal
timer expiry to entry of the timeout routine: 100 us up to ~2 ms
outliers even under low load, because the middleware thread does not
run at the highest priority ("this would not be practical anyway, as
the entire network load would interfere with all regular services").
The proposed fix (Sec. V-B) forwards timeout handling to the
high-priority monitor thread, which should bring entry latencies down
to the local-monitoring regime (< 200 us).

This experiment reproduces both sides: a periodic remote stream whose
samples are randomly dropped (forcing timeouts), handled once in
MIDDLEWARE context and once in MONITOR_THREAD context, each under
configurable CPU load.

Shape properties asserted by the benchmark:

- middleware-context entry latencies are load-sensitive and reach the
  millisecond range;
- monitor-thread-context entry latencies stay bounded well below them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import TukeyStats, summarize
from repro.core import (
    MKConstraint,
    MonitorThread,
    PropagateAlways,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.segments import remote_segment
from repro.dds import DdsDomain, Topic
from repro.network import JitterModel, Link, NetworkStack
from repro.ros import Node
from repro.sim import Compute, Ecu, Simulator, Sleep, msec, sec, usec


@dataclass
class Fig12Result:
    """Entry-latency series per timeout context."""

    n_timeouts: Dict[str, int]
    entry_latencies: Dict[str, List[int]]
    stats: Dict[str, TukeyStats]


def _run_one(
    context: TimeoutContext,
    n_periods: int,
    seed: int,
    load: float,
    drop_every: int,
) -> List[int]:
    sim = Simulator(seed=seed)
    ecu1 = Ecu(sim, "ecu1", n_cores=2)
    ecu2 = Ecu(sim, "ecu2", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(30))
    domain.register_stack(ecu1, NetworkStack(ecu1))
    domain.register_stack(ecu2, NetworkStack(ecu2))
    link = Link(sim, "e1->e2", base_latency=usec(200),
                jitter=JitterModel("uniform", usec(100)), bandwidth_bps=1e9)
    domain.add_link(ecu1, ecu2, link)
    # Drop every k-th sample to force remote timeouts.
    link.loss_filter = lambda frame: (
        getattr(frame.payload.data, "frame_index", 0) % drop_every == drop_every - 1
    )

    sender = Node(domain, ecu1, "sender", priority=40)
    receiver = Node(domain, ecu2, "receiver", priority=35, middleware_priority=30)
    topic = Topic("stream", size_fn=lambda d: 4096)

    class Payload:
        def __init__(self, frame_index):
            self.frame_index = frame_index

    sub = receiver.create_subscription(topic, lambda s: None)
    pub = sender.create_publisher(topic)
    period = msec(100)
    segment = remote_segment("seg_net", "stream", "ecu1", "ecu2", d_mon=msec(5))
    monitor_thread = MonitorThread(ecu2, priority=99)
    monitor = SyncRemoteMonitor(
        segment, sub.reader, period=period,
        handler=PropagateAlways(), mk=MKConstraint(5, 10),
        context=context, monitor_thread=monitor_thread,
        activation_fn=lambda s: getattr(s.data, "frame_index", None),
    )

    # Background load: busy threads above middleware priority but below
    # ksoftirq and the monitor thread, occupying ``load`` of each core on
    # average with aperiodic (exponential) busy/idle phases so timer
    # expiries sample arbitrary load states.
    if load > 0:
        mean_busy = load * msec(10)
        mean_idle = (1 - load) * msec(10)

        def hog(index):
            def body(_):
                rng = sim.rng(f"fig12:load{index}")
                yield Sleep(int(rng.uniform(0, msec(10))))
                while True:
                    yield Compute(max(1, int(rng.exponential(mean_busy))))
                    yield Sleep(max(1, int(rng.exponential(mean_idle))))
            return body

        for i in range(len(ecu2.scheduler.cores)):
            ecu2.spawn(f"load{i}", hog(i), priority=50)

    for i in range(n_periods):
        sim.schedule_at(
            msec(1) + i * period, pub.publish, Payload(i)
        )
    sim.run(until=msec(1) + (n_periods - 1) * period + msec(50))
    monitor.stop()
    return list(monitor.entry_latency_samples)


def run_fig12(
    n_periods: Optional[int] = None,
    seed: int = 7,
    load: float = 0.6,
    drop_every: int = 3,
) -> Fig12Result:
    """Measure timeout-entry latency in both contexts under load."""
    if n_periods is None:
        from repro.experiments.common import default_frames

        # The paper's Fig. 12 has 472 timeout samples.
        n_periods = default_frames(fallback=600)
    results: Dict[str, List[int]] = {}
    for context, label in (
        (TimeoutContext.MIDDLEWARE, "middleware (paper Fig. 12)"),
        (TimeoutContext.MONITOR_THREAD, "monitor thread (Sec. V-B)"),
    ):
        results[label] = _run_one(context, n_periods, seed, load, drop_every)
    stats = {
        label: summarize(samples)
        for label, samples in results.items()
        if samples
    }
    return Fig12Result(
        n_timeouts={label: len(samples) for label, samples in results.items()},
        entry_latencies=results,
        stats=stats,
    )
