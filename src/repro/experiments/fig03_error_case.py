"""Fig. 3 -- Example of a chain execution in an error case.

The paper's walkthrough: the front-lidar remote segment (s0) finishes
within budget; the fusion local segment (s1) exceeds its deadline
because the rear lidar is late, but the handler *recovers* by publishing
the point cloud with the front data only; the following remote segment
(s2) then also fails (transmission lost) and -- recovery being
impossible -- *propagates* the error to s3, which enters error handling
immediately instead of waiting out its own deadline.

This experiment injects exactly that fault pattern into one activation
and records the per-segment outcome sequence, plus a clean activation
for contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import Outcome
from repro.core.chain_runtime import SegmentRecord
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec

#: The activation subjected to the paper's error scenario.
FAULT_FRAME = 12


@dataclass
class Fig3Result:
    """Outcome records of the faulty and a clean activation."""

    fault_frame: int
    #: segment name -> record for the faulty activation (front chain).
    faulty: Dict[str, SegmentRecord]
    #: same for a clean activation.
    clean: Dict[str, SegmentRecord]
    #: time from s2's propagation to s3's SKIPPED bookkeeping (ns) --
    #: the "react fast without waiting out s3's deadline" property.
    s3_informed_immediately: bool


def run_fig03(seed: int = 21, n_frames: int = 25) -> Fig3Result:
    """Inject the Fig. 3 fault pattern and collect outcomes."""
    stack = PerceptionStack(StackConfig(
        seed=seed,
        # Rear lidar 70 ms late on the fault frame: s1 exceeds its 50 ms
        # deadline and recovers with the front-only cloud.
        fault_rear=lambda frame: msec(70) if frame == FAULT_FRAME else 0,
    ))
    # Lose the fused cloud of the fault frame on the ECU1->ECU2 link:
    # s2 times out and must propagate (no recovery handler for s2).
    stack.link_12.loss_filter = lambda frame: (
        getattr(frame.payload.data, "frame_index", -1) == FAULT_FRAME
    )
    stack.run(n_frames=n_frames)

    runtime = stack.chain_runtimes["front_objects"]
    report = runtime.finalize(through_activation=n_frames - 1)
    faulty = report.activations[FAULT_FRAME].segments
    clean = report.activations[FAULT_FRAME - 2].segments
    s3_record = faulty.get("s3_objects")
    s3_informed = s3_record is not None and s3_record.outcome is Outcome.SKIPPED
    return Fig3Result(
        fault_frame=FAULT_FRAME,
        faulty=dict(faulty),
        clean=dict(clean),
        s3_informed_immediately=s3_informed,
    )
