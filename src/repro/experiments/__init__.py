"""Experiment drivers: one module per paper figure.

Each module exposes a ``run_*`` function that builds the workload,
executes the simulation, and returns a structured result; the
corresponding benchmark in ``benchmarks/`` invokes it, prints the
regenerated figure (as Tukey statistics / ASCII boxplots) and asserts
the *shape* properties the paper reports.

Scale knob: set the ``REPRO_FRAMES`` environment variable to run the
full paper-scale experiments (the paper used ~4700 frames for Fig. 9);
the default keeps CI-friendly run times.
"""

from repro.experiments.common import default_frames, interference_governor

__all__ = ["default_frames", "interference_governor"]
