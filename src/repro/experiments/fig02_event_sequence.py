"""Fig. 2 -- Sequence of communication events and resulting latencies.

The paper's Fig. 2 decomposes the use case into the per-segment
latencies along both lidar chains (which share every segment except the
first two) between the observable communication events.  This
experiment runs the monitored stack in a benign configuration and
reports the latency decomposition of every segment plus the end-to-end
sums per chain, verifying the gap-free composition property: the sum of
segment latencies equals the end-to-end latency measured independently
at the sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import TukeyStats, summarize
from repro.experiments.common import default_frames
from repro.perception import PerceptionStack, StackConfig
from repro.perception.stack import SEGMENT_NAMES
from repro.sim import msec


@dataclass
class Fig2Result:
    """Per-segment latency stats and end-to-end accounting."""

    n_frames: int
    segment_stats: Dict[str, TukeyStats]
    #: Per-frame end-to-end latency of the front objects chain,
    #: measured at the sink (lidar capture -> objects reception).
    e2e_front_objects: List[int]
    #: Per-frame sum of traced segment latencies along the same chain.
    composed_front_objects: List[int]


def run_fig02(n_frames: Optional[int] = None, seed: int = 9) -> Fig2Result:
    """Benign monitored run; decompose latencies per segment."""
    if n_frames is None:
        n_frames = default_frames(fallback=150)
    stack = PerceptionStack(StackConfig(seed=seed))
    stack.run(n_frames=n_frames, settle=msec(1000))

    segment_stats = {}
    traced: Dict[str, List[int]] = {}
    for name in SEGMENT_NAMES:
        latencies = stack.traced_latencies(name)
        traced[name] = latencies
        if latencies:
            segment_stats[name] = summarize(latencies)

    # End-to-end: lidar front publication -> objects reception at rviz,
    # via the tracer's endpoint streams.
    from repro.tracing.analysis import endpoint_events

    starts = endpoint_events(stack.tracer, stack.segments["s0_front"].start)
    ends = endpoint_events(stack.tracer, stack.segments["s3_objects"].end)
    n = min(len(starts), len(ends))
    e2e = [ends[i].timestamp - starts[i].timestamp for i in range(n)]

    chain_order = ["s0_front", "s1_front", "s2", "s3_objects"]
    m = min(len(traced[name]) for name in chain_order)
    composed = [
        sum(traced[name][i] for name in chain_order) for i in range(min(n, m))
    ]
    return Fig2Result(
        n_frames=n_frames,
        segment_stats=segment_stats,
        e2e_front_objects=e2e[: len(composed)],
        composed_front_objects=composed,
    )
