"""Fig. 6 -- Inter-arrival monitoring is prone to false positives
(and false negatives).

The paper argues (Sec. IV-B1) that the DDS-style inter-arrival monitor
cannot implement latency monitoring: it only observes gaps between
consecutive arrivals, so (a) consecutive late arrivals accumulate
unbounded absolute lateness without ever exceeding the per-hop gap,
(b) implementing any concrete per-activation deadline forces a tight
``t_max_ia`` that false-positives on benign jitter, and (c) with m > 0
it cannot attribute violations to activations at all.  The
synchronization-based monitor interprets sender timestamps against the
PTP-synchronized receiver clock and avoids all three.

This experiment drives both monitors with identical arrival schedules
across three scenarios and scores them against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import (
    InterArrivalMonitor,
    MKConstraint,
    MonitorThread,
    PropagateAlways,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.segments import remote_segment
from repro.dds import DdsDomain, Sample, Topic
from repro.ros import Node
from repro.sim import Ecu, Simulator, msec, usec


@dataclass
class ScenarioScore:
    """Detection quality of one monitor in one scenario."""

    true_violations: int
    detections: int
    true_positives: int
    false_positives: int
    missed: int

    @property
    def detection_rate(self) -> float:
        """Fraction of true violations detected."""
        if self.true_violations == 0:
            return 1.0
        return self.true_positives / self.true_violations


@dataclass
class Fig6Result:
    """Per-scenario scores: {scenario: {monitor: score}}."""

    scores: Dict[str, Dict[str, ScenarioScore]] = field(default_factory=dict)


class _Payload:
    def __init__(self, frame_index: int):
        self.frame_index = frame_index


def _schedules(n: int, period: int) -> Dict[str, Tuple[List[Tuple[int, int]], set]]:
    """Arrival schedules: {name: ([(frame, publish_time)...], violated_frames)}.

    A frame is a *true violation* when its end-to-end latency (relative
    to its nominal periodic activation) exceeds the deadline
    ``d = 10 ms`` past its nominal publish instant.
    """
    deadline_slack = msec(10)
    schedules: Dict[str, Tuple[List[Tuple[int, int]], set]] = {}

    # (a) Accumulating lateness: each frame 6 ms later than the last.
    events, violated = [], set()
    for i in range(n):
        nominal = msec(1) + i * period
        actual = msec(1) + i * (period + msec(6))
        events.append((i, actual))
        if actual - nominal > deadline_slack:
            violated.add(i)
    schedules["accumulating lateness"] = (events, violated)

    # (b) Consecutive misses: frames in bursts of 3 delayed by 50 ms.
    events, violated = [], set()
    for i in range(n):
        nominal = msec(1) + i * period
        late = msec(50) if (i % 20) in (10, 11, 12) else 0
        events.append((i, nominal + late))
        if late > deadline_slack:
            violated.add(i)
    schedules["consecutive misses"] = (events, violated)

    # (c) Benign jitter: +-8 ms around nominal.  Per-activation lateness
    # stays below the 10 ms deadline (never a true violation), but
    # consecutive gaps reach 116 ms -- beyond the tightest t_max_ia that
    # could catch the accumulating-lateness case, so the inter-arrival
    # monitor is forced into false positives here or false negatives
    # there: the paper's core argument.
    events, violated = [], set()
    import numpy as np

    rng = np.random.default_rng(5)
    for i in range(n):
        nominal = msec(1) + i * period
        jitter = int(rng.integers(-msec(8), msec(8)))
        events.append((i, max(0, nominal + jitter)))
    schedules["benign jitter"] = (events, violated)
    return schedules


def _run_monitor(
    kind: str,
    events: List[Tuple[int, int]],
    period: int,
    seed: int,
) -> Tuple[set, int]:
    """Returns (frames flagged as violations, total detections)."""
    sim = Simulator(seed=seed)
    ecu = Ecu(sim, "rx", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(10))
    sender = Node(domain, ecu, "sender", priority=40)
    receiver = Node(domain, ecu, "receiver", priority=35)
    topic = Topic("stream", size_fn=lambda d: 256)
    sub = receiver.create_subscription(topic, lambda s: None)
    pub = sender.create_publisher(topic)
    monitor_thread = MonitorThread(ecu, priority=99)
    flagged: set = set()
    detections = [0]

    if kind == "sync":
        # A same-ECU delivery shortcut: the publication stands in for the
        # remote send; the monitor only interprets carried timestamps, so
        # the mechanics are identical to a true cross-ECU stream.
        segment = remote_segment("seg", "stream", "tx", "rx", d_mon=msec(10))
        monitor = SyncRemoteMonitor(
            segment, sub.reader, period=period,
            handler=PropagateAlways(), mk=MKConstraint(10, 20),
            context=TimeoutContext.MONITOR_THREAD,
            monitor_thread=monitor_thread,
            activation_fn=lambda s: getattr(s.data, "frame_index", None),
        )

        original = monitor._handle_violation

        def wrapped(n, nominal, *span_args):
            flagged.add(n)
            detections[0] += 1
            original(n, nominal, *span_args)

        monitor._handle_violation = wrapped
    else:
        # Inter-arrival with the tightest safe setting: period + deadline.
        monitor = InterArrivalMonitor(
            sub.reader, t_max_ia=period + msec(10),
            context=TimeoutContext.MONITOR_THREAD,
            monitor_thread=monitor_thread,
            rearm_on_expiry=False,
        )
        last_frame = [-1]

        def on_arrival(sample):
            last_frame[0] = sample.data.frame_index

        sub.reader.on_receive_hooks.append(on_arrival)

        def on_violation(nominal):
            # Inter-arrival cannot attribute: blame the next expected frame.
            flagged.add(last_frame[0] + 1)
            detections[0] += 1

        monitor.on_violation = on_violation

    for frame, when in events:
        # Publish with the *nominal* source timestamp: the sender stamps
        # at its periodic activation; lateness accrues downstream.
        nominal_ts = msec(1) + frame * period
        sim.schedule_at(
            when,
            lambda f=frame, ts=nominal_ts: pub.writer.write(
                _Payload(f), source_timestamp=ts
            ),
        )
    last_time = max(when for _f, when in events)
    sim.run(until=last_time + msec(30))
    monitor.stop()
    return flagged, detections[0]


def run_fig06(n_frames: Optional[int] = None, period: int = msec(100), seed: int = 3) -> Fig6Result:
    """Score inter-arrival vs synchronization-based monitoring."""
    if n_frames is None:
        from repro.experiments.common import default_frames

        n_frames = default_frames(fallback=120)
    result = Fig6Result()
    for scenario, (events, violated) in _schedules(n_frames, period).items():
        result.scores[scenario] = {}
        for kind, label in (("interarrival", "inter-arrival"), ("sync", "sync-based")):
            flagged, detections = _run_monitor(kind, events, period, seed)
            # Score only real activations: flags for frames beyond the
            # stream's end are end-of-stream artefacts, not monitoring
            # verdicts.
            flagged &= set(range(n_frames))
            true_positives = len(flagged & violated)
            result.scores[scenario][label] = ScenarioScore(
                true_violations=len(violated),
                detections=detections,
                true_positives=true_positives,
                false_positives=len(flagged - violated),
                missed=len(violated - flagged),
            )
    return result
