"""Command-line experiment runner (``python -m repro <figure>``)."""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _run_fig02() -> str:
    from repro.analysis import stats_table
    from repro.experiments.fig02_event_sequence import run_fig02

    result = run_fig02()
    mismatches = sum(
        1
        for e2e, comp in zip(result.e2e_front_objects, result.composed_front_objects)
        if e2e != comp
    )
    return (
        f"Fig. 2 ({result.n_frames} activations)\n"
        + stats_table(result.segment_stats)
        + f"\ncomposition mismatches: {mismatches} (expect 0)"
    )


def _run_fig03() -> str:
    from repro.experiments.fig03_error_case import run_fig03

    result = run_fig03()
    lines = [f"Fig. 3 (fault frame {result.fault_frame})"]
    for name, record in sorted(result.faulty.items()):
        lines.append(f"  {name:12s} {record.outcome.value}")
    lines.append(f"s3 informed immediately: {result.s3_informed_immediately}")
    return "\n".join(lines)


def _run_fig06() -> str:
    from repro.analysis import render_table
    from repro.experiments.fig06_interarrival import run_fig06

    result = run_fig06()
    rows = [
        [scenario, label, str(s.true_violations), str(s.true_positives),
         str(s.false_positives), str(s.missed)]
        for scenario, monitors in result.scores.items()
        for label, s in monitors.items()
    ]
    return "Fig. 6\n" + render_table(
        ["scenario", "monitor", "violations", "TP", "FP", "missed"], rows
    )


def _run_fig09() -> str:
    from repro.analysis import ascii_boxplot, stats_table
    from repro.experiments.fig09_segment_latencies import run_fig09

    result = run_fig09()
    return (
        f"Fig. 9 ({result.n_frames} activations)\n"
        + stats_table(result.stats)
        + "\n"
        + ascii_boxplot(result.stats, width=64)
        + f"\nexceptions: {result.exception_counts}"
    )


def _run_fig10() -> str:
    from repro.analysis import stats_table
    from repro.experiments.fig10_exception_latencies import run_fig10

    result = run_fig10()
    counts = {k: len(v) for k, v in result.exception_latencies.items()}
    return f"Fig. 10 (cases: {counts})\n" + stats_table(result.stats)


def _run_fig11() -> str:
    from repro.analysis import stats_table
    from repro.experiments.fig11_overheads import run_fig11

    result = run_fig11()
    return f"Fig. 11 ({result.n_events} events, real host)\n" + stats_table(result.stats)


def _run_fig12() -> str:
    from repro.analysis import stats_table
    from repro.experiments.fig12_remote_entry import run_fig12

    result = run_fig12()
    return f"Fig. 12 (timeouts: {result.n_timeouts})\n" + stats_table(result.stats)


def _run_budgeting() -> str:
    from repro.analysis import format_duration
    from repro.experiments.budgeting_study import run_budgeting_study

    result = run_budgeting_study()
    return (
        "Budgeting study\n"
        f"  p=0 exact:  {format_duration(result.independent.total)}\n"
        f"  p=1 greedy: {format_duration(result.greedy.total)}\n"
        f"  p=1 B&B:    {format_duration(result.exact.total)}\n"
        f"  verification (m,k) satisfied: {result.verification_mk_satisfied}"
    )


def _run_faults() -> str:
    from repro.faults import run_dag_campaign, run_default_campaign

    result = run_default_campaign()
    report = result.render_report()
    if not result.passed:
        for scenario in result.scenarios:
            for failure in (scenario.soundness.failures
                            + scenario.completeness.failures):
                report += f"\n  {scenario.name}: {failure.detail}"
    dag_result = run_dag_campaign()
    dag_report = dag_result.render_report()
    if not dag_result.passed:
        for scenario in dag_result.scenarios:
            for failure in (scenario.soundness.failures
                            + scenario.completeness.failures):
                dag_report += f"\n  {scenario.name}: {failure.detail}"
    return (
        "Fault-injection campaign\n" + report
        + "\n\nDAG fault-injection campaign (fork/join x executor models)\n"
        + dag_report
    )


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "faults": _run_faults,
    "fig02": _run_fig02,
    "fig03": _run_fig03,
    "fig06": _run_fig06,
    "fig09": _run_fig09,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "budgeting": _run_budgeting,
}

#: One-line description of every subcommand, shown in ``--help`` and
#: mirrored by the README's CLI table (tests keep the two in sync).
SUBCOMMANDS: Dict[str, str] = {
    "adapt": "closed-loop budget control plane chaos sweep",
    "all": "run every figure experiment in sequence",
    "bench": "micro/e2e benchmark suites with baseline comparison",
    "budgeting": "deadline-budgeting study (independent, greedy, B&B)",
    "chaos": "uplink fault+crash chaos sweep with ledger verification",
    "faults": "linear + fork/join DAG fault campaigns with oracle verdicts",
    "fig02": "event-sequence run: per-segment latency statistics",
    "fig03": "error-case walkthrough of one faulty activation",
    "fig06": "inter-arrival vs synchronized monitoring comparison",
    "fig09": "segment latency distributions (boxplots)",
    "fig10": "exception detection latencies by case",
    "fig11": "instrumentation overhead microbenchmark (real host)",
    "fig12": "remote timeout entry latencies by context",
    "gateway": "overload-hardened fleet gateway episode + status report",
    "telemetry": "fleet telemetry service: ingest load run + alerting",
    "trace": "causal span tracing with critical-path latency attribution",
    "warehouse": "span warehouse: ingest runs, cohort queries, diffs",
}


def _subcommand_epilog() -> str:
    width = max(len(name) for name in SUBCOMMANDS)
    lines = ["subcommands:"]
    for name in sorted(SUBCOMMANDS):
        lines.append(f"  {name:{width}s}  {SUBCOMMANDS[name]}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    if argv is None:
        argv = sys.argv[1:]
    # Subcommands with their own argument parsers route before argparse.
    if argv and argv[0] == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "telemetry":
        from repro.telemetry.cli import main as telemetry_main

        return telemetry_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.telemetry.uplink.chaos import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.tracing.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "adapt":
        from repro.adaptive.chaos import main as adapt_main

        return adapt_main(argv[1:])
    if argv and argv[0] == "warehouse":
        from repro.warehouse.cli import main as warehouse_main

        return warehouse_main(argv[1:])
    if argv and argv[0] == "gateway":
        from repro.telemetry.gateway.cli import main as gateway_main

        return gateway_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures ('bench' runs the "
        "benchmark suites, 'telemetry' the fleet telemetry service, "
        "'chaos' the uplink chaos sweep).",
        epilog=_subcommand_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["adapt", "all", "bench", "chaos", "gateway", "telemetry",
           "trace", "warehouse"],
        help="which subcommand to run (one-line descriptions below)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N worker processes (default: 1, serial)",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.jobs > 1 and len(names) > 1:
        from repro.experiments.parallel import run_experiments_parallel

        for name, output in run_experiments_parallel(names, jobs=args.jobs):
            print(f"==> {name}")
            print(output)
            print()
        return 0
    for name in names:
        print(f"==> {name}")
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
