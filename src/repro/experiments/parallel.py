"""Multiprocessing fan-out for independent experiment shards.

The figure experiments and the fault-campaign scenarios are embarrassingly
parallel: every shard builds its own :class:`~repro.sim.kernel.Simulator`
with named, deterministically seeded RNG streams, so a shard's result does
not depend on which process runs it or in which order shards finish.  The
runners here exploit that: shards are distributed over a ``spawn`` worker
pool and the results are merged **in input order**, which makes parallel
output byte-identical to a serial run.

Two sharding axes are provided:

- :func:`run_experiments_parallel` -- one worker task per figure
  experiment (``python -m repro all -j4``).
- :func:`run_campaign_parallel` -- one worker task per fault scenario
  (the 11-scenario matrix).

Scenario/experiment *names* cross the process boundary, never the objects
themselves: :class:`~repro.faults.campaign.FaultScenario` carries lambda
injector builders, which do not pickle.  Workers rebuild the registry
from the name.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import List, Optional, Sequence, Tuple

#: Path inserted into ``sys.path`` by workers so spawned interpreters can
#: import ``repro`` even when the parent set it up programmatically.
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _worker_init(package_root: str) -> None:
    if package_root not in sys.path:
        sys.path.insert(0, package_root)


def _run_experiment_by_name(name: str) -> Tuple[str, str]:
    """Worker task: execute one figure experiment, return its rendering."""
    from repro.experiments.runner import EXPERIMENTS

    return name, EXPERIMENTS[name]()


def _run_scenario_by_name(payload: Tuple[str, object]):
    """Worker task: rebuild one named scenario and run it on a fresh stack."""
    from repro.faults.campaign import FaultCampaign, default_scenarios

    name, config = payload
    matching = [s for s in default_scenarios() if s.name == name]
    if not matching:
        raise KeyError(f"unknown fault scenario {name!r}")
    return FaultCampaign(config=config).run_scenario(matching[0])


def _pool(jobs: int):
    # spawn (not fork): workers import repro afresh, so they cannot
    # inherit mutated parent state that a serial run would not see.
    context = multiprocessing.get_context("spawn")
    return context.Pool(
        processes=jobs, initializer=_worker_init, initargs=(_PACKAGE_ROOT,)
    )


def run_experiments_parallel(
    names: Sequence[str], jobs: int = 2
) -> List[Tuple[str, str]]:
    """Run figure experiments across *jobs* processes.

    Returns ``(name, rendered output)`` pairs **in the order given**, so
    printing them reproduces the serial runner's output byte for byte.
    """
    from repro.experiments.runner import EXPERIMENTS

    names = list(names)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}")
    if jobs <= 1 or len(names) <= 1:
        return [_run_experiment_by_name(n) for n in names]
    with _pool(min(jobs, len(names))) as pool:
        return pool.map(_run_experiment_by_name, names)


def run_campaign_parallel(
    scenario_names: Optional[Sequence[str]] = None,
    config=None,
    jobs: int = 2,
):
    """Run the fault campaign with one worker task per scenario.

    Merging preserves the scenario order of
    :func:`~repro.faults.campaign.default_scenarios` (or of
    *scenario_names*), so the resulting
    :class:`~repro.faults.campaign.CampaignResult` -- and its rendered
    report -- is identical to ``FaultCampaign(config=config).run()``.
    """
    from repro.faults.campaign import (
        CampaignConfig,
        CampaignResult,
        default_scenarios,
    )

    config = config or CampaignConfig()
    registry = {s.name: s for s in default_scenarios()}
    if scenario_names is None:
        scenario_names = [s.name for s in default_scenarios()]
    unknown = [n for n in scenario_names if n not in registry]
    if unknown:
        raise KeyError(f"unknown fault scenarios {unknown}")
    # Replicate the serial runner's skip rule before sharding.
    names = [
        n for n in scenario_names
        if config.watchdog or not registry[n].watchdog_required
    ]
    payloads = [(n, config) for n in names]
    if jobs <= 1 or len(payloads) <= 1:
        results = [_run_scenario_by_name(p) for p in payloads]
    else:
        with _pool(min(jobs, len(payloads))) as pool:
            results = pool.map(_run_scenario_by_name, payloads)
    return CampaignResult(scenarios=results)
