"""Fig. 11 -- Measured overheads of local segment monitoring.

The paper reports four quantities for its shared-memory monitor, all a
few tens of microseconds on average and below ~100 us worst case on its
testbed:

- *start-event overhead*: posting a start timestamp into the ring
  buffer and raising the semaphore,
- *end-event overhead*: posting an end timestamp (no notification),
- *monitor latency*: from posting a start event until the monitor
  thread has read and processed it (a lower bound on usable segment
  budgets),
- *monitor execution time*: per-wake processing time of the monitor.

Unlike the simulation-based figures, this experiment measures the
**real** :mod:`repro.ipc` implementation on the host with
``perf_counter_ns``/``monotonic_ns`` -- the same methodology as the
paper, modulo Python instead of C++.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import TukeyStats, summarize
from repro.ipc import IpcMonitor, IpcSegment, SpscRingBuffer


@dataclass
class Fig11Result:
    """Overhead sample series + Tukey stats."""

    n_events: int
    start_overheads: List[int]
    end_overheads: List[int]
    monitor_latencies: List[int]
    execution_times: List[int]
    stats: Dict[str, TukeyStats]


def _make_segment(name: str, deadline_ns: int, capacity: int = 4096) -> IpcSegment:
    start_buf = SpscRingBuffer(
        bytearray(SpscRingBuffer.required_size(capacity)), capacity, initialize=True
    )
    end_buf = SpscRingBuffer(
        bytearray(SpscRingBuffer.required_size(capacity)), capacity, initialize=True
    )
    return IpcSegment(name, deadline_ns, start_buf, end_buf)


def run_fig11(n_events: Optional[int] = None, deadline_ms: float = 100.0) -> Fig11Result:
    """Measure the real monitor machinery with host clocks."""
    if n_events is None:
        n_events = 2000
    deadline_ns = int(deadline_ms * 1e6)
    segment = _make_segment("objects", deadline_ns)
    monitor = IpcMonitor([segment])
    start_overheads: List[int] = []
    end_overheads: List[int] = []
    with monitor:
        for i in range(n_events):
            start_overheads.append(segment.post_start(i, monitor.semaphore))
            # Complete the segment promptly (we measure overheads, not
            # exceptions): post the end event and give the monitor an
            # occasional breather so wake-ups interleave realistically.
            end_overheads.append(segment.post_end(i))
            if i % 64 == 0:
                time.sleep(0.0005)
        # Let the monitor drain the final events before stopping.
        time.sleep(0.05)
    stats = {
        "start-event overhead": summarize(start_overheads),
        "end-event overhead": summarize(end_overheads),
        "monitor latency": summarize(monitor.stats.monitor_latencies),
        "monitor execution time": summarize(monitor.stats.execution_times),
    }
    return Fig11Result(
        n_events=n_events,
        start_overheads=start_overheads,
        end_overheads=end_overheads,
        monitor_latencies=list(monitor.stats.monitor_latencies),
        execution_times=list(monitor.stats.execution_times),
        stats=stats,
    )
