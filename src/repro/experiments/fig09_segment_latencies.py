"""Fig. 9 -- Segment latencies on ECU2 with and without monitoring.

The paper runs the Autoware.Auto perception stack on ECU2, records
~4700 latency samples for each of the two local segments (classifier ->
objects@rviz and classifier -> ground-points@rviz), once without
monitoring (latencies up to ~600 ms) and once with a 100 ms segment
deadline (reaction guaranteed within 100 ms of the start event).

Shape properties asserted by the benchmark:

- the unmonitored distribution has a tail far beyond the deadline;
- the monitored distribution is capped at ``d_mon`` plus a sub-millisecond
  exception-handling overshoot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import TukeyStats, summarize
from repro.experiments.common import default_frames, interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec

SEGMENTS = ("s3_objects", "s3_ground")


@dataclass
class Fig9Result:
    """Latency series and Tukey stats, paper-figure layout."""

    n_frames: int
    deadline: int
    unmonitored: Dict[str, List[int]]
    monitored: Dict[str, List[int]]
    stats: Dict[str, TukeyStats]
    exception_counts: Dict[str, int]


def _config(seed: int, monitoring: bool, deadline: int) -> StackConfig:
    d_mon = {
        "s0_front": msec(10),
        "s0_rear": msec(10),
        "s1_front": msec(8),
        "s1_rear": msec(8),
        "s2": msec(10),
        "s3_objects": deadline,
        "s3_ground": deadline,
    }
    return StackConfig(
        seed=seed,
        monitoring=monitoring,
        d_mon=d_mon,
        ecu2_governor=interference_governor(),
    )


def run_fig09(
    n_frames: Optional[int] = None,
    seed: int = 42,
    deadline: int = msec(100),
) -> Fig9Result:
    """Run the two Fig. 9 configurations and collect latency series."""
    if n_frames is None:
        n_frames = default_frames()

    unmonitored_stack = PerceptionStack(_config(seed, False, deadline))
    unmonitored_stack.run(n_frames=n_frames, settle=msec(1500))
    unmonitored = {
        name: unmonitored_stack.traced_latencies(name) for name in SEGMENTS
    }

    monitored_stack = PerceptionStack(_config(seed, True, deadline))
    monitored_stack.run(n_frames=n_frames, settle=msec(1500))
    monitored = {
        name: monitored_stack.monitored_latencies(name) for name in SEGMENTS
    }
    exception_counts = {
        name: len(monitored_stack.exception_records(name)) for name in SEGMENTS
    }

    stats = {}
    for name in SEGMENTS:
        stats[f"{name} (no monitor)"] = summarize(unmonitored[name])
        stats[f"{name} (monitored)"] = summarize(monitored[name])
    return Fig9Result(
        n_frames=n_frames,
        deadline=deadline,
        unmonitored=unmonitored,
        monitored=monitored,
        stats=stats,
        exception_counts=exception_counts,
    )
