"""Sec. III-C -- Trace-based budgeting, end to end.

The paper's deployment workflow: record an *unmonitored* trace, extend
latencies by the exception-handling WCRT, solve the CSP of Eqs. (2)-(7)
for minimal segment deadlines, then deploy the monitors with those
deadlines.  This experiment runs the full loop on the perception stack:

1. unmonitored run -> ChainTrace (via the LTTng-like tracer),
2. solve for p = 0 (exact, independent) and p = 1 (greedy + exact B&B),
3. redeploy with the synthesized ``d_mon`` and verify the (m,k)
   constraint holds on a fresh monitored run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.budgeting import (
    BudgetingProblem,
    SolverResult,
    distribute_slack,
    solve_branch_and_bound,
    solve_greedy_propagated,
    solve_independent,
)
from repro.experiments.common import default_frames, interference_governor
from repro.perception import PerceptionStack, StackConfig
from repro.sim import msec
from repro.tracing.analysis import chain_trace_from_tracer


@dataclass
class BudgetingStudyResult:
    """Solver outputs and the verification run's verdict."""

    n_frames: int
    independent: SolverResult
    greedy: SolverResult
    exact: SolverResult
    deployed_d_mon: Dict[str, int]
    verification_mk_satisfied: bool
    verification_max_window_misses: int
    verification_miss_count: int


def run_budgeting_study(
    n_frames: Optional[int] = None,
    seed: int = 17,
    d_ex: int = msec(1),
) -> BudgetingStudyResult:
    """Execute the full trace -> solve -> deploy -> verify loop."""
    if n_frames is None:
        n_frames = default_frames(fallback=300)

    # Step 1: unmonitored measurement run.  The interference is kept at
    # a moderate level: measurement-based budgeting presumes the traced
    # behaviour is representative of deployment, so the miss-producing
    # tail must be rare and un-clustered (the paper's implicit premise).
    governor = interference_governor(
        slow_min=0.45, slow_max=0.7, mean_interval_ms=600, mean_dwell_ms=30
    )
    measure = PerceptionStack(StackConfig(
        seed=seed,
        monitoring=False,
        ecu2_governor=governor,
    ))
    measure.run(n_frames=n_frames, settle=msec(1500))
    chain = measure.chains["front_objects"]
    trace = chain_trace_from_tracer(measure.tracer, chain, d_ex=d_ex)

    # Step 2: solve.
    problem_p0 = BudgetingProblem(chain, trace, propagation=[0, 0, 0, 0])
    problem_p1 = BudgetingProblem(chain, trace, propagation=[1, 1, 1, 1])
    independent = solve_independent(problem_p0)
    greedy = solve_greedy_propagated(problem_p1)
    exact = solve_branch_and_bound(problem_p1)

    chosen = exact if exact.schedulable else greedy
    if not chosen.schedulable:
        raise RuntimeError(f"budgeting infeasible: {chosen.reason}")
    # Minimal deadlines are tight to the measured trace; hand the unused
    # end-to-end budget back to the segments (raising deadlines can only
    # remove misses) before deployment, as Sec. III-C intends.
    assert chain.budget_seg is not None
    deployed = distribute_slack(
        chosen.deadlines,
        budget_e2e=chain.budget_e2e,
        budget_seg=chain.budget_seg,
        strategy="proportional",
    )
    d_mon = problem_p1.monitored_deadlines(deployed)

    # Step 3: deploy and verify on a fresh run (same interference model,
    # different activation pattern via a different seed).
    deadlines = {
        "s0_front": d_mon["s0_front"],
        "s0_rear": d_mon["s0_front"],
        "s1_front": d_mon["s1_front"],
        "s1_rear": d_mon["s1_front"],
        "s2": d_mon["s2"],
        "s3_objects": d_mon["s3_objects"],
        "s3_ground": d_mon["s3_objects"],
    }
    verify = PerceptionStack(StackConfig(
        seed=seed + 1,
        monitoring=True,
        d_mon=deadlines,
        d_ex=d_ex,
        ecu2_governor=governor,
    ))
    verify.run(n_frames=n_frames, settle=msec(1500))
    report = verify.chain_runtimes["front_objects"].finalize(
        through_activation=n_frames - 1
    )
    return BudgetingStudyResult(
        n_frames=n_frames,
        independent=independent,
        greedy=greedy,
        exact=exact,
        deployed_d_mon=d_mon,
        verification_mk_satisfied=report.mk_satisfied,
        verification_max_window_misses=report.max_window_misses,
        verification_miss_count=report.miss_count,
    )
