"""Windowed miss counting with propagation (paper Eqs. 5-7).

Given candidate deadlines, a segment's *miss series* marks every
activation whose extended latency exceeds its deadline (Eq. 6 counts
these within sliding windows of k).  Eq. (7) adds, per position n, the
windowed misses of preceding segments whose propagation factor ``p_l``
is 1 -- a recovered (p=0) miss never reaches the chain level, while a
propagated (p=1) miss consumes chain (m,k) budget wherever it happens.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def miss_series(extended_latencies: Sequence[int], deadline: int) -> List[bool]:
    """Eq. (6)'s indicator: activation j misses iff ``l'_j > d``."""
    return [latency > deadline for latency in extended_latencies]


def window_miss_profile(misses: Sequence[bool], k: int) -> List[int]:
    """``m_i(n)``: misses within window [n, n+k) for every n.

    Returns one entry per window start position (len(misses) - k + 1
    entries for traces longer than k; a single entry otherwise).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = len(misses)
    if n == 0:
        return [0]
    arr = np.asarray(misses, dtype=np.int64)
    if n <= k:
        return [int(arr.sum())]
    csum = np.concatenate(([0], np.cumsum(arr)))
    return [int(csum[i + k] - csum[i]) for i in range(n - k + 1)]


def propagated_window_misses(
    miss_matrix: Sequence[Sequence[bool]],
    k: int,
    propagation: Sequence[int],
) -> List[int]:
    """``max_n M_i(n)`` per segment (Eqs. 5-7).

    Parameters
    ----------
    miss_matrix:
        One miss series per segment, chain order, equal lengths.
    k:
        Window length of the (m,k) constraint.
    propagation:
        ``p_l`` per segment (0 = always recovered, 1 = propagated).

    Returns
    -------
    list of int
        For each segment i, the worst-case windowed miss count
        including propagated misses of preceding segments.
    """
    if len(miss_matrix) != len(propagation):
        raise ValueError("need one propagation factor per segment")
    for p in propagation:
        if p not in (0, 1):
            raise ValueError(f"propagation factor must be 0 or 1, got {p}")
    profiles = [window_miss_profile(m, k) for m in miss_matrix]
    lengths = {len(p) for p in profiles}
    if len(lengths) > 1:
        raise ValueError("miss series must share one length")
    results: List[int] = []
    n_windows = len(profiles[0])
    for i in range(len(miss_matrix)):
        worst = 0
        for n in range(n_windows):
            total = profiles[i][n]
            for l in range(i):
                if propagation[l]:
                    total += profiles[l][n]
            if total > worst:
                worst = total
        results.append(worst)
    return results
