"""The budgeting constraint-satisfaction problem (paper Eqs. 2-7).

find        d^si in N                       for all si in Sc        (2)
subject to  B_e2e >= sum(d^si)                                      (3)
            B_seg >= d^si                                           (4)
            m >= max_n M_i(n)               for all si in Sc        (5)

with m_i(n) the misses of segment i within the window starting at n
(Eq. 6) and M_i(n) adding propagated misses of preceding segments
(Eq. 7).  A chain is *schedulable* iff an assignment exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.budgeting.traces import ChainTrace
from repro.budgeting.windows import miss_series, propagated_window_misses
from repro.core.chains import EventChain


@dataclass
class FeasibilityReport:
    """Outcome of checking one deadline assignment."""

    feasible: bool
    violated_constraints: List[str] = field(default_factory=list)
    #: max_n M_i(n) per segment (Eq. 5 left-hand sides).
    window_misses: List[int] = field(default_factory=list)
    deadline_sum: int = 0


class BudgetingProblem:
    """One chain's deadline-synthesis instance.

    Parameters
    ----------
    chain:
        The chain (provides B_e2e, B_seg, (m,k) and segment order).
    trace:
        Aligned per-segment traces; extended latencies are derived from
        each trace's ``d_ex``.
    propagation:
        ``p_l`` per segment (chain order).  Defaults to all 1 (worst
        case: every miss propagates).
    """

    def __init__(
        self,
        chain: EventChain,
        trace: ChainTrace,
        propagation: Optional[Sequence[int]] = None,
    ):
        self.chain = chain
        self.order = [segment.name for segment in chain.segments]
        self.trace = trace.aligned()
        if self.trace.length == 0:
            raise ValueError("empty trace")
        if propagation is None:
            propagation = [1] * len(self.order)
        if len(propagation) != len(self.order):
            raise ValueError(
                f"need {len(self.order)} propagation factors, got {len(propagation)}"
            )
        self.propagation = list(propagation)
        self.extended = self.trace.extended_matrix(self.order)

    @property
    def m(self) -> int:
        """Tolerated misses of the chain's (m,k) constraint."""
        return self.chain.mk.m

    @property
    def k(self) -> int:
        """Window length of the chain's (m,k) constraint."""
        return self.chain.mk.k

    def candidates(self, segment_index: int) -> List[int]:
        """Sorted distinct deadline candidates for one segment.

        Only the distinct extended latencies (clipped to B_seg) matter:
        between two consecutive observed values the miss set does not
        change, so the minimal deadline is always one of these values
        (or B_seg when the maximum exceeds it).  The minimum candidate 1
        represents "every activation misses", which is admissible when
        m is large enough.
        """
        assert self.chain.budget_seg is not None
        values = sorted(set(self.extended[segment_index]))
        if not values or values[0] > 1:
            values.insert(0, 1)
        clipped = [value for value in values if value <= self.chain.budget_seg]
        if len(clipped) < len(values) and (
            not clipped or clipped[-1] != self.chain.budget_seg
        ):
            clipped.append(self.chain.budget_seg)
        if not clipped:
            clipped = [self.chain.budget_seg]
        return clipped

    def check(self, deadlines: Sequence[int]) -> FeasibilityReport:
        """Verify Eqs. (3)-(5) for one assignment of total deadlines."""
        if len(deadlines) != len(self.order):
            raise ValueError(
                f"need {len(self.order)} deadlines, got {len(deadlines)}"
            )
        violated: List[str] = []
        total = int(sum(deadlines))
        if total > self.chain.budget_e2e:
            violated.append(
                f"Eq.3: sum(d)={total} > B_e2e={self.chain.budget_e2e}"
            )
        assert self.chain.budget_seg is not None
        for name, deadline in zip(self.order, deadlines):
            if deadline > self.chain.budget_seg:
                violated.append(
                    f"Eq.4: d[{name}]={deadline} > B_seg={self.chain.budget_seg}"
                )
            if deadline <= 0:
                violated.append(f"Eq.2: d[{name}] must be positive")
        miss_matrix = [
            miss_series(extended, deadline)
            for extended, deadline in zip(self.extended, deadlines)
        ]
        window_misses = propagated_window_misses(
            miss_matrix, self.k, self.propagation
        )
        for name, worst in zip(self.order, window_misses):
            if worst > self.m:
                violated.append(
                    f"Eq.5: segment {name} sees {worst} window misses > m={self.m}"
                )
        return FeasibilityReport(
            feasible=not violated,
            violated_constraints=violated,
            window_misses=window_misses,
            deadline_sum=total,
        )

    def monitored_deadlines(self, deadlines: Sequence[int]) -> Dict[str, int]:
        """Split total deadlines into ``d_mon`` per segment
        (``d_mon = d - d_ex``)."""
        out = {}
        for name, deadline in zip(self.order, deadlines):
            d_ex = self.trace[name].d_ex
            d_mon = deadline - d_ex
            if d_mon <= 0:
                raise ValueError(
                    f"{name}: deadline {deadline} leaves no monitored "
                    f"budget after d_ex={d_ex}"
                )
            out[name] = d_mon
        return out
