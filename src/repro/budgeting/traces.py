"""Latency traces recorded from unmonitored runs.

A :class:`SegmentTrace` holds the measured latencies ``l_n`` of one
segment, aligned by activation index n.  The *extended trace*
``l'_n = l_n + d_ex`` (Sec. III-C) adds the worst-case response time of
the exception handling, so that a deadline chosen from the extended
trace leaves room to detect-and-handle within the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


@dataclass
class SegmentTrace:
    """Measured latencies of one segment, aligned by activation."""

    segment_name: str
    latencies: List[int]
    #: Exception-handling WCRT added to every value (``d_ex``).
    d_ex: int = 0

    def __post_init__(self) -> None:
        if any(latency < 0 for latency in self.latencies):
            raise ValueError(f"{self.segment_name}: negative latency in trace")
        if self.d_ex < 0:
            raise ValueError(f"{self.segment_name}: negative d_ex")

    def __len__(self) -> int:
        return len(self.latencies)

    @property
    def extended(self) -> List[int]:
        """The extended trace ``L'`` with ``l' = l + d_ex``."""
        return [latency + self.d_ex for latency in self.latencies]

    def percentile(self, q: float) -> int:
        """The q-th percentile of the raw latencies (q in [0, 100])."""
        if not self.latencies:
            raise ValueError(f"{self.segment_name}: empty trace")
        return int(np.percentile(self.latencies, q))

    @property
    def maximum(self) -> int:
        """Largest observed raw latency."""
        return max(self.latencies)

    @property
    def maximum_extended(self) -> int:
        """Largest extended latency (candidate for ``d``)."""
        return self.maximum + self.d_ex


@dataclass
class ChainTrace:
    """Aligned traces of all segments of one chain."""

    chain_name: str
    segments: Dict[str, SegmentTrace] = field(default_factory=dict)

    def add(self, trace: SegmentTrace) -> None:
        """Register a segment trace (one per segment)."""
        if trace.segment_name in self.segments:
            raise ValueError(f"duplicate trace for {trace.segment_name}")
        self.segments[trace.segment_name] = trace

    def __getitem__(self, segment_name: str) -> SegmentTrace:
        return self.segments[segment_name]

    def __contains__(self, segment_name: str) -> bool:
        return segment_name in self.segments

    @property
    def length(self) -> int:
        """Number of aligned activations (the shortest segment trace)."""
        if not self.segments:
            return 0
        return min(len(trace) for trace in self.segments.values())

    def aligned(self) -> "ChainTrace":
        """Return a copy truncated so all segment traces share a length.

        Traces recorded live can differ by a frame or two at the tail
        (downstream segments lag); alignment keeps Eq. (7)'s per-n sums
        meaningful.
        """
        n = self.length
        aligned = ChainTrace(self.chain_name)
        for name, trace in self.segments.items():
            aligned.add(
                SegmentTrace(name, trace.latencies[:n], d_ex=trace.d_ex)
            )
        return aligned

    def extended_matrix(self, order: Sequence[str]) -> List[List[int]]:
        """Extended traces as a list of rows following *order*."""
        missing = [name for name in order if name not in self.segments]
        if missing:
            raise KeyError(f"{self.chain_name}: no trace for {missing}")
        return [self.segments[name].extended for name in order]


def trace_from_chain_runtime(runtime, d_ex_by_segment: Optional[Dict[str, int]] = None) -> ChainTrace:
    """Build a ChainTrace from a finished :class:`ChainRuntime`.

    Uses the recorded monitored/unmonitored latencies per segment; the
    intended use is on *unmonitored* runs (monitors in observe-only
    deployments), matching the paper's measurement phase.
    """
    d_ex_by_segment = d_ex_by_segment or {}
    trace = ChainTrace(runtime.chain.name)
    for segment in runtime.chain.segments:
        latencies = runtime.segment_latencies(segment.name)
        trace.add(
            SegmentTrace(
                segment.name,
                latencies,
                d_ex=d_ex_by_segment.get(segment.name, segment.d_ex),
            )
        )
    return trace
