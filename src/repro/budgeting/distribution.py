"""Distributing leftover end-to-end budget over segment deadlines.

The solvers return *minimal* deadlines; any slack
``B_e2e - sum(d)`` can be given back to segments to reduce exception
rates (every added nanosecond of deadline can only remove misses).
Raising deadlines never violates Eq. (5) -- misses shrink monotonically
-- so any distribution respecting Eq. (3) and Eq. (4) stays feasible.
"""

from __future__ import annotations

from typing import List, Sequence


def distribute_slack(
    deadlines: Sequence[int],
    budget_e2e: int,
    budget_seg: int,
    strategy: str = "proportional",
    weights: Sequence[float] = (),
) -> List[int]:
    """Return deadlines inflated to consume the remaining budget.

    Strategies
    ----------
    ``"none"``
        Keep the minimal deadlines.
    ``"equal"``
        Split slack evenly (respecting the B_seg cap per segment).
    ``"proportional"``
        Split slack proportionally to the minimal deadlines (segments
        with larger variability typically have larger minima).
    ``"weighted"``
        Split by explicit *weights*.
    """
    deadlines = list(deadlines)
    if strategy == "none":
        return deadlines
    slack = budget_e2e - sum(deadlines)
    if slack < 0:
        raise ValueError(f"deadlines already exceed budget by {-slack}")
    if slack == 0:
        return deadlines
    if strategy == "equal":
        weights = [1.0] * len(deadlines)
    elif strategy == "proportional":
        weights = [float(max(1, d)) for d in deadlines]
    elif strategy == "weighted":
        if len(weights) != len(deadlines):
            raise ValueError("need one weight per segment")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    result = list(deadlines)
    remaining = slack
    # Iterate because the B_seg cap can push slack to other segments.
    for _round in range(len(deadlines) + 1):
        if remaining <= 0:
            break
        headroom = [budget_seg - d for d in result]
        open_weights = [
            w if h > 0 else 0.0 for w, h in zip(weights, headroom)
        ]
        total_weight = sum(open_weights)
        if total_weight == 0:
            break
        distributed = 0
        for i, (w, h) in enumerate(zip(open_weights, headroom)):
            if w == 0:
                continue
            share = min(h, int(remaining * w / total_weight))
            result[i] += share
            distributed += share
        if distributed == 0:
            # Integer rounding stalls: give the remainder to the first
            # segment with headroom.
            for i, h in enumerate(budget_seg - d for d in result):
                if h > 0:
                    bump = min(h, remaining)
                    result[i] += bump
                    distributed += bump
                    break
        remaining -= distributed
        if distributed == 0:
            break
    return result
