"""Budgeting over DAG event chains: the CSP (Eqs. 2-7) per path.

A DAG instance generalizes the paper's constraints in the obvious way:

    find        d^s in N                for all segments s            (2')
    subject to  B_e2e(sink(p)) >= sum_{s in p} d^s   for every path p (3')
                B_seg >= d^s                                          (4')
                m_p >= max_n M_i(n)     for every segment i of p      (5')

i.e. Eq. (3) telescopes along *every* root->sink path against that
path's own sink budget, and Eq. (5)'s propagated window misses are
counted along each path independently (a miss on a fork branch does not
consume the sibling branch's budget).  Segments shared by several paths
-- join/fork stages -- get *one* deadline that must satisfy all of them,
which is what couples the per-path subproblems.

The solver mirrors :func:`~repro.budgeting.solvers.solve_greedy_propagated`
lifted to the DAG: start from the most conservative candidate per
segment and greedily descend until every path's telescoped sum fits,
never stepping through an Eq. (5') violation on any path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.budgeting.csp import BudgetingProblem, FeasibilityReport
from repro.budgeting.traces import ChainTrace
from repro.core.dag import DagChain


@dataclass
class DagFeasibilityReport:
    """Outcome of checking one deadline assignment on every path."""

    feasible: bool
    #: path id -> the path's linear feasibility report.
    per_path: Dict[str, FeasibilityReport] = field(default_factory=dict)

    @property
    def violated_constraints(self) -> List[str]:
        """Flat list of violated constraints, prefixed by path id."""
        out = []
        for path_id, report in self.per_path.items():
            out.extend(f"{path_id}: {v}" for v in report.violated_constraints)
        return out


@dataclass
class DagSolverResult:
    """Outcome of a DAG budgeting solve."""

    schedulable: bool
    #: Total deadline d per segment name; empty if unschedulable.
    deadlines: Dict[str, int] = field(default_factory=dict)
    #: Telescoped deadline sum per path id.
    path_totals: Dict[str, int] = field(default_factory=dict)
    reason: str = ""
    nodes_explored: int = 0

    def as_monitored(self, problem: "DagBudgetingProblem") -> Dict[str, int]:
        """The ``d_mon = d - d_ex`` split of the found deadlines."""
        return problem.monitored_deadlines(self.deadlines)


class DagBudgetingProblem:
    """One DAG's deadline-synthesis instance.

    Parameters
    ----------
    dag:
        The DAG (provides per-sink budgets, B_seg, per-path (m,k)).
    trace:
        Aligned traces covering every segment of the DAG.
    propagation:
        ``p_l`` per segment name; defaults to all 1 (every miss
        propagates downstream along each path).
    """

    def __init__(
        self,
        dag: DagChain,
        trace: ChainTrace,
        propagation: Optional[Mapping[str, int]] = None,
    ):
        self.dag = dag
        self.trace = trace.aligned()
        if self.trace.length == 0:
            raise ValueError("empty trace")
        if propagation is None:
            propagation = {name: 1 for name in dag.segments}
        missing = [s for s in dag.segments if s not in propagation]
        if missing:
            raise ValueError(f"need propagation factors for {missing}")
        self.propagation = dict(propagation)
        #: path id -> the path's linear budgeting subproblem.
        self.problems: Dict[str, BudgetingProblem] = {}
        for path in dag.paths():
            chain = dag.path_chain(path)
            self.problems[path.path_id] = BudgetingProblem(
                chain,
                self.trace,
                propagation=[propagation[s] for s in path.segment_names],
            )

    # ------------------------------------------------------------------
    def candidates(self, segment_name: str) -> List[int]:
        """Sorted distinct deadline candidates for one segment.

        Candidate sets are a per-segment property of the trace (clipped
        to B_seg), so any path subproblem containing the segment yields
        the same set.
        """
        for path in self.dag.paths():
            if segment_name in path.segment_names:
                problem = self.problems[path.path_id]
                return problem.candidates(
                    path.segment_names.index(segment_name)
                )
        raise KeyError(f"{self.dag.name}: unknown segment {segment_name!r}")

    def check(self, deadlines: Mapping[str, int]) -> DagFeasibilityReport:
        """Verify Eqs. (3')-(5') for one assignment of total deadlines."""
        missing = [s for s in self.dag.segments if s not in deadlines]
        if missing:
            raise ValueError(f"need deadlines for {missing}")
        per_path: Dict[str, FeasibilityReport] = {}
        for path in self.dag.paths():
            problem = self.problems[path.path_id]
            per_path[path.path_id] = problem.check(
                [deadlines[s] for s in path.segment_names]
            )
        return DagFeasibilityReport(
            feasible=all(r.feasible for r in per_path.values()),
            per_path=per_path,
        )

    def monitored_deadlines(self, deadlines: Mapping[str, int]) -> Dict[str, int]:
        """Split total deadlines into ``d_mon`` per segment."""
        out = {}
        for name, deadline in deadlines.items():
            d_ex = self.trace[name].d_ex
            d_mon = deadline - d_ex
            if d_mon <= 0:
                raise ValueError(
                    f"{name}: deadline {deadline} leaves no monitored "
                    f"budget after d_ex={d_ex}"
                )
            out[name] = d_mon
        return out

    def path_totals(self, deadlines: Mapping[str, int]) -> Dict[str, int]:
        """Telescoped deadline sum per path id."""
        return {
            path.path_id: sum(deadlines[s] for s in path.segment_names)
            for path in self.dag.paths()
        }

    # ------------------------------------------------------------------
    def _eq5_feasible(self, deadlines: Dict[str, int]) -> bool:
        """Eq. (5') alone (window misses), ignoring the budget sums."""
        for path in self.dag.paths():
            report = self.problems[path.path_id].check(
                [deadlines[s] for s in path.segment_names]
            )
            if any("Eq.5" in v for v in report.violated_constraints):
                return False
        return True

    def _sums_fit(self, deadlines: Dict[str, int]) -> bool:
        for path in self.dag.paths():
            total = sum(deadlines[s] for s in path.segment_names)
            if total > self.dag.budget_e2e[path.sink]:
                return False
        return True

    def solve_greedy(self) -> DagSolverResult:
        """Greedy descent from the most conservative assignment.

        Start each segment at its largest candidate (observed maximum
        clipped to B_seg).  While some path's telescoped sum exceeds its
        sink budget, lower the deadline of one segment *on an
        over-budget path* to its next smaller candidate -- the step with
        the largest gain that keeps Eq. (5') feasible on every path.
        """
        candidates = {s: self.candidates(s) for s in self.dag.segments}
        indices = {s: len(c) - 1 for s, c in candidates.items()}
        current = {s: candidates[s][indices[s]] for s in self.dag.segments}
        nodes = 1
        if not self._eq5_feasible(current):
            return DagSolverResult(
                schedulable=False,
                reason="even maximal deadlines violate Eq. (5') on some path",
                nodes_explored=nodes,
            )
        while not self._sums_fit(current):
            over_budget = set()
            for path in self.dag.paths():
                total = sum(current[s] for s in path.segment_names)
                if total > self.dag.budget_e2e[path.sink]:
                    over_budget.update(path.segment_names)
            best_step = None
            best_gain = 0
            for s in sorted(over_budget):
                if indices[s] == 0:
                    continue
                trial_value = candidates[s][indices[s] - 1]
                gain = current[s] - trial_value
                if gain <= best_gain:
                    continue
                trial = dict(current)
                trial[s] = trial_value
                nodes += 1
                if self._eq5_feasible(trial):
                    best_step = s
                    best_gain = gain
            if best_step is None:
                return DagSolverResult(
                    schedulable=False,
                    deadlines=current,
                    path_totals=self.path_totals(current),
                    reason="greedy descent stuck with over-budget paths",
                    nodes_explored=nodes,
                )
            indices[best_step] -= 1
            current[best_step] = candidates[best_step][indices[best_step]]
        report = self.check(current)
        if not report.feasible:
            return DagSolverResult(
                schedulable=False,
                deadlines=current,
                path_totals=self.path_totals(current),
                reason="; ".join(report.violated_constraints[:4]),
                nodes_explored=nodes,
            )
        return DagSolverResult(
            schedulable=True,
            deadlines=current,
            path_totals=self.path_totals(current),
            nodes_explored=nodes,
        )


def solve_dag_budgets(
    dag: DagChain,
    trace: ChainTrace,
    propagation: Optional[Mapping[str, int]] = None,
) -> DagSolverResult:
    """Convenience entry point: greedy per-path budget synthesis."""
    return DagBudgetingProblem(dag, trace, propagation).solve_greedy()
