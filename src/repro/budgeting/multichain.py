"""Joint budgeting of multiple chains with shared segments.

The paper's use case has four chains sharing all but their first two
segments (its Fig. 2).  Budgeting each chain in isolation can assign
*different* deadlines to a shared segment; a deployment needs one
deadline per segment such that **every** chain's Eqs. (3)-(5) hold.

The joint problem remains a search over per-segment candidate
deadlines; this module solves it with the same branch-and-bound
machinery, searching over the union of segments and checking every
chain's constraints.  For the common case where the solutions do not
conflict, :func:`reconcile_independent` is a cheap first attempt: take
the per-chain solutions' maximum per shared segment and re-verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.budgeting.csp import BudgetingProblem
from repro.budgeting.solvers import SolverResult, minimal_deadline


@dataclass
class MultiChainResult:
    """Outcome of a joint multi-chain solve."""

    schedulable: bool
    #: One deadline per segment name (union over chains).
    deadlines: Dict[str, int] = field(default_factory=dict)
    total: int = 0
    reason: str = ""
    nodes_explored: int = 0


def _check_all(problems: Sequence[BudgetingProblem], deadlines: Dict[str, int]) -> bool:
    for problem in problems:
        assignment = [deadlines[name] for name in problem.order]
        if not problem.check(assignment).feasible:
            return False
    return True


def reconcile_independent(
    problems: Sequence[BudgetingProblem],
    solutions: Sequence[SolverResult],
) -> MultiChainResult:
    """Merge per-chain solutions by per-segment maximum and re-verify.

    Raising a deadline never adds misses, so the merged assignment
    satisfies every chain's Eq. (5); only the budget sums (Eq. 3) can
    break, which the re-verification catches.
    """
    merged: Dict[str, int] = {}
    for problem, solution in zip(problems, solutions):
        if not solution.schedulable:
            return MultiChainResult(
                schedulable=False,
                reason=f"chain {problem.chain.name} unschedulable alone: "
                f"{solution.reason}",
            )
        for name, deadline in zip(problem.order, solution.deadlines):
            merged[name] = max(merged.get(name, 0), deadline)
    if not _check_all(problems, merged):
        return MultiChainResult(
            schedulable=False,
            deadlines=merged,
            reason="per-chain maxima violate some chain's budget; "
            "use solve_joint",
        )
    return MultiChainResult(
        schedulable=True,
        deadlines=merged,
        total=sum(merged.values()),
    )


def solve_joint(
    problems: Sequence[BudgetingProblem],
    max_nodes: int = 500_000,
) -> MultiChainResult:
    """Exact joint search over the union of segments.

    Minimizes the sum of deadlines over all distinct segments subject to
    every chain's Eqs. (3)-(5).  Candidates per segment are the union of
    that segment's candidates across the chains it appears in.
    """
    if not problems:
        raise ValueError("need at least one problem")
    # Union of segments, stable order: first appearance across chains.
    names: List[str] = []
    candidates: Dict[str, List[int]] = {}
    lower_bounds: Dict[str, int] = {}
    for problem in problems:
        for index, name in enumerate(problem.order):
            values = problem.candidates(index)
            if name not in candidates:
                names.append(name)
                candidates[name] = list(values)
            else:
                candidates[name] = sorted(set(candidates[name]) | set(values))
            minimal = minimal_deadline(
                problem.extended[index],
                problem.k,
                problem.m,
                upper=problem.chain.budget_seg,
            )
            if minimal is None:
                return MultiChainResult(
                    schedulable=False,
                    reason=f"segment {name} infeasible alone in chain "
                    f"{problem.chain.name}",
                )
            lower_bounds[name] = max(lower_bounds.get(name, 0), minimal)

    # Prune candidates below each segment's independent lower bound.
    for name in names:
        filtered = [c for c in candidates[name] if c >= lower_bounds[name]]
        candidates[name] = filtered or [lower_bounds[name]]

    suffix_min = [0] * (len(names) + 1)
    for i in range(len(names) - 1, -1, -1):
        suffix_min[i] = suffix_min[i + 1] + candidates[names[i]][0]

    best_total: Optional[int] = None
    best: Optional[Dict[str, int]] = None
    nodes = 0

    def dfs(i: int, partial: Dict[str, int], partial_sum: int) -> None:
        nonlocal best_total, best, nodes
        if nodes >= max_nodes:
            return
        if best_total is not None and partial_sum + suffix_min[i] >= best_total:
            return
        if i == len(names):
            if _check_all(problems, partial):
                best_total = partial_sum
                best = dict(partial)
            return
        name = names[i]
        for deadline in candidates[name]:
            nodes += 1
            if (
                best_total is not None
                and partial_sum + deadline + suffix_min[i + 1] >= best_total
            ):
                break
            partial[name] = deadline
            dfs(i + 1, partial, partial_sum + deadline)
        del partial[name]

    dfs(0, {}, 0)
    if best is None:
        return MultiChainResult(
            schedulable=False,
            reason="no joint assignment satisfies every chain"
            + (" (node limit reached)" if nodes >= max_nodes else ""),
            nodes_explored=nodes,
        )
    return MultiChainResult(
        schedulable=True,
        deadlines=best,
        total=best_total or 0,
        nodes_explored=nodes,
    )
