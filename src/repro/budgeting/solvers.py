"""Solvers for the budgeting CSP.

``p = 0`` (every miss recovered): Eq. (7) degenerates and the problem
splits into independent single-variable problems -- each segment takes
the minimal deadline whose windowed misses stay within m
(:func:`solve_independent`, exact).

``p = 1`` (misses propagate): the constraints couple all segments; the
paper defers to "heuristic methods or integer linear programming".  We
provide both: :func:`solve_greedy_propagated` (descent heuristic, fast)
and :func:`solve_branch_and_bound` (exact minimal-sum search over the
candidate lattice with admissible pruning, practical for the paper-scale
chains of a handful of segments).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.budgeting.csp import BudgetingProblem
from repro.budgeting.windows import miss_series, window_miss_profile
from repro.core.weakly_hard import max_window_misses


@dataclass
class SolverResult:
    """Outcome of a budgeting solve."""

    schedulable: bool
    #: Total deadlines d per segment (chain order); empty if unschedulable.
    deadlines: List[int] = field(default_factory=list)
    #: Objective value sum(d).
    total: int = 0
    #: Human-readable diagnostics.
    reason: str = ""
    #: Search statistics (solver dependent).
    nodes_explored: int = 0

    def as_monitored(self, problem: BudgetingProblem) -> dict:
        """Convenience: the d_mon split of the found deadlines."""
        return problem.monitored_deadlines(self.deadlines)


def minimal_deadline(
    extended_latencies: Sequence[int],
    k: int,
    m_allowed: int,
    upper: Optional[int] = None,
) -> Optional[int]:
    """Smallest d with at most *m_allowed* misses in any k-window.

    Misses are activations with ``l' > d``; the miss count is
    non-increasing in d, so binary search over the distinct latency
    values (plus 1, allowing everything to miss when m_allowed >= k)
    finds the exact minimum.  Returns None if even ``upper`` (or the
    trace maximum) cannot satisfy the constraint.
    """
    if not extended_latencies:
        raise ValueError("empty trace")
    candidates = sorted(set(extended_latencies))
    candidates.insert(0, 1)  # d in N: smallest positive deadline
    if upper is not None:
        candidates = [c for c in candidates if c <= upper]
        if not candidates or candidates[-1] != upper:
            candidates.append(upper)

    def ok(deadline: int) -> bool:
        return (
            max_window_misses(miss_series(extended_latencies, deadline), k)
            <= m_allowed
        )

    if not ok(candidates[-1]):
        return None
    lo, hi = 0, len(candidates) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if ok(candidates[mid]):
            hi = mid
        else:
            lo = mid + 1
    return candidates[lo]


def solve_independent(problem: BudgetingProblem) -> SolverResult:
    """Exact solver for p = 0: per-segment minimal deadlines.

    With perfect recovery, Eq. (5) reduces to ``max_n m_i(n) <= m`` per
    segment; each segment's minimal deadline is independent.  The
    assignment is schedulable iff the minimal sum fits B_e2e.
    """
    assert problem.chain.budget_seg is not None
    deadlines: List[int] = []
    for i, name in enumerate(problem.order):
        minimal = minimal_deadline(
            problem.extended[i],
            problem.k,
            problem.m,
            upper=problem.chain.budget_seg,
        )
        if minimal is None:
            return SolverResult(
                schedulable=False,
                reason=(
                    f"segment {name}: even d = B_seg = "
                    f"{problem.chain.budget_seg} violates ({problem.m},{problem.k})"
                ),
            )
        deadlines.append(minimal)
    total = sum(deadlines)
    if total > problem.chain.budget_e2e:
        return SolverResult(
            schedulable=False,
            deadlines=deadlines,
            total=total,
            reason=(
                f"minimal deadline sum {total} exceeds "
                f"B_e2e={problem.chain.budget_e2e}"
            ),
        )
    return SolverResult(schedulable=True, deadlines=deadlines, total=total)


def solve_greedy_propagated(problem: BudgetingProblem) -> SolverResult:
    """Descent heuristic for propagated misses (p = 1).

    Start from the most conservative assignment (per-segment maximum
    extended latency, clipped to B_seg) and greedily lower one segment's
    deadline to its next smaller candidate -- always picking the step
    with the largest budget gain that keeps Eq. (5) feasible -- until
    the sum fits B_e2e or no feasible step remains.
    """
    candidates = [problem.candidates(i) for i in range(len(problem.order))]
    indices = [len(c) - 1 for c in candidates]
    current = [candidates[i][indices[i]] for i in range(len(indices))]
    report = problem.check(current)
    # Filter Eq.5 feasibility at the conservative point.
    if any("Eq.5" in v for v in report.violated_constraints):
        return SolverResult(
            schedulable=False,
            reason="even maximal deadlines violate Eq. (5): "
            + "; ".join(report.violated_constraints),
        )
    nodes = 1
    while sum(current) > problem.chain.budget_e2e:
        best_step = None
        best_gain = 0
        for i in range(len(indices)):
            if indices[i] == 0:
                continue
            trial = list(current)
            trial[i] = candidates[i][indices[i] - 1]
            gain = current[i] - trial[i]
            if gain <= best_gain:
                continue
            trial_report = problem.check(trial)
            nodes += 1
            if not any("Eq.5" in v for v in trial_report.violated_constraints):
                best_step = i
                best_gain = gain
        if best_step is None:
            return SolverResult(
                schedulable=False,
                deadlines=current,
                total=sum(current),
                reason=(
                    f"greedy descent stuck at sum {sum(current)} > "
                    f"B_e2e={problem.chain.budget_e2e}"
                ),
                nodes_explored=nodes,
            )
        indices[best_step] -= 1
        current[best_step] = candidates[best_step][indices[best_step]]
    return SolverResult(
        schedulable=True,
        deadlines=current,
        total=sum(current),
        nodes_explored=nodes,
    )


def solve_branch_and_bound(
    problem: BudgetingProblem, max_nodes: int = 200_000
) -> SolverResult:
    """Exact minimal-sum search for arbitrary propagation factors.

    Depth-first over per-segment candidate deadlines (ascending), with
    two admissible prunes:

    - partial sum + sum of remaining per-segment independent minima
      already exceeds the best known total (or B_e2e);
    - the partial assignment's own windowed misses (a lower bound on
      the full Eq. 5 count for downstream segments) already exceed m.

    This is the "ILP" role of the paper made concrete; instances with a
    handful of segments and hundreds of trace points solve quickly.
    """
    n_segments = len(problem.order)
    candidates = [problem.candidates(i) for i in range(n_segments)]
    # Independent minima serve as admissible per-segment lower bounds.
    independent_min: List[int] = []
    for i in range(n_segments):
        minimal = minimal_deadline(
            problem.extended[i], problem.k, problem.m,
            upper=problem.chain.budget_seg,
        )
        if minimal is None:
            return SolverResult(
                schedulable=False,
                reason=f"segment {problem.order[i]} infeasible even alone",
            )
        independent_min.append(minimal)
    suffix_min = [0] * (n_segments + 1)
    for i in range(n_segments - 1, -1, -1):
        suffix_min[i] = suffix_min[i + 1] + independent_min[i]

    best_total = problem.chain.budget_e2e + 1
    best: Optional[List[int]] = None
    nodes = 0

    # Pre-compute window profiles per (segment, candidate) lazily.
    profile_cache: dict = {}

    def profile(i: int, deadline: int):
        key = (i, deadline)
        if key not in profile_cache:
            profile_cache[key] = window_miss_profile(
                miss_series(problem.extended[i], deadline), problem.k
            )
        return profile_cache[key]

    n_windows = len(profile(0, candidates[0][0]))

    def dfs(i: int, partial: List[int], partial_sum: int, carried: List[int]):
        """carried[n]: propagated window misses of segments < i."""
        nonlocal best_total, best, nodes
        if nodes >= max_nodes:
            return
        if i == n_segments:
            if partial_sum < best_total and problem.check(partial).feasible:
                best_total = partial_sum
                best = list(partial)
            return
        for deadline in candidates[i]:
            nodes += 1
            if partial_sum + deadline + suffix_min[i + 1] >= best_total:
                break  # candidates ascend; larger ones only get worse
            own = profile(i, deadline)
            # Eq. 5 for segment i: own + carried must stay within m.
            worst = max(
                own[n] + carried[n] for n in range(n_windows)
            )
            if worst > problem.m:
                continue
            if problem.propagation[i]:
                next_carried = [carried[n] + own[n] for n in range(n_windows)]
            else:
                next_carried = carried
            partial.append(deadline)
            dfs(i + 1, partial, partial_sum + deadline, next_carried)
            partial.pop()

    dfs(0, [], 0, [0] * n_windows)
    if best is None:
        return SolverResult(
            schedulable=False,
            reason=(
                "no assignment satisfies Eqs. (3)-(5)"
                + (" (node limit reached)" if nodes >= max_nodes else "")
            ),
            nodes_explored=nodes,
        )
    return SolverResult(
        schedulable=True,
        deadlines=best,
        total=best_total,
        nodes_explored=nodes,
    )
