"""Load-time feasibility validation of configured deadline budgets.

The budgeting CSP (Eqs. 2-7) *derives* deadlines from traces, but a
scenario (or a hand-edited config) can also assign ``d_mon`` directly.
An infeasible assignment -- a deadline sum beyond ``B_e2e`` (Eq. 3), a
segment deadline beyond ``B_seg`` (Eq. 4), or a non-positive monitored
budget (Eq. 2) -- used to be accepted silently and monitored anyway,
producing verdicts that no schedulable system could ever meet.  The
validators here are called when a chain is built so the mistake
surfaces as a clear :class:`InfeasibleBudgetError` at load time.

The windowed (m,k) constraints (Eqs. 5-7) additionally need a latency
trace; :func:`validate_chain_budgets` checks them too when one is
provided, and documents that structural checks alone were possible
when it is not.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.chains import ChainValidationError, EventChain


class InfeasibleBudgetError(ChainValidationError):
    """A configured deadline assignment violates Eqs. 2-5.

    Carries every violated constraint (not just the first) so a
    mis-configured scenario can be fixed in one pass.
    """

    def __init__(self, chain_name: str, violations: List[str]):
        self.chain_name = chain_name
        self.violations = list(violations)
        detail = "; ".join(self.violations)
        super().__init__(
            f"chain {chain_name}: configured budgets are infeasible "
            f"({detail})"
        )


def feasibility_violations(
    chain: EventChain, problem: Optional["object"] = None
) -> List[str]:
    """Every Eq. 2-5 violation of *chain*'s assigned deadlines.

    Structural constraints (Eqs. 2-4) come from the chain itself; the
    windowed miss constraints (Eq. 5) are checked only when a
    :class:`~repro.budgeting.csp.BudgetingProblem` built from a trace
    is passed in -- without observed latencies they are vacuous.
    Segments without an assigned ``d_mon`` are skipped (budgeting has
    not run yet; nothing is monitored, so nothing can be infeasible).
    """
    violations: List[str] = []
    assigned = [seg for seg in chain.segments if seg.d_mon is not None]
    if not assigned:
        return violations
    for seg in assigned:
        if seg.d_mon is not None and seg.d_mon <= 0:
            violations.append(
                f"Eq.2: d_mon[{seg.name}]={seg.d_mon} must be positive"
            )
        deadline = seg.deadline
        if deadline is not None and deadline > chain.budget_seg:
            violations.append(
                f"Eq.4: d[{seg.name}]={deadline} > B_seg={chain.budget_seg}"
            )
    if len(assigned) == len(chain.segments):
        total = sum(seg.deadline for seg in assigned)  # type: ignore[misc]
        if total > chain.budget_e2e:
            violations.append(
                f"Eq.3: sum(d)={total} > B_e2e={chain.budget_e2e}"
            )
    if problem is not None:
        deadlines = [seg.deadline for seg in chain.segments]
        if all(d is not None for d in deadlines):
            report = problem.check([int(d) for d in deadlines])
            violations.extend(
                v for v in report.violated_constraints
                if v.startswith("Eq.5")
            )
    return violations


def validate_chain_budgets(
    chain: EventChain, problem: Optional["object"] = None
) -> None:
    """Raise :class:`InfeasibleBudgetError` when *chain*'s configured
    deadlines violate Eqs. 2-4 (and Eq. 5, when *problem* carries a
    trace to check the windowed misses against)."""
    violations = feasibility_violations(chain, problem)
    if violations:
        raise InfeasibleBudgetError(chain.name, violations)
