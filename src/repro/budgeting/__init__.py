"""Trace-based segment-deadline synthesis (paper Sec. III-C).

Workflow:

1. Record latency traces ``L^si`` per segment from an *unmonitored* run
   (:mod:`repro.budgeting.traces`), extend them by the exception-handling
   WCRT: ``l' = l + d_ex``.
2. Pose the constraint-satisfaction problem of Eqs. (2)-(7)
   (:mod:`repro.budgeting.csp`): find minimum total deadlines ``d^si``
   subject to the end-to-end budget (Eq. 3), the throughput bound
   (Eq. 4) and the windowed (m,k) miss constraints with propagation
   factors ``p_l in {0, 1}`` (Eqs. 5-7).
3. Solve (:mod:`repro.budgeting.solvers`): for ``p = 0`` the problem
   splits into exact single-variable problems per segment; for ``p = 1``
   a greedy descent heuristic and an exact branch-and-bound are
   provided (the paper defers this case to "heuristic methods or ILP").
4. Optionally distribute leftover budget
   (:mod:`repro.budgeting.distribution`) and deploy via
   :meth:`repro.core.chains.EventChain.with_deadlines`.
"""

from repro.budgeting.traces import ChainTrace, SegmentTrace
from repro.budgeting.windows import (
    miss_series,
    propagated_window_misses,
    window_miss_profile,
)
from repro.budgeting.csp import BudgetingProblem, FeasibilityReport
from repro.budgeting.solvers import (
    SolverResult,
    minimal_deadline,
    solve_branch_and_bound,
    solve_greedy_propagated,
    solve_independent,
)
from repro.budgeting.distribution import distribute_slack
from repro.budgeting.feasibility import (
    InfeasibleBudgetError,
    feasibility_violations,
    validate_chain_budgets,
)
from repro.budgeting.multichain import (
    MultiChainResult,
    reconcile_independent,
    solve_joint,
)
from repro.budgeting.dag import (
    DagBudgetingProblem,
    DagFeasibilityReport,
    DagSolverResult,
    solve_dag_budgets,
)

__all__ = [
    "ChainTrace",
    "SegmentTrace",
    "miss_series",
    "propagated_window_misses",
    "window_miss_profile",
    "BudgetingProblem",
    "FeasibilityReport",
    "SolverResult",
    "minimal_deadline",
    "solve_branch_and_bound",
    "solve_greedy_propagated",
    "solve_independent",
    "distribute_slack",
    "InfeasibleBudgetError",
    "feasibility_violations",
    "validate_chain_budgets",
    "MultiChainResult",
    "reconcile_independent",
    "solve_joint",
    "DagBudgetingProblem",
    "DagFeasibilityReport",
    "DagSolverResult",
    "solve_dag_budgets",
]
