"""Preemptive fixed-priority multicore scheduler.

This models the scheduling environment of the paper's evaluation platform:
a PREEMPT_RT Linux where every ROS process, the ksoftirq threads and the
monitor thread hold distinct real-time priorities, threads may migrate
between cores, and core frequency may change under the governor (both
explicitly permitted in the paper's setup and responsible for the latency
tails it measures).

Two policies are provided:

- ``SchedulerPolicy.GLOBAL`` -- at every instant the N highest-priority
  ready threads occupy the N cores; threads migrate freely (unless pinned
  via ``affinity``).
- ``SchedulerPolicy.PARTITIONED`` -- every thread is pinned to a core and
  cores schedule independently.

Scheduling decisions are executed eagerly (as direct calls, not queued
events) so that a semaphore post by a low-priority thread immediately
hands the core to an awakened high-priority thread -- the exact mechanism
the paper's monitor thread relies on for its sub-100 microsecond reaction
times.
"""

from __future__ import annotations

import enum
import math
from operator import attrgetter
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.threads import (
    Compute,
    Sleep,
    SimThread,
    Syscall,
    ThreadState,
    WaitSem,
    Yield,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cpu import FrequencyGovernor


class SchedulerPolicy(enum.Enum):
    """Thread-to-core mapping discipline."""

    GLOBAL = "global"
    PARTITIONED = "partitioned"


class Core:
    """A single CPU core with a (possibly changing) speed factor.

    ``speed`` is a multiplier on nominal execution speed: a ``Compute(d)``
    takes ``d / speed`` nanoseconds of wall-clock time while the core runs
    at that speed.  Frequency governors adjust the speed at runtime via
    :meth:`set_speed`.
    """

    def __init__(self, index: int, scheduler: "MulticoreScheduler", speed: float = 1.0):
        self.index = index
        self.scheduler = scheduler
        self.speed = speed
        self.thread: Optional[SimThread] = None
        self.governor: Optional["FrequencyGovernor"] = None
        # Bookkeeping for the in-flight compute slice.
        self.completion_event: Optional[ScheduledEvent] = None
        self.slice_start: int = 0
        self.slice_speed: float = speed
        # Statistics.
        self.busy_time: int = 0
        self.dispatch_count: int = 0

    @property
    def idle(self) -> bool:
        """True when no thread occupies the core."""
        return self.thread is None

    def set_speed(self, speed: float) -> None:
        """Change the core frequency; rescales any in-flight compute."""
        if speed <= 0:
            raise ValueError(f"core speed must be positive, got {speed}")
        if speed == self.speed:
            return
        self.scheduler._rescale_core(self, speed)

    def __repr__(self) -> str:  # pragma: no cover
        running = self.thread.name if self.thread else "idle"
        return f"<Core {self.index} speed={self.speed} {running}>"


class MulticoreScheduler:
    """Preemptive fixed-priority scheduler over a set of cores.

    Parameters
    ----------
    sim:
        The simulation kernel providing time and event scheduling.
    n_cores:
        Number of identical cores.
    policy:
        Global (migrating) or partitioned scheduling.
    name:
        Identifier used in traces.
    """

    def __init__(
        self,
        sim: Simulator,
        n_cores: int = 1,
        policy: SchedulerPolicy = SchedulerPolicy.GLOBAL,
        name: str = "cpu",
    ) -> None:
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.name = name
        self.policy = policy
        self.cores: List[Core] = [Core(i, self) for i in range(n_cores)]
        self.threads: List[SimThread] = []
        self._ready: List[SimThread] = []
        self._busy = False
        self._pending_kick = False
        self.context_switches = 0
        #: Observers notified as ``fn(kind, thread)`` on dispatch/preempt.
        self.observers: List[Callable[[str, SimThread], None]] = []

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def add_thread(self, thread: SimThread, start: bool = True) -> SimThread:
        """Register *thread* and (by default) make it ready immediately."""
        if thread.scheduler is not None:
            raise ValueError(f"{thread} already belongs to a scheduler")
        if self.policy is SchedulerPolicy.PARTITIONED and thread.affinity is None:
            thread.affinity = 0
        if thread.affinity is not None and not (
            0 <= thread.affinity < len(self.cores)
        ):
            raise ValueError(
                f"affinity {thread.affinity} out of range for {len(self.cores)} cores"
            )
        thread.scheduler = self
        self.threads.append(thread)
        if start:
            self.make_ready(thread)
        return thread

    def spawn(
        self,
        name: str,
        body,
        priority: int = 0,
        affinity: Optional[int] = None,
    ) -> SimThread:
        """Create, register and start a thread in one call."""
        return self.add_thread(
            SimThread(name, body, priority=priority, affinity=affinity)
        )

    # ------------------------------------------------------------------
    # Readiness / wake-ups
    # ------------------------------------------------------------------
    def make_ready(self, thread: SimThread) -> None:
        """Transition *thread* to READY and trigger a scheduling pass."""
        if thread.done:
            return
        if thread.state is ThreadState.RUNNING:
            return
        thread.state = ThreadState.READY
        if thread not in self._ready:
            self._ready.append(thread)
        thread.activations += 1
        self._kick()

    # ------------------------------------------------------------------
    # Core speed changes (called via Core.set_speed)
    # ------------------------------------------------------------------
    def _rescale_core(self, core: Core, new_speed: float) -> None:
        thread = core.thread
        if thread is not None and core.completion_event is not None:
            # Charge the work done so far at the old speed, then replan
            # the completion at the new speed.
            elapsed_wall = self.sim.now - core.slice_start
            done_work = int(elapsed_wall * core.slice_speed)
            thread.remaining_work = max(0, thread.remaining_work - done_work)
            core.completion_event.cancel()
            core.speed = new_speed
            self._begin_compute_slice(core, thread)
        else:
            core.speed = new_speed

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        """Run scheduling passes until the assignment is stable."""
        if self._busy:
            self._pending_kick = True
            return
        self._busy = True
        try:
            while True:
                self._pending_kick = False
                self._schedule_pass()
                if not self._pending_kick:
                    break
        finally:
            self._busy = False

    def _eligible_cores(self, thread: SimThread) -> List[Core]:
        if thread.affinity is not None:
            return [self.cores[thread.affinity]]
        return self.cores

    _priority_key = attrgetter("priority")

    def _schedule_pass(self) -> None:
        while True:
            if not self._ready:
                return
            # Deterministic order: priority desc; stable sort keeps FIFO
            # order among equal priorities (SCHED_FIFO semantics).
            # (reverse=True preserves the relative order of equal keys.)
            if len(self._ready) > 1:
                self._ready.sort(key=self._priority_key, reverse=True)
            dispatched = False
            for thread in list(self._ready):
                eligible = self._eligible_cores(thread)
                idle = next((c for c in eligible if c.idle), None)
                if idle is not None:
                    self._ready.remove(thread)
                    self._dispatch(idle, thread)
                    dispatched = True
                    break
                # No idle eligible core: try to preempt the lowest-priority
                # running thread among eligible cores.
                victim_core = min(
                    eligible,
                    key=lambda c: (c.thread.priority, -c.thread.tid),  # type: ignore[union-attr]
                )
                victim = victim_core.thread
                assert victim is not None
                if thread.priority > victim.priority:
                    self._preempt(victim_core)
                    self._ready.remove(thread)
                    self._dispatch(victim_core, thread)
                    dispatched = True
                    break
            if not dispatched:
                return

    def _preempt(self, core: Core) -> None:
        """Kick the running thread off *core* back into the ready set."""
        thread = core.thread
        assert thread is not None
        if core.completion_event is not None:
            core.completion_event.cancel()
            elapsed_wall = self.sim.now - core.slice_start
            done_work = int(elapsed_wall * core.slice_speed)
            thread.remaining_work = max(0, thread.remaining_work - done_work)
            core.completion_event = None
        self._charge_slice(core)
        core.thread = None
        thread.core_index = None
        thread.state = ThreadState.READY
        thread.preemptions += 1
        self.context_switches += 1
        if thread not in self._ready:
            # A preempted thread goes to the *front* of its priority level
            # (SCHED_FIFO), ahead of equal-priority threads that were
            # already waiting.
            self._ready.insert(0, thread)
        self._notify("preempt", thread)
        if core.governor is not None:
            core.governor.on_core_idle(core)

    def _charge_slice(self, core: Core) -> None:
        thread = core.thread
        if thread is None:
            return
        elapsed = self.sim.now - core.slice_start
        if elapsed > 0:
            core.busy_time += elapsed
            thread.total_cpu_time += elapsed
        core.slice_start = self.sim.now

    def _dispatch(self, core: Core, thread: SimThread) -> None:
        """Place *thread* on *core* and drive it until it blocks or computes."""
        was_idle = core.idle
        core.thread = thread
        core.slice_start = self.sim.now
        core.dispatch_count += 1
        thread.core_index = core.index
        thread.state = ThreadState.RUNNING
        self._notify("dispatch", thread)
        if was_idle and core.governor is not None:
            core.governor.on_core_busy(core)
        self._drive(core)

    def _drive(self, core: Core) -> None:
        """Advance the thread on *core* until it starts a compute slice,
        blocks, yields, or finishes."""
        thread = core.thread
        assert thread is not None
        while True:
            if thread.remaining_work > 0:
                # Resume a preempted compute slice.
                self._begin_compute_slice(core, thread)
                return
            spans = self.sim.spans
            if spans is not None:
                # Restore the thread-carried ambient context: the kernel
                # event that resumed us belongs to the scheduler, not to
                # whatever work this thread was doing when it suspended.
                spans.current = thread.span_ctx
            syscall = thread.advance()
            if syscall is None:
                # Thread finished.
                self._charge_slice(core)
                core.thread = None
                thread.core_index = None
                if core.governor is not None:
                    core.governor.on_core_idle(core)
                self._notify("exit", thread)
                self._kick_or_flag()
                return
            if isinstance(syscall, Compute):
                if syscall.duration == 0:
                    continue
                thread.remaining_work = syscall.duration
                self._begin_compute_slice(core, thread)
                return
            if isinstance(syscall, Sleep):
                self._charge_slice(core)
                core.thread = None
                thread.core_index = None
                thread.state = ThreadState.SLEEPING
                self._notify("block", thread)
                if core.governor is not None:
                    core.governor.on_core_idle(core)
                self.sim.schedule_after(
                    syscall.duration,
                    self._wake_from_sleep,
                    thread,
                    label=f"sleep:{thread.name}",
                )
                self._kick_or_flag()
                return
            if isinstance(syscall, WaitSem):
                if syscall.semaphore._try_acquire():
                    thread.pending_value = True
                    continue
                # Must block.
                self._charge_slice(core)
                core.thread = None
                thread.core_index = None
                thread.state = ThreadState.BLOCKED
                self._notify("block", thread)
                if core.governor is not None:
                    core.governor.on_core_idle(core)
                syscall.semaphore._enqueue(thread, syscall.timeout)
                self._kick_or_flag()
                return
            if isinstance(syscall, Yield):
                self._charge_slice(core)
                core.thread = None
                thread.core_index = None
                thread.state = ThreadState.READY
                self._notify("yield", thread)
                if core.governor is not None:
                    core.governor.on_core_idle(core)
                if thread not in self._ready:
                    self._ready.append(thread)
                self._kick_or_flag()
                return
            raise TypeError(f"unhandled syscall {syscall!r}")

    def _kick_or_flag(self) -> None:
        """Request a scheduling pass (immediately or via the active one)."""
        if self._busy:
            self._pending_kick = True
        else:
            self._kick()

    def _begin_compute_slice(self, core: Core, thread: SimThread) -> None:
        core.slice_start = self.sim.now
        core.slice_speed = core.speed
        wall = max(1, math.ceil(thread.remaining_work / core.speed))
        core.completion_event = self.sim.schedule_after(
            wall,
            self._complete_compute,
            core,
            thread,
            label=f"compute:{thread.name}",
        )

    def _complete_compute(self, core: Core, thread: SimThread) -> None:
        if core.thread is not thread:  # stale event (should be cancelled)
            return
        core.completion_event = None
        thread.remaining_work = 0
        self._charge_slice(core)
        if self._busy:
            # Completion events fire from kernel context; _busy should be
            # False, but guard against re-entrant use.
            self._pending_kick = True
            return
        self._busy = True
        try:
            self._drive(core)
            while self._pending_kick:
                self._pending_kick = False
                self._schedule_pass()
        finally:
            self._busy = False

    def _wake_from_sleep(self, thread: SimThread) -> None:
        if thread.state is ThreadState.SLEEPING:
            thread.pending_value = None
            self.make_ready(thread)

    # ------------------------------------------------------------------
    def _notify(self, kind: str, thread: SimThread) -> None:
        for observer in self.observers:
            observer(kind, thread)

    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Fraction of total core-time spent busy so far."""
        if self.sim.now == 0:
            return 0.0
        total = len(self.cores) * self.sim.now
        busy = sum(c.busy_time for c in self.cores)
        # Include in-flight slices.
        for core in self.cores:
            if core.thread is not None:
                busy += self.sim.now - core.slice_start
        return busy / total

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MulticoreScheduler {self.name} cores={len(self.cores)} "
            f"policy={self.policy.value} threads={len(self.threads)}>"
        )
