"""Discrete-event simulation substrate.

This package is the stand-in for the paper's execution platform (PREEMPT_RT
Linux on multicore ECUs).  It provides:

- :mod:`repro.sim.kernel` -- a deterministic event-driven simulator with an
  integer-nanosecond clock and named, seeded random streams.
- :mod:`repro.sim.threads` -- generator-based simulated threads and the
  syscall objects they yield (``Compute``, ``Sleep``, ``WaitSem``, ...).
- :mod:`repro.sim.scheduler` -- a preemptive fixed-priority multicore
  scheduler with optional thread migration (global vs. partitioned).
- :mod:`repro.sim.sync` -- counting semaphores with timed wait (the
  ``sem_timedwait`` the paper's monitor thread relies on) and event flags.
- :mod:`repro.sim.timers` -- one-shot and periodic timers.
- :mod:`repro.sim.cpu` -- ECUs, cores and frequency governors (the paper
  explicitly allows thread migration and frequency scaling, which produce
  the heavy latency tails seen in its Fig. 9).
- :mod:`repro.sim.workload` -- execution-time models used by the synthetic
  perception services.

Time is kept in integer nanoseconds throughout to avoid floating-point
accumulation errors; use the helpers :func:`usec`, :func:`msec` and
:func:`sec` to build durations.
"""

from repro.sim.calendar import CalendarQueue, CancelToken, EagerHeapQueue
from repro.sim.kernel import (
    Simulator,
    ScheduledEvent,
    nsec,
    usec,
    msec,
    sec,
    fmt_time,
)
from repro.sim.threads import (
    Compute,
    Sleep,
    WaitSem,
    Yield,
    SimThread,
    ThreadState,
)
from repro.sim.scheduler import MulticoreScheduler, SchedulerPolicy
from repro.sim.sync import Semaphore, EventFlag
from repro.sim.timers import Timer, PeriodicTimer
from repro.sim.cpu import (
    Core,
    Ecu,
    ConstantGovernor,
    OndemandGovernor,
    BurstyGovernor,
)
from repro.sim.workload import (
    ExecutionTimeModel,
    ConstantModel,
    AffineModel,
    LogNormalModel,
    HeavyTailModel,
    ShiftedParetoModel,
)

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "CalendarQueue",
    "EagerHeapQueue",
    "CancelToken",
    "nsec",
    "usec",
    "msec",
    "sec",
    "fmt_time",
    "Compute",
    "Sleep",
    "WaitSem",
    "Yield",
    "SimThread",
    "ThreadState",
    "MulticoreScheduler",
    "SchedulerPolicy",
    "Semaphore",
    "EventFlag",
    "Timer",
    "PeriodicTimer",
    "Core",
    "Ecu",
    "ConstantGovernor",
    "OndemandGovernor",
    "BurstyGovernor",
    "ExecutionTimeModel",
    "ConstantModel",
    "AffineModel",
    "LogNormalModel",
    "HeavyTailModel",
    "ShiftedParetoModel",
]
