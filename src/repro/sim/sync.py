"""Synchronization primitives for simulated threads.

The paper's local monitor blocks on a POSIX semaphore with
``sem_timedwait()`` and is posted by instrumented publisher/subscriber
code.  :class:`Semaphore` reproduces those semantics: waiters block with
an optional timeout and are woken highest-priority-first, and a post by a
low-priority thread immediately hands the CPU to a higher-priority waiter
(via the scheduler's eager rescheduling).

Any object exposing ``_try_acquire()`` and ``_enqueue(thread, timeout)``
can be targeted by the :class:`~repro.sim.threads.WaitSem` syscall;
:class:`EventFlag` uses that to provide a broadcast wake-up.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.threads import SimThread, ThreadState


class _Waiter:
    __slots__ = ("thread", "timeout_event")

    def __init__(self, thread: SimThread, timeout_event: Optional[ScheduledEvent]):
        self.thread = thread
        self.timeout_event = timeout_event


class Semaphore:
    """Counting semaphore with timed wait (``sem_timedwait`` semantics).

    Waiters are woken in priority order (highest first), FIFO among equal
    priorities.  The yield-expression result of ``WaitSem`` is ``True`` on
    acquisition and ``False`` on timeout.
    """

    def __init__(self, sim: Simulator, initial: int = 0, name: str = "sem"):
        if initial < 0:
            raise ValueError("initial count must be non-negative")
        self.sim = sim
        self.name = name
        self._count = initial
        self._waiters: List[_Waiter] = []
        #: Statistics: number of posts that found no waiter.
        self.posts = 0
        self.timeouts = 0

    @property
    def count(self) -> int:
        """Current semaphore value (0 while threads are blocked)."""
        return self._count

    @property
    def waiting(self) -> int:
        """Number of threads currently blocked on the semaphore."""
        return len(self._waiters)

    # -- protocol used by the scheduler's WaitSem handling ---------------
    def _try_acquire(self) -> bool:
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def _enqueue(self, thread: SimThread, timeout: Optional[int]) -> None:
        timeout_event = None
        waiter = _Waiter(thread, None)
        if timeout is not None:
            timeout_event = self.sim.schedule_after(
                timeout,
                self._on_timeout,
                waiter,
                label=f"semtimeout:{self.name}:{thread.name}",
            )
            waiter.timeout_event = timeout_event
        self._waiters.append(waiter)

    # -- public API ------------------------------------------------------
    def post(self) -> None:
        """Release the semaphore, waking the best waiter if any."""
        self.posts += 1
        waiter = self._pop_best_waiter()
        if waiter is None:
            self._count += 1
            return
        if waiter.timeout_event is not None:
            waiter.timeout_event.cancel()
        waiter.thread.pending_value = True
        waiter.thread.scheduler.make_ready(waiter.thread)

    def _pop_best_waiter(self) -> Optional[_Waiter]:
        if not self._waiters:
            return None
        best_index = 0
        for i, waiter in enumerate(self._waiters[1:], start=1):
            if waiter.thread.priority > self._waiters[best_index].thread.priority:
                best_index = i
        return self._waiters.pop(best_index)

    def _on_timeout(self, waiter: _Waiter) -> None:
        if waiter not in self._waiters:
            return
        self._waiters.remove(waiter)
        self.timeouts += 1
        thread = waiter.thread
        if thread.state is ThreadState.BLOCKED:
            thread.pending_value = False
            thread.scheduler.make_ready(thread)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Semaphore {self.name} count={self._count} waiting={self.waiting}>"


class EventFlag:
    """A broadcast condition: waiters block until :meth:`set` is called.

    Unlike a semaphore, ``set()`` wakes *all* current waiters and leaves
    the flag raised until :meth:`clear`.
    """

    def __init__(self, sim: Simulator, name: str = "flag"):
        self.sim = sim
        self.name = name
        self._set = False
        self._waiters: List[_Waiter] = []

    @property
    def is_set(self) -> bool:
        """True while the flag is raised."""
        return self._set

    def _try_acquire(self) -> bool:
        return self._set

    def _enqueue(self, thread: SimThread, timeout: Optional[int]) -> None:
        waiter = _Waiter(thread, None)
        if timeout is not None:
            waiter.timeout_event = self.sim.schedule_after(
                timeout,
                self._on_timeout,
                waiter,
                label=f"flagtimeout:{self.name}:{thread.name}",
            )
        self._waiters.append(waiter)

    def set(self) -> None:
        """Raise the flag and wake every waiter."""
        self._set = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if waiter.timeout_event is not None:
                waiter.timeout_event.cancel()
            waiter.thread.pending_value = True
            waiter.thread.scheduler.make_ready(waiter.thread)

    def clear(self) -> None:
        """Lower the flag; future waiters will block again."""
        self._set = False

    def _on_timeout(self, waiter: _Waiter) -> None:
        if waiter not in self._waiters:
            return
        self._waiters.remove(waiter)
        thread = waiter.thread
        if thread.state is ThreadState.BLOCKED:
            thread.pending_value = False
            thread.scheduler.make_ready(thread)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<EventFlag {self.name} set={self._set} waiting={len(self._waiters)}>"
