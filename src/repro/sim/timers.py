"""One-shot and periodic timers.

Timer callbacks fire in *kernel context* (zero simulated time), which
models a hardware timer / hrtimer interrupt.  Code that needs the paper's
thread-context semantics -- e.g. a timeout routine that must first be
scheduled on a CPU, the very effect measured in the paper's Fig. 12 --
should have the callback post a semaphore that a simulated thread waits
on, so the scheduling latency is modelled explicitly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import ScheduledEvent, Simulator


class Timer:
    """A restartable one-shot timer.

    ``start`` arms (or re-arms) the timer; ``cancel`` disarms it.  The
    callback receives no arguments.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None], name: str = "timer"):
        self.sim = sim
        self.callback = callback
        self.name = name
        self._label = f"timer:{name}"
        self._event: Optional[ScheduledEvent] = None
        self.fired_count = 0

    @property
    def armed(self) -> bool:
        """True while the timer is pending."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[int]:
        """Absolute expiry time, or None when disarmed."""
        if self.armed:
            return self._event.time  # type: ignore[union-attr]
        return None

    def start(self, delay: int) -> None:
        """Arm the timer to fire *delay* ns from now (re-arms if pending)."""
        self.start_at(self.sim.now + delay)

    def start_at(self, time: int) -> None:
        """Arm the timer to fire at absolute *time* (re-arms if pending)."""
        event = self._event
        if event is None:
            self._event = self.sim.schedule_at(
                time, self._fire, label=self._label
            )
        else:
            # Rearm through the kernel primitive: under the calendar
            # engine this reuses the handle with no allocation.
            self._event = self.sim.reschedule(event, time)

    def cancel(self) -> None:
        """Disarm the timer if pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.fired_count += 1
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Timer {self.name} armed={self.armed}>"


class PeriodicTimer:
    """A drift-free periodic timer.

    Expiries are computed from the start epoch (``t0 + n * period``) so
    callback latency never accumulates into period drift -- matching the
    paper's assumption of strictly periodic chain activation.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        callback: Callable[[int], Any],
        name: str = "ptimer",
        offset: int = 0,
        jitter_ns: int = 0,
        rng_stream: Optional[str] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.name = name
        self._label = f"ptimer:{name}"
        self.offset = offset
        self.jitter_ns = jitter_ns
        self._rng_stream = rng_stream or f"ptimer:{name}"
        self._epoch: Optional[int] = None
        self._index = 0
        self._event: Optional[ScheduledEvent] = None

    @property
    def running(self) -> bool:
        """True while the timer is active."""
        return self._event is not None

    def start(self) -> None:
        """Begin firing; the first expiry is ``now + offset``."""
        if self._event is not None:
            raise RuntimeError(f"{self.name} already running")
        self._epoch = self.sim.now + self.offset
        self._index = 0
        self._arm()

    def stop(self) -> None:
        """Stop firing; a pending expiry is cancelled."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _arm(self) -> None:
        assert self._epoch is not None
        nominal = self._epoch + self._index * self.period
        when = nominal
        if self.jitter_ns > 0:
            rng = self.sim.rng(self._rng_stream)
            when = nominal + int(rng.integers(0, self.jitter_ns + 1))
        when = max(when, self.sim.now)
        event = self._event
        if event is None:
            self._event = self.sim.schedule_at(
                when, self._fire, label=self._label
            )
        else:
            # The previous expiry just fired; reuse its handle.
            self._event = self.sim.reschedule(event, when)

    def _fire(self) -> None:
        index = self._index
        self._index += 1
        self._arm()
        self.callback(index)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PeriodicTimer {self.name} period={self.period} n={self._index}>"
