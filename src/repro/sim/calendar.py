"""Bucketed calendar queue for the simulation kernel and monitor timers.

The kernel's original priority queue is a binary heap of
``(time, priority, seq, event)`` tuples.  Heaps are O(log n) per
operation and -- worse for the timer-heavy workloads -- cancelled
entries stay resident until they surface at the root, paying a full
O(log n) pop each.  ``timer_rearm`` style workloads (cancel + re-push on
every rearm) therefore pay three heap traversals per timer cycle and
keep the heap artificially large.

:class:`CalendarQueue` replaces the heap with a calendar of buckets
keyed by ``time >> shift``:

* **Pending buckets** are plain append-only lists (O(1) insert, no
  comparisons).  A small heap of bucket keys tracks which bucket is
  next.
* The **active bucket** -- the one currently being drained -- is
  filtered of cancelled entries and sorted *once* (C timsort over
  tuples), then consumed by walking an index.  Insertions that land at
  or before the active bucket go to a small overflow heap that is
  merged on the fly, so late ``call_now``-style pushes keep exact
  ordering.
* **Cancellation is eager in aggregate**: events keep a back-reference
  to the queue, a cancel bumps a dead counter, and once enough entries
  have died the whole structure is compacted in one O(n) sweep.  A
  rearm-heavy workload therefore touches each dead entry O(1) times
  amortized instead of O(log n).

Ordering invariant
------------------
Entries are the *same* ``(time, priority, seq)`` tuples the heap used,
and ``seq`` is unique, so sorted-tuple order is a total order identical
to heap pop order.  Every bucket holds a contiguous, disjoint time
range and the active bucket is always the earliest non-empty one, so
serving ``min(sorted_remainder, overflow_heap)`` until both are empty
and then activating the smallest pending bucket yields globally sorted
output.  ``tests/test_calendar_queue.py`` proves pop-order equality
against ``heapq`` with Hypothesis over arbitrary
schedule/cancel/rearm/advance interleavings.

The module also provides :class:`EagerHeapQueue`: the same eager-cancel
accounting layered over a plain heap.  The monitor thread uses it when
the kernel runs the reference ``heap`` engine, so stale timeout entries
are freed eagerly under *both* engines (they used to leak until their
deadline surfaced).
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarQueue", "EagerHeapQueue", "CancelToken", "DEFAULT_SHIFT"]

#: Default bucket width exponent: ``1 << 20`` ns (~1.05 ms) per bucket.
#: Chain periods, monitor deadlines, and timer rearm horizons in this
#: repo are all O(ms), so a bucket holds one "burst" of related events
#: while multi-second campaigns still spread across thousands of
#: buckets instead of one giant list.
DEFAULT_SHIFT = 20

#: Compact once this many cancelled entries have accumulated (and the
#: threshold has not been raised by a previous compaction observing a
#: larger live population).  Small enough that rearm loops stay tight,
#: large enough that a compaction sweep always amortizes.
_MIN_COMPACT = 64

#: Queue entries are the exact heap layout: ``(time, priority, seq,
#: payload)``.  ``seq`` is unique so comparison never reaches payload.
Entry = Tuple[int, int, int, Any]


class CancelToken:
    """Minimal payload for queue entries that are not kernel events.

    The queues duck-type their payloads: anything with a ``cancelled``
    flag, a ``_cq`` back-reference slot, and a ``_seq`` generation slot
    works (the kernel's ``ScheduledEvent`` carries all three).
    ``CancelToken`` is the smallest such payload, used by the monitor's
    timeout queue and by tests.

    Liveness protocol: an entry ``(time, priority, seq, payload)`` is
    live iff ``payload._seq == seq``.  ``push`` stamps the payload with
    the entry's seq; cancelling (or rescheduling) overwrites ``_seq``,
    which retires the resident entry with a single integer compare on
    the pop path -- no flag *and* generation double-check needed.
    """

    __slots__ = ("cancelled", "_cq", "_seq", "data")

    def __init__(self, data: Any = None) -> None:
        self.cancelled = False
        self._cq = None
        self._seq = -1
        self.data = data

    def cancel(self) -> None:
        """Mark dead and notify the owning queue (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        cq = self._cq
        if cq is not None:
            self._cq = None
            self._seq = -1
            cq.note_cancel()


class CalendarQueue:
    """Monotonic calendar queue with exact heap-order pops.

    "Monotonic" in the timer-wheel sense: pop times never decrease, and
    pushes below the already-activated region are still ordered
    correctly (they join the active overflow heap).  The kernel
    guarantees ``time >= now`` on every push, which keeps the overflow
    heap small in practice.
    """

    __slots__ = (
        "_shift",
        "_pend",
        "_keys",
        "_act_sorted",
        "_act_idx",
        "_act_key",
        "_extra",
        "_dead",
        "_compact_at",
    )

    def __init__(self, shift: int = DEFAULT_SHIFT) -> None:
        self._shift = shift
        #: bucket key -> unsorted list of entries with ``time >> shift == key``
        self._pend = {}
        #: heap of pending bucket keys (a key may linger after its
        #: bucket was compacted away; activation skips missing keys)
        self._keys: List[int] = []
        #: sorted remainder of the active bucket, consumed via _act_idx
        self._act_sorted: List[Entry] = []
        self._act_idx = 0
        #: all pending buckets have key > _act_key; pushes at or below
        #: it go to the overflow heap
        self._act_key = -1
        #: overflow heap for pushes into the already-active region
        self._extra: List[Entry] = []
        self._dead = 0
        self._compact_at = _MIN_COMPACT

    # -- capacity ------------------------------------------------------
    def __len__(self) -> int:
        """Entries resident in the structure, including cancelled ones."""
        n = len(self._act_sorted) - self._act_idx + len(self._extra)
        for lst in self._pend.values():
            n += len(lst)
        return n

    @property
    def live(self) -> int:
        """Entries that would still pop (i.e. not cancelled)."""
        return len(self) - self._dead

    def __bool__(self) -> bool:
        return self.live > 0

    # -- insertion -----------------------------------------------------
    def push(self, time: int, priority: int, seq: int, payload: Any) -> None:
        """Insert an entry; ``payload._cq``/``_seq`` wired for eager cancel."""
        entry = (time, priority, seq, payload)
        payload._cq = self
        payload._seq = seq
        key = time >> self._shift
        if key <= self._act_key:
            heapq.heappush(self._extra, entry)
            return
        lst = self._pend.get(key)
        if lst is None:
            self._pend[key] = [entry]
            heapq.heappush(self._keys, key)
        else:
            lst.append(entry)

    # -- cancellation --------------------------------------------------
    def note_cancel(self) -> None:
        """Record one cancelled resident entry; compact when they pile up."""
        self._dead += 1
        if self._dead >= self._compact_at:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one sweep.

        The filtered active remainder stays sorted (filtering preserves
        order) and the overflow heap is re-heapified, so pop order is
        untouched.  The next compaction threshold scales with the live
        population: amortized O(1) per cancel.
        """
        pend = self._pend
        live = 0
        for key in list(pend):
            lst = [e for e in pend[key] if e[3]._seq == e[2]]
            if lst:
                pend[key] = lst
                live += len(lst)
            else:
                # Leave the stale key in _keys; activation skips it.
                del pend[key]
        act = [e for e in self._act_sorted[self._act_idx:] if e[3]._seq == e[2]]
        self._act_sorted = act
        self._act_idx = 0
        extra = [e for e in self._extra if e[3]._seq == e[2]]
        heapq.heapify(extra)
        self._extra = extra
        live += len(act) + len(extra)
        self._dead = 0
        self._compact_at = max(_MIN_COMPACT, live)

    # -- activation ----------------------------------------------------
    def _activate(self) -> bool:
        """Filter+sort the earliest pending bucket into the active slot.

        Returns False when nothing is pending anywhere.  Precondition:
        the active remainder and overflow heap are empty.
        """
        keys = self._keys
        pend = self._pend
        while keys:
            key = heapq.heappop(keys)
            raw = pend.pop(key, None)
            if raw is None:
                continue  # bucket emptied by a compaction sweep
            lst = [e for e in raw if e[3]._seq == e[2]]
            # The filter just consumed this bucket's dead entries.
            self._dead -= len(raw) - len(lst)
            if not lst:
                continue
            lst.sort()
            self._act_sorted = lst
            self._act_idx = 0
            self._act_key = key
            return True
        return False

    # -- consumption ---------------------------------------------------
    def pop(self, limit: Optional[int] = None) -> Optional[Entry]:
        """Pop the earliest live entry, or None.

        With *limit*, entries later than ``limit`` stay queued and None
        is returned (peek-with-threshold semantics for ``run(until=)``).
        """
        act = self._act_sorted
        extra = self._extra
        while True:
            idx = self._act_idx
            if idx < len(act):
                if extra and extra[0] < act[idx]:
                    entry = extra[0]
                    from_extra = True
                else:
                    entry = act[idx]
                    from_extra = False
            elif extra:
                entry = extra[0]
                from_extra = True
            else:
                if not self._activate():
                    return None
                act = self._act_sorted
                continue
            payload = entry[3]
            if payload._seq != entry[2]:
                if from_extra:
                    heapq.heappop(extra)
                else:
                    self._act_idx = idx + 1
                self._dead -= 1
                continue
            if limit is not None and entry[0] > limit:
                return None
            if from_extra:
                heapq.heappop(extra)
            else:
                self._act_idx = idx + 1
            payload._cq = None
            return entry

    def peek(self) -> Optional[Entry]:
        """Return the earliest live entry without consuming it.

        Cancelled entries encountered on the way are consumed (they
        would be skipped by the next pop anyway).
        """
        act = self._act_sorted
        extra = self._extra
        while True:
            idx = self._act_idx
            if idx < len(act):
                if extra and extra[0] < act[idx]:
                    entry = extra[0]
                    from_extra = True
                else:
                    entry = act[idx]
                    from_extra = False
            elif extra:
                entry = extra[0]
                from_extra = True
            else:
                if not self._activate():
                    return None
                act = self._act_sorted
                continue
            if entry[3]._seq != entry[2]:
                if from_extra:
                    heapq.heappop(extra)
                else:
                    self._act_idx = idx + 1
                self._dead -= 1
                continue
            return entry


class EagerHeapQueue:
    """Binary heap with the calendar queue's eager-cancel compaction.

    Same entry layout and pop order as a plain ``heapq`` (it *is* one),
    but cancelled entries are counted and the heap is rebuilt without
    them once they outnumber the compaction threshold -- so a
    cancel-heavy producer can no longer grow the heap without bound.
    Used by the monitor thread under the reference ``heap`` engine and
    by differential tests as the order oracle.
    """

    __slots__ = ("_heap", "_dead", "_compact_at")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self._dead = 0
        self._compact_at = _MIN_COMPACT

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def live(self) -> int:
        return len(self._heap) - self._dead

    def __bool__(self) -> bool:
        return self.live > 0

    def push(self, time: int, priority: int, seq: int, payload: Any) -> None:
        payload._cq = self
        payload._seq = seq
        heapq.heappush(self._heap, (time, priority, seq, payload))

    def note_cancel(self) -> None:
        self._dead += 1
        if self._dead >= self._compact_at:
            heap = [e for e in self._heap if e[3]._seq == e[2]]
            heapq.heapify(heap)
            self._heap = heap
            self._dead = 0
            self._compact_at = max(_MIN_COMPACT, len(heap))

    def pop(self, limit: Optional[int] = None) -> Optional[Entry]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3]._seq != entry[2]:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if limit is not None and entry[0] > limit:
                return None
            heapq.heappop(heap)
            entry[3]._cq = None
            return entry
        return None

    def peek(self) -> Optional[Entry]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3]._seq != entry[2]:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return entry
        return None
