"""Generator-based simulated threads and their syscall protocol.

A simulated thread body is a Python generator that *yields* syscall
objects to the scheduler:

``Compute(duration)``
    Consume CPU time.  Preemptible: a higher-priority thread can take the
    core and the remaining work resumes later.  ``duration`` is expressed
    in nanoseconds of work at nominal core speed 1.0; a core running at
    speed 0.5 (frequency scaling) takes twice as long.

``Sleep(duration)``
    Block without occupying a core for *duration* nanoseconds.

``WaitSem(semaphore, timeout=None)``
    Block on a counting semaphore.  The yield expression evaluates to
    ``True`` if the semaphore was acquired and ``False`` on timeout --
    mirroring the ``sem_timedwait()`` the paper's monitor thread uses.

``Yield()``
    A pure rescheduling point (cooperative yield).

Everything a thread does *between* yields happens in zero simulated time,
which models the abstraction that instrumentation code paths are costed
explicitly via ``Compute`` where they matter.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterator, Optional, Union


class Syscall:
    """Base class for requests a thread yields to the scheduler."""

    __slots__ = ()


class Compute(Syscall):
    """Consume *duration* nanoseconds of CPU work (at nominal speed)."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"negative compute duration {duration}")
        self.duration = int(duration)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.duration})"


class Sleep(Syscall):
    """Block off-core for *duration* nanoseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"negative sleep duration {duration}")
        self.duration = int(duration)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Sleep({self.duration})"


class WaitSem(Syscall):
    """Block on a semaphore, optionally with a timeout (``sem_timedwait``)."""

    __slots__ = ("semaphore", "timeout")

    def __init__(self, semaphore: Any, timeout: Optional[int] = None) -> None:
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative timeout {timeout}")
        self.semaphore = semaphore
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitSem({self.semaphore}, timeout={self.timeout})"


class Yield(Syscall):
    """Voluntary rescheduling point."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "Yield()"


class ThreadState(enum.Enum):
    """Lifecycle states of a :class:`SimThread`."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    DONE = "done"


ThreadBody = Union[
    Generator[Syscall, Any, None],
    Callable[["SimThread"], Generator[Syscall, Any, None]],
]


class SimThread:
    """A schedulable simulated thread.

    Parameters
    ----------
    name:
        Identifier used in traces and reprs.
    body:
        Either a generator, or a callable taking the thread itself and
        returning a generator (handy when the body wants to know which
        thread object hosts it).
    priority:
        Fixed scheduling priority; **larger numbers mean higher priority**
        (like POSIX ``SCHED_FIFO``).
    affinity:
        Optional core index pinning the thread (partitioned scheduling).
        ``None`` lets the thread migrate freely under global scheduling.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(
        self,
        name: str,
        body: ThreadBody,
        priority: int = 0,
        affinity: Optional[int] = None,
    ) -> None:
        self.tid = next(SimThread._ids)
        self.name = name
        self.priority = priority
        self.affinity = affinity
        if callable(body) and not isinstance(body, Iterator):
            self._gen = body(self)
        else:
            self._gen = body  # type: ignore[assignment]
        self.state = ThreadState.NEW
        #: Value delivered to the generator on next advance (syscall result).
        self.pending_value: Any = None
        #: Remaining compute work (ns at speed 1.0) if preempted mid-compute.
        self.remaining_work: int = 0
        #: Core index the thread currently runs on, or None.
        self.core_index: Optional[int] = None
        #: Bookkeeping for blocked states (set by scheduler/sync objects).
        self.wakeup_event: Any = None
        #: Scheduler owning this thread (set on scheduler.add_thread).
        self.scheduler: Any = None
        #: Cumulative statistics.
        self.total_cpu_time: int = 0
        self.activations: int = 0
        self.preemptions: int = 0
        #: Span context carried across suspensions (span tracing only;
        #: restored by the scheduler before every generator resumption).
        self.span_ctx: Any = None

    # ------------------------------------------------------------------
    def advance(self) -> Optional[Syscall]:
        """Resume the generator; return the next syscall or None when done.

        ``pending_value`` is delivered as the result of the previous yield
        and reset to ``None``.
        """
        value, self.pending_value = self.pending_value, None
        try:
            if value is None:
                # Works for generators and plain iterators alike.
                syscall = next(self._gen)
            else:
                syscall = self._gen.send(value)
        except StopIteration:
            self.state = ThreadState.DONE
            return None
        if not isinstance(syscall, Syscall):
            raise TypeError(
                f"thread {self.name!r} yielded {syscall!r}, expected a Syscall"
            )
        return syscall

    @property
    def done(self) -> bool:
        """True once the thread body has run to completion."""
        return self.state is ThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimThread {self.name} tid={self.tid} prio={self.priority} "
            f"{self.state.value}>"
        )
