"""Execution-time models for synthetic services.

The paper's perception services (fusion, ray-ground classification,
euclidean clustering) have data-dependent execution times whose
distribution -- measured through LTTng traces -- drives the budgeting
CSP.  These models generate such distributions: a deterministic
data-dependent component (points processed) plus stochastic components
(cache effects, allocator behaviour, co-running load) with optionally
heavy tails.

All models return integer nanoseconds of *work* (at nominal core speed);
frequency scaling and preemption then shape the observed latency.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.kernel import Simulator


class ExecutionTimeModel:
    """Base class: draw one execution time for a given input size."""

    def sample(self, rng: np.random.Generator, size: int = 0) -> int:
        """Return work in ns for an input of *size* items."""
        raise NotImplementedError

    def bound(self, size: int = 0) -> Optional[int]:
        """A conservative upper bound in ns, if one exists (else None)."""
        return None


class ConstantModel(ExecutionTimeModel):
    """Fixed execution time regardless of input size."""

    def __init__(self, work_ns: int):
        if work_ns < 0:
            raise ValueError("work must be non-negative")
        self.work_ns = int(work_ns)

    def sample(self, rng: np.random.Generator, size: int = 0) -> int:
        return self.work_ns

    def bound(self, size: int = 0) -> Optional[int]:
        return self.work_ns


class AffineModel(ExecutionTimeModel):
    """``base + per_item * size`` with multiplicative uniform noise.

    ``noise`` of 0.1 means each sample is scaled by a factor drawn
    uniformly from ``[1 - 0.1, 1 + 0.1]``.
    """

    def __init__(self, base_ns: int, per_item_ns: float = 0.0, noise: float = 0.0):
        if base_ns < 0 or per_item_ns < 0 or not (0 <= noise < 1):
            raise ValueError("invalid affine model parameters")
        self.base_ns = int(base_ns)
        self.per_item_ns = float(per_item_ns)
        self.noise = float(noise)

    def sample(self, rng: np.random.Generator, size: int = 0) -> int:
        nominal = self.base_ns + self.per_item_ns * size
        if self.noise > 0:
            nominal *= float(rng.uniform(1 - self.noise, 1 + self.noise))
        return max(0, int(nominal))

    def bound(self, size: int = 0) -> Optional[int]:
        return int((self.base_ns + self.per_item_ns * size) * (1 + self.noise)) + 1


class LogNormalModel(ExecutionTimeModel):
    """Log-normally distributed execution time around a median.

    ``sigma`` controls the spread; medians scale affinely with input
    size like :class:`AffineModel`.
    """

    def __init__(self, median_ns: int, sigma: float = 0.3, per_item_ns: float = 0.0):
        if median_ns <= 0 or sigma < 0 or per_item_ns < 0:
            raise ValueError("invalid lognormal model parameters")
        self.median_ns = int(median_ns)
        self.sigma = float(sigma)
        self.per_item_ns = float(per_item_ns)

    def sample(self, rng: np.random.Generator, size: int = 0) -> int:
        median = self.median_ns + self.per_item_ns * size
        value = median * float(rng.lognormal(mean=0.0, sigma=self.sigma))
        return max(1, int(value))


class ShiftedParetoModel(ExecutionTimeModel):
    """Pareto-tailed execution time: ``scale * (1 + Pareto(alpha))``.

    Small ``alpha`` (e.g. 1.5-2.5) yields the pronounced tails the paper
    observes on throughput-optimized hardware.
    """

    def __init__(self, scale_ns: int, alpha: float = 2.0, per_item_ns: float = 0.0):
        if scale_ns <= 0 or alpha <= 0 or per_item_ns < 0:
            raise ValueError("invalid pareto model parameters")
        self.scale_ns = int(scale_ns)
        self.alpha = float(alpha)
        self.per_item_ns = float(per_item_ns)

    def sample(self, rng: np.random.Generator, size: int = 0) -> int:
        scale = self.scale_ns + self.per_item_ns * size
        value = scale * (1.0 + float(rng.pareto(self.alpha)))
        return max(1, int(value))


class HeavyTailModel(ExecutionTimeModel):
    """Mixture: mostly well-behaved, occasionally pathological.

    With probability ``1 - tail_prob`` draws from *body*, otherwise from
    *tail*.  This is the shape of the paper's Fig. 9 distributions: a
    compact box with rare excursions an order of magnitude above the
    median (up to ~600 ms for a ~50 ms-median segment).
    """

    def __init__(
        self,
        body: ExecutionTimeModel,
        tail: ExecutionTimeModel,
        tail_prob: float = 0.02,
    ):
        if not (0 <= tail_prob <= 1):
            raise ValueError("tail_prob must be within [0, 1]")
        self.body = body
        self.tail = tail
        self.tail_prob = float(tail_prob)

    def sample(self, rng: np.random.Generator, size: int = 0) -> int:
        if self.tail_prob > 0 and rng.random() < self.tail_prob:
            return self.tail.sample(rng, size)
        return self.body.sample(rng, size)


def compute_work(
    sim: Simulator,
    model: ExecutionTimeModel,
    stream: str,
    size: int = 0,
) -> int:
    """Draw one execution time from *model* using the named RNG stream."""
    return model.sample(sim.rng(stream), size)
