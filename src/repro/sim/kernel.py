"""Deterministic event-driven simulation kernel.

The kernel keeps a priority queue of scheduled events ordered by
``(time, priority, sequence)``.  Every piece of the simulated world --
scheduler decisions, timer expirations, network deliveries -- is an event.
Simulated time is an integer number of nanoseconds, which keeps arithmetic
exact and makes traces reproducible bit-for-bit across runs with the same
seed.

Randomness is drawn from named streams.  Each stream is a
``numpy.random.Generator`` seeded from the simulator seed and the stream
name, so adding a new consumer of randomness never perturbs the draws seen
by existing consumers (a classic requirement for comparable experiments).

Performance notes
-----------------
This module is the hottest path of the repository: every simulated
microsecond of every experiment flows through :meth:`Simulator.run`.
Queue entries are therefore plain ``(time, priority, seq, event)`` tuples
(tuple comparison is C-level and the unique ``seq`` guarantees the event
object itself is never compared), the queue primitives are pre-bound, and
trace emission is skipped entirely while no hook is registered.  None of
this changes observable behavior: the golden-trace suite
(``tests/test_golden_traces.py``) pins the event order bit-for-bit.

Two queue engines are available behind the ``engine`` constructor
argument (default from ``REPRO_SIM_ENGINE``):

``calendar`` (default)
    A bucketed calendar queue (:mod:`repro.sim.calendar`): O(1)
    amortized insert, one sort per time bucket, and eager reclamation
    of cancelled entries.  This is what makes rearm/cancel-heavy timer
    workloads cheap.
``heap``
    The original binary heap with lazy cancellation, kept verbatim as
    the differential reference: ``tests/test_differential_engines.py``
    replays whole scenario suites under both engines and asserts
    byte-identical golden fingerprints and digests.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .calendar import CalendarQueue

#: Number of nanoseconds per microsecond / millisecond / second.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def _round_half_away(value: float) -> int:
    """Round to the nearest integer, halves away from zero.

    Python's built-in ``round`` uses banker's rounding (half to even),
    which maps both ``0.5 -> 0`` and ``-0.5 -> 0``: a duration of half a
    nanosecond would silently vanish, and negative offsets would round
    differently from their positive mirrors.  Durations round half away
    from zero instead, so ``nsec(0.5) == 1`` and ``nsec(-0.5) == -1``.
    """
    if value >= 0:
        return int(math.floor(value + 0.5))
    return int(math.ceil(value - 0.5))


def nsec(value: float) -> int:
    """Return *value* nanoseconds as an integer duration."""
    return _round_half_away(value)


def usec(value: float) -> int:
    """Return *value* microseconds as an integer nanosecond duration."""
    return _round_half_away(value * NS_PER_US)


def msec(value: float) -> int:
    """Return *value* milliseconds as an integer nanosecond duration."""
    return _round_half_away(value * NS_PER_MS)


def sec(value: float) -> int:
    """Return *value* seconds as an integer nanosecond duration."""
    return _round_half_away(value * NS_PER_S)


def fmt_time(t_ns: int) -> str:
    """Render a nanosecond timestamp in a human-friendly unit."""
    if abs(t_ns) >= NS_PER_S:
        return f"{t_ns / NS_PER_S:.6f}s"
    if abs(t_ns) >= NS_PER_MS:
        return f"{t_ns / NS_PER_MS:.3f}ms"
    if abs(t_ns) >= NS_PER_US:
        return f"{t_ns / NS_PER_US:.3f}us"
    return f"{t_ns}ns"


class ScheduledEvent:
    """Handle for an event sitting in the simulator's queue.

    Cancellation is lazy: :meth:`cancel` marks the handle and the kernel
    skips cancelled entries when they surface at the head of the heap.
    """

    __slots__ = (
        "callback", "args", "time", "cancelled", "label", "ctx", "_cq", "_seq"
    )

    def __init__(
        self,
        callback: Callable[..., None],
        args: tuple,
        time: int,
        label: str = "",
    ) -> None:
        self.callback = callback
        self.args = args
        self.time = time
        self.cancelled = False
        self.label = label
        #: Span context captured at schedule time (span tracing only;
        #: stays None while ``sim.spans`` is unset).
        self.ctx = None
        #: Back-reference to the calendar queue while the event is
        #: resident there (None under the heap engine and after pop),
        #: so cancellation can be accounted eagerly.
        self._cq = None
        #: Generation stamp: the calendar entry ``(time, prio, seq, ev)``
        #: is live iff ``seq == self._seq``.  Cancel and reschedule
        #: retire the resident entry by changing this.
        self._seq = -1

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        cq = self._cq
        if cq is not None:
            self._cq = None
            self._seq = -1
            cq.note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent {self.label or self.callback} @{fmt_time(self.time)} {state}>"


#: Heap entry layout: ``(time, priority, seq, event)``.  ``seq`` is unique,
#: so tuple comparison never reaches the (incomparable) event object.
_HeapEntry = Tuple[int, int, int, ScheduledEvent]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class Simulator:
    """Event-driven simulator with integer-nanosecond time.

    Parameters
    ----------
    seed:
        Master seed for all named random streams.
    engine:
        Event-queue implementation: ``"calendar"`` (bucketed calendar
        queue, the default) or ``"heap"`` (the original lazy-cancel
        binary heap, kept as the differential reference).  ``None``
        reads ``REPRO_SIM_ENGINE``.  Both engines pop in identical
        ``(time, priority, seq)`` order, so traces are bit-identical.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule_after(msec(5), fired.append, "hello")
    >>> sim.run()
    1
    >>> (sim.now, fired)
    (5000000, ['hello'])
    """

    def __init__(self, seed: int = 0, engine: Optional[str] = None) -> None:
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE", "calendar")
        if engine not in ("calendar", "heap"):
            raise ValueError(f"unknown sim engine {engine!r}")
        self.engine = engine
        self.seed = seed
        self.now: int = 0
        self._heap: List[_HeapEntry] = []
        self._cal: Optional[CalendarQueue] = (
            CalendarQueue() if engine == "calendar" else None
        )
        self._next_seq = itertools.count().__next__
        self._entity_ids: Dict[str, int] = {}
        self._rngs: Dict[str, np.random.Generator] = {}
        self._running = False
        self._trace_hooks: List[Callable[[str, int, dict], None]] = []
        #: Optional :class:`repro.tracing.spans.SpanRecorder`.  Duck-typed
        #: like ``telemetry_sinks``: every hot-path consumer performs one
        #: is-None check when tracing is off.  Attach *before* ``run()``.
        self.spans = None

    # ------------------------------------------------------------------
    # Entity identifiers
    # ------------------------------------------------------------------
    def next_entity_id(self, kind: str) -> int:
        """Mint the next id (1, 2, ...) for *kind* of entity.

        Scoped to this simulator -- not the process -- so entity names
        (participant guids, writer/reader ids) embedded in traces are
        identical no matter how many simulations ran before in the same
        interpreter.  The golden-trace digests rely on this.
        """
        value = self._entity_ids.get(kind, 0) + 1
        self._entity_ids[kind] = value
        return value

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def rng(self, stream: str) -> np.random.Generator:
        """Return the generator for the named stream (created on demand)."""
        gen = self._rngs.get(stream)
        if gen is None:
            # crc32 (not hash()) so stream seeding is stable across
            # processes: Python's str hash is salted per interpreter.
            seed_seq = np.random.SeedSequence(
                [self.seed, zlib.crc32(stream.encode("utf-8"))]
            )
            gen = np.random.default_rng(seed_seq)
            self._rngs[stream] = gen
        return gen

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule *callback(\\*args)* to fire at absolute *time*.

        Events at the same instant fire in ascending *priority* order, ties
        broken by insertion order.  Scheduling into the past raises
        :class:`SimulationError`.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {fmt_time(time)}, "
                f"now is {fmt_time(self.now)}"
            )
        event = ScheduledEvent(callback, args, time, label=label)
        if self.spans is not None:
            event.ctx = self.spans.current
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, (time, priority, self._next_seq(), event))
        else:
            # CalendarQueue.push, inlined: this is the hottest call site
            # in the repository and the call overhead is measurable.
            seq = self._next_seq()
            event._cq = cal
            event._seq = seq
            key = time >> cal._shift
            entry = (time, priority, seq, event)
            if key <= cal._act_key:
                heapq.heappush(cal._extra, entry)
            else:
                pend = cal._pend
                lst = pend.get(key)
                if lst is None:
                    pend[key] = [entry]
                    heapq.heappush(cal._keys, key)
                else:
                    lst.append(entry)
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule *callback* to fire *delay* nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        event = ScheduledEvent(callback, args, time, label=label)
        if self.spans is not None:
            event.ctx = self.spans.current
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, (time, priority, self._next_seq(), event))
        else:
            # CalendarQueue.push, inlined (see schedule_at).
            seq = self._next_seq()
            event._cq = cal
            event._seq = seq
            key = time >> cal._shift
            entry = (time, priority, seq, event)
            if key <= cal._act_key:
                heapq.heappush(cal._extra, entry)
            else:
                pend = cal._pend
                lst = pend.get(key)
                if lst is None:
                    pend[key] = [entry]
                    heapq.heappush(cal._keys, key)
                else:
                    lst.append(entry)
        return event

    def call_now(
        self, callback: Callable[..., None], *args: Any, label: str = ""
    ) -> ScheduledEvent:
        """Schedule *callback* at the current instant (after current event)."""
        event = ScheduledEvent(callback, args, self.now, label=label)
        if self.spans is not None:
            event.ctx = self.spans.current
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, (self.now, 0, self._next_seq(), event))
        else:
            cal.push(self.now, 0, self._next_seq(), event)
        return event

    def reschedule(
        self, event: ScheduledEvent, time: int, priority: int = 0
    ) -> ScheduledEvent:
        """Re-arm an event handle at a new absolute *time*.

        This is the deadline-QoS rearm primitive: timers that cancel
        and immediately re-schedule on every sample should use it
        instead of ``cancel()`` + ``schedule_at()``.  Returns the
        handle to keep -- under the calendar engine the *same* handle
        is reused (the stale queue entry is retired by generation
        stamp, O(1) amortized, no allocation); under the heap engine it
        falls back to lazy-cancel + fresh handle, which is exactly what
        the old rearm pattern did.  Both consume one sequence number,
        so event ordering stays bit-identical across engines.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {fmt_time(time)}, "
                f"now is {fmt_time(self.now)}"
            )
        cal = self._cal
        if cal is None:
            event.cancel()
            fresh = ScheduledEvent(
                event.callback, event.args, time, label=event.label
            )
            if self.spans is not None:
                fresh.ctx = self.spans.current
            heapq.heappush(
                self._heap, (time, priority, self._next_seq(), fresh)
            )
            return fresh
        if event._cq is not None:
            # A live entry is resident: retire it (the new generation
            # stamp set by push makes it stale) and account it dead.
            event._cq = None
            event._seq = -1
            cal.note_cancel()
        event.cancelled = False
        event.time = time
        if self.spans is not None:
            event.ctx = self.spans.current
        # CalendarQueue.push, inlined (see schedule_at).
        seq = self._next_seq()
        event._cq = cal
        event._seq = seq
        key = time >> cal._shift
        entry = (time, priority, seq, event)
        if key <= cal._act_key:
            heapq.heappush(cal._extra, entry)
        else:
            pend = cal._pend
            lst = pend.get(key)
            if lst is None:
                pend[key] = [entry]
                heapq.heappush(cal._keys, key)
            else:
                lst.append(entry)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Return False when queue is empty."""
        cal = self._cal
        if cal is not None:
            entry = cal.pop()
            if entry is None:
                return False
            self.now = entry[0]
            event = entry[3]
            spans = self.spans
            if spans is not None:
                spans.current = event.ctx
            event.callback(*event.args)
            return True
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            _time, _prio, _seq, event = heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            spans = self.spans
            if spans is not None:
                spans.current = event.ctx
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this instant.  Events at
            exactly ``until`` still fire.  ``None`` runs until the queue
            empties.
        max_events:
            Safety valve: abort with :class:`SimulationError` after this
            many events (guards against accidental infinite event loops).

        Returns
        -------
        int
            The number of events that fired.
        """
        count = 0
        cal = self._cal
        if cal is not None:
            return self._run_calendar(until, max_events)
        heap = self._heap
        heappop = heapq.heappop
        if until is None and max_events is None:
            if self.spans is None:
                # Fast path: the overwhelmingly common full-drain loop.
                # A recorder attached mid-drain only takes effect at the
                # next run() call (attach before running, as documented).
                while heap:
                    time, _prio, _seq, event = heappop(heap)
                    if event.cancelled:
                        continue
                    self.now = time
                    event.callback(*event.args)
                    count += 1
                return count
            spans = self.spans
            while heap:
                time, _prio, _seq, event = heappop(heap)
                if event.cancelled:
                    continue
                self.now = time
                spans.current = event.ctx
                event.callback(*event.args)
                count += 1
            spans.current = None
            return count
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heappop(heap)
                continue
            if until is not None and entry[0] > until:
                self.now = until
                break
            heappop(heap)
            self.now = entry[0]
            spans = self.spans
            if spans is not None:
                spans.current = entry[3].ctx
            entry[3].callback(*entry[3].args)
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and self.now < until:
            self.now = until
        spans = self.spans
        if spans is not None:
            spans.current = None
        return count

    def _run_calendar(
        self, until: Optional[int], max_events: Optional[int]
    ) -> int:
        """Drain loop for the calendar engine (same contract as run())."""
        count = 0
        cal = self._cal
        pop = cal.pop
        if until is None and max_events is None:
            if self.spans is None:
                # Fast path: the overwhelmingly common full-drain loop.
                # While the overflow heap is empty, walk the active
                # sorted run directly instead of paying a pop() call
                # per event.  Callbacks can schedule (possibly into the
                # overflow heap), cancel, or trigger a compaction that
                # rebuilds the run, so the loop re-reads the queue
                # state after every fired event and falls back to
                # pop() whenever a merge with the overflow is needed.
                while True:
                    act = cal._act_sorted
                    i = cal._act_idx
                    if i < len(act) and not cal._extra:
                        n = len(act)
                        while i < n:
                            entry = act[i]
                            i += 1
                            cal._act_idx = i
                            event = entry[3]
                            if event._seq != entry[2]:
                                cal._dead -= 1
                            else:
                                event._cq = None
                                self.now = entry[0]
                                event.callback(*event.args)
                                count += 1
                                if cal._extra:
                                    break
                                act = cal._act_sorted
                                n = len(act)
                                i = cal._act_idx
                        continue
                    entry = pop()
                    if entry is None:
                        return count
                    self.now = entry[0]
                    event = entry[3]
                    event.callback(*event.args)
                    count += 1
            spans = self.spans
            while True:
                entry = pop()
                if entry is None:
                    break
                self.now = entry[0]
                event = entry[3]
                spans.current = event.ctx
                event.callback(*event.args)
                count += 1
            spans.current = None
            return count
        while True:
            entry = pop(until)
            if entry is None:
                break
            self.now = entry[0]
            event = entry[3]
            spans = self.spans
            if spans is not None:
                spans.current = event.ctx
            event.callback(*event.args)
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and self.now < until:
            self.now = until
        spans = self.spans
        if spans is not None:
            spans.current = None
        return count

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        cal = self._cal
        if cal is not None:
            return cal.live
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    # ------------------------------------------------------------------
    # Tracing hooks (used by repro.tracing)
    # ------------------------------------------------------------------
    def add_trace_hook(self, hook: Callable[[str, int, dict], None]) -> None:
        """Register *hook(name, time_ns, fields)* for kernel trace points."""
        self._trace_hooks.append(hook)

    @property
    def tracing_active(self) -> bool:
        """True when at least one trace hook is registered.

        Hot emitters check this before building their field dicts, so
        untraced runs (microbenchmarks, workers) skip the cost entirely.
        """
        return bool(self._trace_hooks)

    def emit_trace(self, name: str, **fields: Any) -> None:
        """Deliver a trace point to all registered hooks."""
        for hook in self._trace_hooks:
            hook(name, self.now, fields)
