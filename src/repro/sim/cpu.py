"""ECUs, cores and frequency governors.

The paper's evaluation explicitly enables thread migration and frequency
scaling ("For representing performance and power optimizations, we allowed
thread migration between cores and frequency scaling") -- these are the
main sources of the heavy latency tail its Fig. 9 records.  The governors
here reproduce those effects:

- :class:`ConstantGovernor` -- fixed speed (the "performance" governor).
- :class:`OndemandGovernor` -- cores slow down when idle and ramp back up
  with a delay, so work arriving after an idle gap executes slowly at
  first (race-to-idle latency spikes).
- :class:`BurstyGovernor` -- random speed excursions modelling thermal
  throttling and co-running interference; produces the long tail.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.scheduler import Core, MulticoreScheduler, SchedulerPolicy
from repro.sim.threads import SimThread


class FrequencyGovernor:
    """Base class: per-core speed policy notified of busy/idle edges."""

    def attach(self, core: Core, sim: Simulator) -> None:
        """Bind the governor to *core*; called once by the ECU."""
        self.core = core
        self.sim = sim

    def on_core_busy(self, core: Core) -> None:
        """Called when the core transitions idle -> busy."""

    def on_core_idle(self, core: Core) -> None:
        """Called when the core transitions busy -> idle."""


class ConstantGovernor(FrequencyGovernor):
    """Pin the core at a fixed speed (Linux "performance" governor)."""

    def __init__(self, speed: float = 1.0):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.speed = speed

    def attach(self, core: Core, sim: Simulator) -> None:
        super().attach(core, sim)
        core.set_speed(self.speed)


class OndemandGovernor(FrequencyGovernor):
    """Slow down when idle, ramp up with a delay when work arrives.

    Parameters
    ----------
    low, high:
        Speed while (long) idle and at full ramp respectively.
    ramp_delay:
        Nanoseconds after becoming busy before the speed steps to *high*.
    idle_delay:
        Nanoseconds of idleness before the speed drops to *low*.
    """

    def __init__(
        self,
        low: float = 0.4,
        high: float = 1.0,
        ramp_delay: int = 2_000_000,
        idle_delay: int = 5_000_000,
    ):
        if not (0 < low <= high):
            raise ValueError("need 0 < low <= high")
        self.low = low
        self.high = high
        self.ramp_delay = ramp_delay
        self.idle_delay = idle_delay
        self._ramp_event: Optional[ScheduledEvent] = None
        self._drop_event: Optional[ScheduledEvent] = None

    def attach(self, core: Core, sim: Simulator) -> None:
        super().attach(core, sim)
        core.set_speed(self.low)

    def on_core_busy(self, core: Core) -> None:
        if self._drop_event is not None:
            self._drop_event.cancel()
            self._drop_event = None
        if core.speed < self.high and self._ramp_event is None:
            self._ramp_event = self.sim.schedule_after(
                self.ramp_delay, self._ramp_up, label="governor:ramp"
            )

    def on_core_idle(self, core: Core) -> None:
        if self._ramp_event is not None:
            self._ramp_event.cancel()
            self._ramp_event = None
        if self._drop_event is None and core.speed > self.low:
            self._drop_event = self.sim.schedule_after(
                self.idle_delay, self._drop_down, label="governor:drop"
            )

    def _ramp_up(self) -> None:
        self._ramp_event = None
        if not self.core.idle:
            self.core.set_speed(self.high)

    def _drop_down(self) -> None:
        self._drop_event = None
        if self.core.idle:
            self.core.set_speed(self.low)


class BurstyGovernor(FrequencyGovernor):
    """Random speed excursions (thermal throttling / interference).

    The core normally runs at ``nominal`` speed; at exponentially
    distributed intervals it drops to a random speed in
    ``[slow_min, slow_max]`` for an exponentially distributed dwell time.
    """

    def __init__(
        self,
        nominal: float = 1.0,
        slow_min: float = 0.1,
        slow_max: float = 0.5,
        mean_interval: int = 200_000_000,
        mean_dwell: int = 30_000_000,
        rng_stream: str = "governor:bursty",
    ):
        if not (0 < slow_min <= slow_max <= nominal):
            raise ValueError("need 0 < slow_min <= slow_max <= nominal")
        self.nominal = nominal
        self.slow_min = slow_min
        self.slow_max = slow_max
        self.mean_interval = mean_interval
        self.mean_dwell = mean_dwell
        self.rng_stream = rng_stream

    def attach(self, core: Core, sim: Simulator) -> None:
        super().attach(core, sim)
        core.set_speed(self.nominal)
        self._schedule_excursion()

    def _schedule_excursion(self) -> None:
        rng = self.sim.rng(f"{self.rng_stream}:{self.core.index}")
        delay = max(1, int(rng.exponential(self.mean_interval)))
        self.sim.schedule_after(delay, self._begin_excursion, label="governor:burst")

    def _begin_excursion(self) -> None:
        # Same stream name as _schedule_excursion: rng() caches per name,
        # so both methods draw from one generator in arrival order.
        rng = self.sim.rng(f"{self.rng_stream}:{self.core.index}")
        slow = float(rng.uniform(self.slow_min, self.slow_max))
        dwell = max(1, int(rng.exponential(self.mean_dwell)))
        self.core.set_speed(slow)
        self.sim.schedule_after(dwell, self._end_excursion, label="governor:burst-end")

    def _end_excursion(self) -> None:
        self.core.set_speed(self.nominal)
        self._schedule_excursion()


class PerfectClock:
    """A clock that reads exactly the simulated (global) time."""

    def __init__(self, sim: Simulator):
        self._sim = sim

    def now(self) -> int:
        """Current local time in nanoseconds (== global time)."""
        return self._sim.now


class Ecu:
    """An electronic control unit: cores + scheduler + local clock.

    Parameters
    ----------
    sim:
        Simulation kernel.
    name:
        Identifier (e.g. ``"ecu1"``).
    n_cores:
        Number of cores (the paper's testbed was a quad-core i5).
    policy:
        Scheduling policy; GLOBAL allows migration as in the paper.
    governor_factory:
        Callable producing one :class:`FrequencyGovernor` per core;
        ``None`` leaves all cores at speed 1.0.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        n_cores: int = 4,
        policy: SchedulerPolicy = SchedulerPolicy.GLOBAL,
        governor_factory: Optional[Callable[[], FrequencyGovernor]] = None,
    ):
        self.sim = sim
        self.name = name
        self.scheduler = MulticoreScheduler(
            sim, n_cores=n_cores, policy=policy, name=name
        )
        if governor_factory is not None:
            for core in self.scheduler.cores:
                governor = governor_factory()
                core.governor = governor
                governor.attach(core, sim)
        #: Local clock; replaced by a drifting PTP clock in network setups.
        self.clock = PerfectClock(sim)

    def now(self) -> int:
        """Read the ECU-local clock (may differ from global sim time)."""
        return self.clock.now()

    def spawn(
        self,
        name: str,
        body,
        priority: int = 0,
        affinity: Optional[int] = None,
    ) -> SimThread:
        """Create and start a thread on this ECU."""
        return self.scheduler.spawn(
            f"{self.name}.{name}", body, priority=priority, affinity=affinity
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Ecu {self.name} cores={len(self.scheduler.cores)}>"
