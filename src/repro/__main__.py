"""``python -m repro`` -- regenerate the paper's figures from the CLI."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
