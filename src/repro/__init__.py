"""repro -- reproduction of "Online latency monitoring of time-sensitive
event chains in safety-critical applications" (Peeck, Schlatow, Ernst;
DATE 2021).

The package implements the paper's decentralized end-to-end latency
monitoring for event chains with weakly-hard (m,k) constraints, together
with every substrate its evaluation depends on:

- :mod:`repro.sim` -- deterministic discrete-event execution platform
  (preemptive fixed-priority multicore scheduling, frequency scaling).
- :mod:`repro.network` -- inter-ECU links and PTP-style clock sync.
- :mod:`repro.dds` -- a DDS-like publish/subscribe middleware with QoS.
- :mod:`repro.ros` -- a minimal ROS2-like node/executor layer.
- :mod:`repro.core` -- the contribution: event chains, segments, local and
  remote monitors, temporal exceptions, (m,k) supervision.
- :mod:`repro.budgeting` -- trace-based segment-deadline synthesis
  (the constraint-satisfaction problem of the paper's Eqs. 2-7).
- :mod:`repro.perception` -- an Autoware.Auto-like dual-lidar perception
  workload used by the evaluation.
- :mod:`repro.tracing` -- LTTng-like tracing and latency reconstruction.
- :mod:`repro.ipc` -- a real (non-simulated) shared-memory monitor used
  for overhead measurements.
- :mod:`repro.analysis` -- Tukey/boxplot statistics and report rendering.
- :mod:`repro.experiments` -- one module per paper figure.
"""

__version__ = "1.0.0"
