"""Local segment monitoring (paper Sec. IV-A).

One high-priority **monitor thread** per process/ECU supervises all
local segments whose end events occur there.  Instrumented DDS endpoint
code posts timestamps into per-segment **ring buffers** (one for start
events, one for end events) in shared memory and raises the monitor's
**semaphore** on start events only -- end events do not notify, saving a
context switch, because their processing is not time critical.

The monitor thread blocks in ``sem_timedwait`` with the timeout set to
the earliest pending deadline.  When it wakes it drains the buffers in a
*fixed segment order* (the cause of the ground-points skew in the
paper's Fig. 10), arms a timeout for every new start event, matches end
events against pending timeouts, and raises temporal exceptions for
expired ones.  After an exception, the corresponding late publication
(or late reception, for sink segments) is skipped via a shared counter
evaluated by the instrumented endpoint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.chain_runtime import ChainRuntime, Outcome
from repro.core.exceptions import (
    ExceptionContext,
    ExceptionHandler,
    PropagateAlways,
    TemporalException,
    handle_local_exception,
)
from repro.core.events import EventKind
from repro.core.segments import Segment, SegmentKind
from repro.core.weakly_hard import MissWindow, MKConstraint
from repro.dds.reader import DataReader
from repro.dds.topic import Sample, Topic
from repro.dds.writer import DataWriter
from repro.sim.calendar import CalendarQueue, CancelToken, EagerHeapQueue
from repro.sim.cpu import Ecu
from repro.sim.kernel import usec
from repro.sim.sync import Semaphore
from repro.sim.threads import Compute, WaitSem
from repro.sim.workload import ExecutionTimeModel


class EventRingBuffer:
    """A bounded wait-free-style event buffer with overflow counting.

    Models the paper's shared-memory ring buffers.  Capacity overruns
    are counted and drop the *newest* event (a correctly sized buffer
    never overflows; the counter is a deployment diagnostic).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[tuple] = deque()
        self.overflows = 0
        self.posted = 0

    def post(self, item: tuple) -> bool:
        """Append *item*; False (and counted) if the buffer is full."""
        if len(self._items) >= self.capacity:
            self.overflows += 1
            return False
        self._items.append(item)
        self.posted += 1
        return True

    def drain(self) -> List[tuple]:
        """Pop and return everything currently buffered (FIFO)."""
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class MonitorCosts:
    """CPU work charged to the monitor thread per action (ns)."""

    start_event: int = usec(2)
    end_event: int = usec(1)
    exception_detect: int = usec(5)
    remote_entry: int = usec(3)


@dataclass
class _Pending:
    start_ts: int
    deadline: int
    data: Any = None
    #: Handle of this activation's entry in the monitor's timeout queue;
    #: cancelled eagerly when the activation completes (or is replaced),
    #: so stale entries no longer linger until their deadline surfaces.
    token: Optional[CancelToken] = None


ActivationFn = Callable[[Sample], Optional[int]]


class SkipGate:
    """The shared skip counter evaluated by the publisher (Sec. IV-A).

    After an exception the segment's late real end event (publication or
    reception) must be suppressed.  When two segments share one end
    endpoint -- the paper's fusion publishes ``points_fused`` as the end
    event of both the front- and rear-started local segments -- the
    suppression must not double up, so one gate is shared and tracks
    *which activations* to skip (falling back to a plain counter when no
    activation extractor is available).
    """

    def __init__(self, activation_fn: Optional[ActivationFn] = None):
        self.activation_fn = activation_fn
        self._activations: set = set()
        self._count = 0
        self.suppressed = 0
        self._installed: set = set()

    def add(self, activation: Optional[int]) -> None:
        """Mark the (next) end event of *activation* for suppression."""
        if activation is not None and self.activation_fn is not None:
            self._activations.add(activation)
        else:
            self._count += 1

    def _filter(self, sample: Sample) -> bool:
        if sample.recovered:
            return True
        if self.activation_fn is not None:
            n = self.activation_fn(sample)
            if n is not None and n in self._activations:
                self._activations.discard(n)
                self.suppressed += 1
                return False
        if self._count > 0:
            self._count -= 1
            self.suppressed += 1
            return False
        return True

    def install_writer(self, writer: DataWriter) -> None:
        """Attach the gate's filter to *writer* (idempotent)."""
        if id(writer) not in self._installed:
            self._installed.add(id(writer))
            writer.publish_filters.append(self._filter)

    def install_reader(self, reader: DataReader) -> None:
        """Attach the gate's filter to *reader* (idempotent)."""
        if id(reader) not in self._installed:
            self._installed.add(id(reader))
            reader.receive_filters.append(self._filter)


class LocalSegmentRuntime:
    """Monitoring state of one local segment, owned by a MonitorThread.

    Parameters
    ----------
    segment:
        The segment descriptor; ``d_mon`` must be assigned.
    handler:
        Application exception-handling policy (Algorithm 2).
    mk:
        Weakly-hard constraint used for the handler's miss count m.
    activation_fn:
        Extracts the activation index n from a sample; ``None`` falls
        back to arrival counting (valid under in-order delivery).
    start_overhead / end_overhead:
        Models of the instrumentation cost of posting events, sampled
        and recorded for the Fig. 11 statistics.
    """

    def __init__(
        self,
        segment: Segment,
        handler: Optional[ExceptionHandler] = None,
        mk: MKConstraint = MKConstraint(0, 1),
        activation_fn: Optional[ActivationFn] = None,
        start_overhead: Optional[ExecutionTimeModel] = None,
        end_overhead: Optional[ExecutionTimeModel] = None,
        buffer_capacity: int = 256,
        skip_gate: Optional[SkipGate] = None,
    ):
        if segment.kind is not SegmentKind.LOCAL:
            raise ValueError(f"{segment.name} is not a local segment")
        if segment.d_mon is None:
            raise ValueError(f"{segment.name} has no monitored deadline assigned")
        self.segment = segment
        self.handler = handler or PropagateAlways()
        self.window = MissWindow(mk)
        self.activation_fn = activation_fn
        self.start_overhead = start_overhead
        self.end_overhead = end_overhead
        self.start_buffer = EventRingBuffer(buffer_capacity)
        self.end_buffer = EventRingBuffer(buffer_capacity)
        self.pending: Dict[int, _Pending] = {}
        self._start_count = 0
        self._end_count = 0
        self.skip_gate = skip_gate or SkipGate(activation_fn=activation_fn)
        self.last_good_data: Any = None
        self.monitor: Optional["MonitorThread"] = None
        # Recovery outputs (exactly one of these is wired by attach_end_*).
        self._recovery_writer: Optional[DataWriter] = None
        self._recovery_reader: Optional[DataReader] = None
        self._end_topic: Optional[Topic] = None
        # Measurements.
        self.latencies: List[Tuple[int, int, Outcome]] = []  # (n, latency, outcome)
        self.exceptions: List[TemporalException] = []
        self.stale_end_events = 0
        self.start_overhead_samples: List[int] = []
        self.end_overhead_samples: List[int] = []
        self.monitor_latency_samples: List[int] = []
        self.reporters: List[ChainRuntime] = []
        #: Telemetry emission hooks (duck-typed, like ``reporters``; see
        #: :class:`repro.telemetry.emitter.MonitorTelemetrySink`).  The
        #: hot path pays one falsy check per event when empty.
        self.telemetry_sinks: List = []
        #: Span contexts of pending activations (span tracing only):
        #: captured at the start event so an exception span can parent
        #: to the causal chain that started the activation.
        self._span_ctx: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Instrumentation attachment
    # ------------------------------------------------------------------
    def attach_start(self, reader: DataReader) -> None:
        """Install the start-event hook on the reader where the segment
        begins (reception of the start topic by the process)."""
        reader.on_receive_hooks.append(self._on_start_sample)

    def attach_end_writer(self, writer: DataWriter) -> None:
        """Install end-event hook + skip filter on the end publisher."""
        self._recovery_writer = writer
        self.skip_gate.install_writer(writer)
        writer.on_publish_hooks.append(self._on_end_sample)

    def attach_end_reader(self, reader: DataReader) -> None:
        """Install end-event hook + skip filter on the end subscriber
        (sink segments, like the rviz2 end of the paper's evaluation)."""
        self._recovery_reader = reader
        self._end_topic = reader.topic
        self.skip_gate.install_reader(reader)
        reader.on_receive_hooks.append(self._on_end_sample)

    # ------------------------------------------------------------------
    # Endpoint-context callbacks (zero simulated time)
    # ------------------------------------------------------------------
    def _activation_of(self, sample: Sample, counter: str) -> int:
        if self.activation_fn is not None:
            n = self.activation_fn(sample)
            if n is not None:
                return n
        if counter == "start":
            n = self._start_count
        else:
            n = self._end_count
        return n

    def _on_start_sample(self, sample: Sample) -> None:
        monitor = self._require_monitor()
        n = self._activation_of(sample, "start")
        self._start_count += 1
        ts = monitor.ecu.now()
        if self.start_overhead is not None:
            overhead = self.start_overhead.sample(
                monitor.sim.rng(f"monitor-overhead:{self.segment.name}:start")
            )
            self.start_overhead_samples.append(overhead)
        self.start_buffer.post((n, ts, sample.data))
        spans = monitor.sim.spans
        if spans is not None:
            # Runs inside the start-event delivery: the ambient context
            # is the transport span that delivered the start sample.
            self._span_ctx[n] = spans.current
        monitor.sim.emit_trace(
            "monitor.start_event", segment=self.segment.name, n=n, ts=ts
        )
        monitor.sem.post()

    def _on_end_sample(self, sample: Sample) -> None:
        monitor = self._require_monitor()
        n = self._activation_of(sample, "end")
        self._end_count += 1
        ts = monitor.ecu.now()
        if self.end_overhead is not None:
            overhead = self.end_overhead.sample(
                monitor.sim.rng(f"monitor-overhead:{self.segment.name}:end")
            )
            self.end_overhead_samples.append(overhead)
        self.end_buffer.post((n, ts))
        monitor.sim.emit_trace(
            "monitor.end_event", segment=self.segment.name, n=n, ts=ts
        )
        # Deliberately no sem.post(): end events are not time critical.

    def post_error_propagation(self, activation: int) -> None:
        """Consume *activation* as an upstream-propagated miss.

        Called (via the monitor) when the preceding remote segment
        propagates its exception instead of issuing a start event.
        """
        self._start_count += 1
        monitor = self.monitor
        if monitor is not None and monitor.sim.spans is not None:
            # Error-propagation event (Algorithm 1 line 7): an instant
            # span under the ambient (remote exception) context.
            monitor.sim.spans.instant(
                "monitor.propagation",
                "exception",
                segment=self.segment.name,
                n=activation,
            )
        for runtime in self.reporters:
            runtime.report(self.segment.name, activation, Outcome.SKIPPED)
        if self.telemetry_sinks:
            ts = self.monitor.ecu.now() if self.monitor is not None else 0
            for sink in self.telemetry_sinks:
                sink.segment_event(
                    self.segment.name, activation, Outcome.SKIPPED.value,
                    None, ts,
                )

    # ------------------------------------------------------------------
    # Monitor-thread-context operations
    # ------------------------------------------------------------------
    def _require_monitor(self) -> "MonitorThread":
        if self.monitor is None:
            raise RuntimeError(
                f"segment {self.segment.name} is not attached to a monitor thread"
            )
        return self.monitor

    def _arm(self, n: int, ts: int, data: Any) -> None:
        monitor = self._require_monitor()
        assert self.segment.d_mon is not None
        deadline = ts + self.segment.d_mon
        old = self.pending.get(n)
        if old is not None and old.token is not None:
            old.token.cancel()
        self.pending[n] = _Pending(start_ts=ts, deadline=deadline, data=data)
        monitor._push_timeout(deadline, self, n)
        self.monitor_latency_samples.append(monitor.ecu.now() - ts)

    def _complete(self, n: int, end_ts: int) -> None:
        entry = self.pending.pop(n, None)
        if entry is None:
            self.stale_end_events += 1
            return
        if entry.token is not None:
            entry.token.cancel()
        if self._span_ctx:
            self._span_ctx.pop(n, None)
        latency = end_ts - entry.start_ts
        # Remember the input of the last successful activation: recovery
        # handlers commonly fall back to it.
        self.last_good_data = entry.data
        self.window.record(False)
        self.latencies.append((n, latency, Outcome.OK))
        for runtime in self.reporters:
            runtime.report(self.segment.name, n, Outcome.OK, latency=latency)
        if self.telemetry_sinks:
            for sink in self.telemetry_sinks:
                sink.segment_event(
                    self.segment.name, n, Outcome.OK.value, latency, end_ts
                )

    def _raise_exception(
        self, n: int, detected_at: int, span_begin: Optional[int] = None
    ) -> bool:
        """Run Algorithm 2 for activation *n*; True if recovered."""
        monitor = self._require_monitor()
        entry = self.pending.pop(n)
        if entry.token is not None:
            entry.token.cancel()
        exception = TemporalException(
            segment=self.segment,
            activation=n,
            deadline=entry.deadline,
            raised_at=detected_at,
        )
        self.exceptions.append(exception)
        context = ExceptionContext(
            exception=exception,
            misses=self.window.misses_in_window + 1,
            start_data=entry.data,
            last_good_data=self.last_good_data,
        )
        spans = monitor.sim.spans
        exc_span = None
        prev_ctx = None
        if spans is not None:
            # The exception-handling span (Algorithm 2): parented to the
            # causal chain that delivered the start event, anchored at
            # the instant the monitor began handling the expiry.
            parent = self._span_ctx.pop(n, None)
            exc_span = spans.begin(
                f"monitor.exception:{self.segment.name}",
                "exception",
                parent=parent if parent is not None else spans.current,
                start=span_begin,
                segment=self.segment.name,
                n=n,
            )
            prev_ctx = spans.current
            spans.current = exc_span.context
        recovered = handle_local_exception(
            self.handler, context, self._publish_recovery
        )
        if exc_span is not None:
            spans.current = prev_ctx
        # Skip the late real end event and its publication/reception.
        self.skip_gate.add(n)
        handled_at = monitor.ecu.now()
        latency = handled_at - entry.start_ts
        outcome = Outcome.RECOVERED if recovered else Outcome.MISS
        self.window.record(not recovered)
        self.latencies.append((n, latency, outcome))
        for runtime in self.reporters:
            runtime.report(
                self.segment.name,
                n,
                outcome,
                latency=latency,
                detection_latency=detected_at - entry.deadline,
            )
            runtime.report_exception(exception)
        if self.telemetry_sinks:
            for sink in self.telemetry_sinks:
                sink.segment_event(
                    self.segment.name, n, outcome.value, latency, handled_at
                )
                sink.exception_event(
                    self.segment.name, n, detected_at - entry.deadline,
                    detected_at,
                )
        monitor.sim.emit_trace(
            "monitor.exception",
            segment=self.segment.name,
            n=n,
            recovered=recovered,
            detection_latency=detected_at - entry.deadline,
        )
        if exc_span is not None:
            exc_span.attrs["recovered"] = recovered
            exc_span.attrs["detection_latency"] = detected_at - entry.deadline
            spans.end(exc_span)
        return recovered

    def _publish_recovery(self, data: Any) -> None:
        if self._recovery_writer is not None:
            self._recovery_writer.write(data, recovered=True)
            return
        if self._recovery_reader is not None and self._end_topic is not None:
            monitor = self._require_monitor()
            sample = Sample(
                topic=self._end_topic,
                data=data,
                source_timestamp=monitor.ecu.now(),
                sequence_number=-1,
                recovered=True,
            )
            self._recovery_reader.issue_receive(sample)
            return
        raise RuntimeError(
            f"segment {self.segment.name}: recovery requested but no end "
            f"endpoint attached"
        )

    def next_expiry(self) -> Optional[int]:
        """Earliest pending deadline of this segment, or None."""
        if not self.pending:
            return None
        return min(entry.deadline for entry in self.pending.values())


class MonitorThread:
    """The high-priority monitor thread of one ECU/process.

    Parameters
    ----------
    ecu:
        Hosting ECU; the thread runs at *priority* (highest, per paper).
    priority:
        Scheduling priority; must exceed every application/middleware
        thread for bounded reaction times.
    costs:
        Per-action CPU costs charged to the thread.
    """

    def __init__(
        self,
        ecu: Ecu,
        name: str = "monitor",
        priority: int = 99,
        costs: Optional[MonitorCosts] = None,
    ):
        self.ecu = ecu
        self.sim = ecu.sim
        self.name = name
        self.costs = costs or MonitorCosts()
        self.sem = Semaphore(self.sim, name=f"{ecu.name}.{name}.sem")
        self.segments: List[LocalSegmentRuntime] = []
        # Timeout queue: same engine family as the hosting kernel so the
        # differential suite exercises both.  Either way cancelled
        # entries are compacted eagerly instead of leaking until their
        # deadline would have surfaced at the heap root.
        if getattr(self.sim, "engine", "heap") == "calendar":
            self._timeout_queue: Any = CalendarQueue()
        else:
            self._timeout_queue = EagerHeapQueue()
        self._timeout_seq = 0
        self._remote_queue: Deque[Callable[[], None]] = deque()
        self.wakeups = 0
        self.exceptions_raised = 0
        self.thread = ecu.spawn(name, self._body, priority=priority)

    # ------------------------------------------------------------------
    def add_segment(self, runtime: LocalSegmentRuntime) -> LocalSegmentRuntime:
        """Register a local segment; buffer processing follows this order."""
        runtime.monitor = self
        self.segments.append(runtime)
        return runtime

    def forward(self, fn: Callable[[], None]) -> None:
        """Run *fn* on the monitor thread (remote-timeout forwarding).

        This is the paper's Sec. V-B proposal: program timeouts in the
        middleware but execute the handling at monitor priority.
        """
        self._remote_queue.append(fn)
        self.sem.post()

    def _push_timeout(
        self, deadline: int, runtime: LocalSegmentRuntime, n: int
    ) -> None:
        token = CancelToken((runtime, n))
        entry = runtime.pending.get(n)
        if entry is not None:
            entry.token = token
        seq = self._timeout_seq
        self._timeout_seq = seq + 1
        self._timeout_queue.push(deadline, 0, seq, token)

    def _next_expiry(self) -> Optional[int]:
        entry = self._timeout_queue.peek()
        return None if entry is None else entry[0]

    # ------------------------------------------------------------------
    def _body(self, _thread):
        while True:
            next_expiry = self._next_expiry()
            if next_expiry is None:
                timeout = None
            else:
                timeout = max(0, next_expiry - self.ecu.now())
            yield WaitSem(self.sem, timeout=timeout)
            self.wakeups += 1
            # 1) Remote timeout forwards (Sec. V-B path).
            while self._remote_queue:
                fn = self._remote_queue.popleft()
                if self.costs.remote_entry > 0:
                    yield Compute(self.costs.remote_entry)
                fn()
            # 2) Drain buffers in fixed segment order.
            for runtime in self.segments:
                for n, ts, data in runtime.start_buffer.drain():
                    if self.costs.start_event > 0:
                        yield Compute(self.costs.start_event)
                    runtime._arm(n, ts, data)
                for n, ts in runtime.end_buffer.drain():
                    if self.costs.end_event > 0:
                        yield Compute(self.costs.end_event)
                    runtime._complete(n, ts)
            # 3) Raise exceptions for expired timeouts, earliest first.
            while True:
                expiry = self._next_expiry()
                if expiry is None or expiry > self.ecu.now():
                    break
                popped = self._timeout_queue.pop()
                assert popped is not None  # peek just saw a live entry
                runtime, n = popped[3].data
                # Last-moment check: the end event may have been posted
                # while we were processing other segments.
                for end_n, end_ts in runtime.end_buffer.drain():
                    if self.costs.end_event > 0:
                        yield Compute(self.costs.end_event)
                    runtime._complete(end_n, end_ts)
                if n not in runtime.pending:
                    continue
                # Anchor the exception span at the instant the monitor
                # started reacting, before detection/handler CPU costs.
                span_begin = None if self.sim.spans is None else self.sim.now
                if self.costs.exception_detect > 0:
                    yield Compute(self.costs.exception_detect)
                if runtime.handler.cost_ns > 0:
                    yield Compute(runtime.handler.cost_ns)
                detected_at = self.ecu.now()
                runtime._raise_exception(n, detected_at, span_begin=span_begin)
                self.exceptions_raised += 1

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MonitorThread {self.ecu.name}.{self.name} "
            f"segments={[r.segment.name for r in self.segments]}>"
        )
