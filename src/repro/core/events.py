"""Communication events delimiting segments.

The paper's monitors observe exactly two event types already exposed by
the middleware API -- *publication events* and *receive events* -- plus
the *error propagation event* a remote monitor emits towards the next
local segment's monitor instead of a start event (Algorithm 1, line 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """Observable communication event types."""

    PUBLICATION = "publication"
    RECEIVE = "receive"
    ERROR_PROPAGATION = "error_propagation"


@dataclass(frozen=True)
class EventPoint:
    """An observation point for communication events.

    Two segment boundaries are *the same point* (gap-free chaining,
    ``e_e^{s_i} = e_st^{s_{i+1}}``) iff their EventPoints compare equal.

    Parameters
    ----------
    topic:
        Topic whose publication/reception is observed.
    kind:
        PUBLICATION or RECEIVE.
    ecu:
        Name of the ECU where the event is observed.
    process:
        Node/process observing the event.  Needed to disambiguate
        multiple subscribers of one topic on the same ECU.
    """

    topic: str
    kind: EventKind
    ecu: str
    process: str = ""

    def __post_init__(self) -> None:
        if self.kind is EventKind.ERROR_PROPAGATION:
            raise ValueError(
                "segments are delimited by publication/receive events; "
                "error propagation events are runtime artefacts"
            )

    def __str__(self) -> str:
        where = f"{self.ecu}:{self.process}" if self.process else self.ecu
        return f"{self.kind.value}({self.topic})@{where}"


@dataclass(frozen=True)
class EventRecord:
    """A timestamped occurrence of a communication event.

    ``activation`` is the event's index n; under the paper's in-order
    delivery assumption the n-th start/end event corresponds to the n-th
    activation/completion of the segment.
    """

    point: EventPoint
    activation: int
    #: Local-clock timestamp at the observing ECU, ns.
    timestamp: int
