"""DAG-shaped event chains: fork/join topologies with per-sink deadlines.

The paper's system model (Sec. III) assumes a *linear* chain of
segments.  Real autonomous stacks are DAGs: a fusion stage joins several
sensor branches, and its output forks to consumers with different
deadlines ("Multi-Deadline DAG Scheduling Model for Autonomous Driving
Systems", PAPERS.md).  This module generalizes :class:`EventChain` to a
:class:`DagChain` while keeping the paper's machinery intact: a DAG is
monitored as the set of its root->sink *paths*, each of which is exactly
a linear event chain and therefore budgeted by the existing CSP
(Eqs. 3-7) and supervised by the existing (m,k) automata -- keyed by
path id instead of chain name.

Degeneracy is the design invariant: a linear chain round-tripped through
:meth:`DagChain.from_linear` / :meth:`DagChain.to_linear` is *equal* (in
the dataclass sense) to the original, which is what the differential
identity suite (``tests/test_dag_differential.py``) pins bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.chains import ChainValidationError, EventChain
from repro.core.segments import Segment
from repro.core.weakly_hard import MKConstraint

#: Separator used to render a path id from its segment names.
PATH_SEP = ">"

#: Safety cap on path enumeration -- a DAG whose path count explodes is
#: a modelling error, not a monitoring workload.
MAX_PATHS = 256


@dataclass(frozen=True)
class DagPath:
    """One root->sink path of a :class:`DagChain`."""

    path_id: str
    segment_names: Tuple[str, ...]

    @property
    def root(self) -> str:
        """Name of the path's first (source) segment."""
        return self.segment_names[0]

    @property
    def sink(self) -> str:
        """Name of the path's last (sink) segment."""
        return self.segment_names[-1]

    def __len__(self) -> int:
        return len(self.segment_names)

    def __str__(self) -> str:
        return self.path_id


class DagChain:
    """A monitored fork/join event-chain DAG.

    Parameters
    ----------
    name:
        DAG identifier, e.g. ``"perception_fusion"``.
    segments:
        The monitored segments (the DAG's nodes), in registration order.
    edges:
        ``(predecessor, successor)`` segment-name pairs.  Every edge must
        be gap-free: the predecessor's end event coincides with the
        successor's start event -- the paper's central soundness
        requirement, applied per edge instead of per consecutive pair.
    period:
        Activation period P in ns (one per DAG; all sources fire
        synchronously, as the paper's chains do).
    budget_e2e:
        End-to-end budget per *sink* segment.  A plain int applies the
        same budget to every sink; a mapping assigns per-sink deadlines
        (the "multiple deadlines" of the DAG scheduling literature).
    budget_seg:
        Per-segment bound ``B_seg`` (defaults to the period).
    mk:
        Weakly-hard constraint applied to every root->sink path.
        A mapping keyed by sink name overrides per sink.
    """

    def __init__(
        self,
        name: str,
        segments: Sequence[Segment],
        edges: Sequence[Tuple[str, str]],
        period: int,
        budget_e2e: Union[int, Mapping[str, int]],
        budget_seg: Optional[int] = None,
        mk: Union[MKConstraint, Mapping[str, MKConstraint], None] = None,
    ):
        self.name = name
        self.segments: Dict[str, Segment] = {}
        for segment in segments:
            if segment.name in self.segments:
                raise ChainValidationError(
                    f"{name}: duplicate segment {segment.name!r}"
                )
            self.segments[segment.name] = segment
        if not self.segments:
            raise ChainValidationError(f"{name}: DAG needs >= 1 segment")
        if period <= 0:
            raise ChainValidationError(f"{name}: period must be positive")
        self.period = period
        self.budget_seg = period if budget_seg is None else budget_seg

        self.edges: List[Tuple[str, str]] = []
        self._succ: Dict[str, List[str]] = {s: [] for s in self.segments}
        self._pred: Dict[str, List[str]] = {s: [] for s in self.segments}
        seen = set()
        for src, dst in edges:
            if src not in self.segments or dst not in self.segments:
                raise ChainValidationError(
                    f"{name}: edge ({src!r}, {dst!r}) references an "
                    f"unknown segment"
                )
            if src == dst:
                raise ChainValidationError(f"{name}: self-loop on {src!r}")
            if (src, dst) in seen:
                raise ChainValidationError(
                    f"{name}: duplicate edge ({src!r}, {dst!r})"
                )
            seen.add((src, dst))
            a, b = self.segments[src], self.segments[dst]
            if a.end != b.start:
                raise ChainValidationError(
                    f"{name}: unmonitored gap on edge {src} -> {dst} "
                    f"({src} ends {a.end}, {dst} starts {b.start})"
                )
            self.edges.append((src, dst))
            self._succ[src].append(dst)
            self._pred[dst].append(src)
        self._check_acyclic()

        sinks = self.sinks()
        if isinstance(budget_e2e, Mapping):
            missing = [s for s in sinks if s not in budget_e2e]
            if missing:
                raise ChainValidationError(
                    f"{name}: no end-to-end budget for sink(s) {missing}"
                )
            self.budget_e2e: Dict[str, int] = {
                s: int(budget_e2e[s]) for s in sinks
            }
        else:
            self.budget_e2e = {s: int(budget_e2e) for s in sinks}
        for sink, budget in self.budget_e2e.items():
            if budget <= 0:
                raise ChainValidationError(
                    f"{name}: budget for sink {sink} must be positive"
                )

        if mk is None:
            mk = MKConstraint(0, 1)
        if isinstance(mk, Mapping):
            default = MKConstraint(0, 1)
            self.mk: Dict[str, MKConstraint] = {
                s: mk.get(s, default) for s in sinks
            }
        else:
            self.mk = {s: mk for s in sinks}

        self._paths = self._enumerate_paths()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _check_acyclic(self) -> None:
        indegree = {s: len(self._pred[s]) for s in self.segments}
        queue = [s for s in self.segments if indegree[s] == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if visited != len(self.segments):
            raise ChainValidationError(f"{self.name}: DAG contains a cycle")

    def roots(self) -> List[str]:
        """Source segments (no predecessors), registration order."""
        return [s for s in self.segments if not self._pred[s]]

    def sinks(self) -> List[str]:
        """Sink segments (no successors), registration order."""
        return [s for s in self.segments if not self._succ[s]]

    def successors(self, segment_name: str) -> List[str]:
        """Direct successors of one segment."""
        return list(self._succ[segment_name])

    def predecessors(self, segment_name: str) -> List[str]:
        """Direct predecessors of one segment."""
        return list(self._pred[segment_name])

    def _enumerate_paths(self) -> List[DagPath]:
        paths: List[DagPath] = []

        def walk(node: str, prefix: List[str]) -> None:
            prefix.append(node)
            if not self._succ[node]:
                if len(paths) >= MAX_PATHS:
                    raise ChainValidationError(
                        f"{self.name}: more than {MAX_PATHS} root->sink paths"
                    )
                paths.append(DagPath(
                    path_id=PATH_SEP.join(prefix),
                    segment_names=tuple(prefix),
                ))
            else:
                for succ in self._succ[node]:
                    walk(succ, prefix)
            prefix.pop()

        for root in self.roots():
            walk(root, [])
        return paths

    def paths(self) -> List[DagPath]:
        """Every root->sink path, in deterministic registration order."""
        return list(self._paths)

    def path_by_id(self, path_id: str) -> DagPath:
        """Look up one path by its id."""
        for path in self._paths:
            if path.path_id == path_id:
                return path
        raise KeyError(f"{self.name} has no path {path_id!r}")

    # ------------------------------------------------------------------
    # Path -> linear chain projection
    # ------------------------------------------------------------------
    def path_chain(self, path: DagPath) -> EventChain:
        """Project one path onto a linear :class:`EventChain`.

        The projected chain carries the sink's end-to-end budget and
        (m,k) constraint, which is how every existing linear-chain
        mechanism (budgeting CSP, monitors, telemetry automata) applies
        unchanged to DAG instances.
        """
        return EventChain(
            name=f"{self.name}:{path.path_id}",
            segments=[self.segments[s] for s in path.segment_names],
            period=self.period,
            budget_e2e=self.budget_e2e[path.sink],
            budget_seg=self.budget_seg,
            mk=self.mk[path.sink],
        )

    def path_chains(self) -> Dict[str, EventChain]:
        """All path projections, keyed by path id."""
        return {p.path_id: self.path_chain(p) for p in self._paths}

    # ------------------------------------------------------------------
    # Linear degeneracy
    # ------------------------------------------------------------------
    @classmethod
    def from_linear(cls, chain: EventChain) -> "DagChain":
        """Express a linear chain as a degenerate single-path DAG."""
        names = [segment.name for segment in chain.segments]
        assert chain.budget_seg is not None
        return cls(
            name=chain.name,
            segments=list(chain.segments),
            edges=list(zip(names, names[1:])),
            period=chain.period,
            budget_e2e=chain.budget_e2e,
            budget_seg=chain.budget_seg,
            mk=chain.mk,
        )

    def to_linear(self) -> EventChain:
        """Collapse a single-path DAG back into the equal linear chain.

        Raises :class:`ChainValidationError` when the DAG genuinely
        forks or joins (more than one root->sink path).
        """
        if len(self._paths) != 1:
            raise ChainValidationError(
                f"{self.name}: {len(self._paths)} paths; only a "
                f"single-path DAG collapses to a linear chain"
            )
        path = self._paths[0]
        return EventChain(
            name=self.name,
            segments=[self.segments[s] for s in path.segment_names],
            period=self.period,
            budget_e2e=self.budget_e2e[path.sink],
            budget_seg=self.budget_seg,
            mk=self.mk[path.sink],
        )

    # ------------------------------------------------------------------
    # Deadlines
    # ------------------------------------------------------------------
    @property
    def deadlines_assigned(self) -> bool:
        """True once every segment has a monitored deadline."""
        return all(s.d_mon is not None for s in self.segments.values())

    def with_deadlines(self, d_mon_by_segment: Mapping[str, int]) -> "DagChain":
        """Return a copy with monitored deadlines (re)assigned."""
        missing = [s for s in self.segments if s not in d_mon_by_segment]
        if missing:
            raise ValueError(f"{self.name}: no deadline for {missing}")
        return DagChain(
            name=self.name,
            segments=[
                seg.with_deadline(d_mon_by_segment[name])
                for name, seg in self.segments.items()
            ],
            edges=list(self.edges),
            period=self.period,
            budget_e2e=dict(self.budget_e2e),
            budget_seg=self.budget_seg,
            mk=dict(self.mk),
        )

    def check_budgets(self) -> None:
        """Per-path Eq. (3)/(4): every path's deadline sum must fit its
        sink's budget and every deadline must fit B_seg.  Raises on
        violation."""
        for path in self._paths:
            self.path_chain(path).check_budget()

    def __len__(self) -> int:
        return len(self.segments)

    def __str__(self) -> str:
        return (
            f"DagChain({self.name}: {len(self.segments)} segments, "
            f"{len(self.edges)} edges, {len(self._paths)} paths, "
            f"P={self.period})"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return self.__str__()
