"""End-to-end chain supervision: outcomes, propagation and (m,k) verdicts.

Segment monitors report per-activation outcomes here.  An activation of
the chain is *violated* iff any of its segments ended in an unrecovered
(propagated) miss -- recovered exceptions do not count, which is exactly
why the propagation mechanism lets the chain-level (m,k) constraint be
reused for segment deadlines (Sec. III-B).

The runtime keeps an online sliding (m,k) window over chain executions
and exposes an ``on_violation`` callback for applications that must
react when the weakly-hard budget is exhausted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.chains import EventChain
from repro.core.exceptions import TemporalException
from repro.core.weakly_hard import MissWindow, max_window_misses


class Outcome(enum.Enum):
    """Per-segment, per-activation result."""

    #: End event occurred within the monitored deadline.
    OK = "ok"
    #: Temporal exception raised but the handler recovered.
    RECOVERED = "recovered"
    #: Temporal exception propagated -- an unrecovered miss.
    MISS = "miss"
    #: Activation consumed by an upstream propagated miss (the segment
    #: never executed; an error propagation event stood in for the start).
    SKIPPED = "skipped"


@dataclass
class SegmentRecord:
    """One segment's result for one activation."""

    outcome: Outcome
    #: Monitored segment latency (start -> end event or handled
    #: exception, whichever came first); None for SKIPPED.
    latency: Optional[int] = None
    #: Handler-entry delay past the nominal deadline (exceptions only).
    detection_latency: Optional[int] = None


@dataclass
class ActivationOutcome:
    """The chain-level result of one activation."""

    activation: int
    violated: bool
    segments: Dict[str, SegmentRecord] = field(default_factory=dict)


@dataclass
class ChainReport:
    """Aggregate verdict over a finished run."""

    chain_name: str
    activations: List[ActivationOutcome]
    misses: List[bool]
    mk_satisfied: bool
    max_window_misses: int
    ok_count: int
    recovered_count: int
    miss_count: int
    skipped_count: int

    @property
    def total(self) -> int:
        """Number of chain activations observed."""
        return len(self.activations)

    @property
    def miss_ratio(self) -> float:
        """Fraction of violated chain activations."""
        if not self.activations:
            return 0.0
        return sum(self.misses) / len(self.misses)


class ChainRuntime:
    """Collects monitor reports for one event chain."""

    def __init__(
        self,
        chain: EventChain,
        on_violation: Optional[Callable[[int, int], None]] = None,
        on_activation: Optional[Callable[[int, bool], None]] = None,
    ):
        self.chain = chain
        self.window = MissWindow(chain.mk)
        #: activation n -> segment name -> record
        self.records: Dict[int, Dict[str, SegmentRecord]] = {}
        self.exceptions: List[TemporalException] = []
        self.on_violation = on_violation
        #: Called as ``on_activation(n, violated)`` for every activation
        #: fed into the sliding window -- clean ones included, so
        #: supervisors can de-escalate after a clean streak.
        self.on_activation = on_activation
        self._finalized_through = -1
        self._known_violations: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Reporting (called by monitors)
    # ------------------------------------------------------------------
    def report(
        self,
        segment_name: str,
        activation: int,
        outcome: Outcome,
        latency: Optional[int] = None,
        detection_latency: Optional[int] = None,
    ) -> None:
        """Record one segment outcome for one activation."""
        per_segment = self.records.setdefault(activation, {})
        per_segment[segment_name] = SegmentRecord(
            outcome=outcome,
            latency=latency,
            detection_latency=detection_latency,
        )

    def report_exception(self, exception: TemporalException) -> None:
        """Archive a raised temporal exception (diagnostics)."""
        self.exceptions.append(exception)

    # ------------------------------------------------------------------
    # Online supervision
    # ------------------------------------------------------------------
    def advance_window(self, through_activation: int) -> None:
        """Feed completed activations up to *through_activation* into the
        sliding (m,k) window, firing ``on_violation`` as needed.

        Call this when earlier activations can no longer change (e.g.
        once the chain's sink has consumed later frames).
        """
        for n in range(self._finalized_through + 1, through_activation + 1):
            violated = self._activation_violated(n)
            self._known_violations[n] = violated
            if self.window.record(violated) and self.on_violation is not None:
                self.on_violation(n, self.window.misses_in_window)
            if self.on_activation is not None:
                self.on_activation(n, violated)
        self._finalized_through = max(self._finalized_through, through_activation)

    def _activation_violated(self, activation: int) -> bool:
        per_segment = self.records.get(activation, {})
        return any(
            record.outcome is Outcome.MISS for record in per_segment.values()
        )

    # ------------------------------------------------------------------
    # Offline verdicts
    # ------------------------------------------------------------------
    def finalize(self, through_activation: Optional[int] = None) -> ChainReport:
        """Compute the aggregate report over all observed activations."""
        if through_activation is None:
            through_activation = max(self.records, default=-1)
        activations: List[ActivationOutcome] = []
        misses: List[bool] = []
        counts = {outcome: 0 for outcome in Outcome}
        for n in range(through_activation + 1):
            per_segment = self.records.get(n, {})
            violated = any(
                record.outcome is Outcome.MISS for record in per_segment.values()
            )
            activations.append(
                ActivationOutcome(activation=n, violated=violated, segments=per_segment)
            )
            misses.append(violated)
            for record in per_segment.values():
                counts[record.outcome] += 1
        worst = max_window_misses(misses, self.chain.mk.k) if misses else 0
        return ChainReport(
            chain_name=self.chain.name,
            activations=activations,
            misses=misses,
            mk_satisfied=worst <= self.chain.mk.m,
            max_window_misses=worst,
            ok_count=counts[Outcome.OK],
            recovered_count=counts[Outcome.RECOVERED],
            miss_count=counts[Outcome.MISS],
            skipped_count=counts[Outcome.SKIPPED],
        )

    def segment_latencies(self, segment_name: str) -> List[int]:
        """All recorded monitored latencies of one segment, by activation."""
        out = []
        for n in sorted(self.records):
            record = self.records[n].get(segment_name)
            if record is not None and record.latency is not None:
                out.append(record.latency)
        return out

    def segment_outcomes(self, segment_name: str) -> List[Outcome]:
        """All recorded outcomes of one segment, by activation."""
        out = []
        for n in sorted(self.records):
            record = self.records[n].get(segment_name)
            if record is not None:
                out.append(record.outcome)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ChainRuntime {self.chain.name} activations={len(self.records)}>"
