"""Remote segment monitoring at the receiver (paper Sec. IV-B).

Two approaches are implemented:

:class:`InterArrivalMonitor`
    The DDS-style baseline: a timer re-armed on every arrival with the
    maximum allowed inter-arrival time.  The paper's Fig. 6 analysis
    shows why this cannot implement (m,k) monitoring for m > 0: the
    reference point is the *previous arrival*, so consecutive lateness
    accumulates undetected, and tight settings false-positive on benign
    jitter.  Suitable for liveliness, not latency.

:class:`SyncRemoteMonitor`
    The paper's synchronization-based approach: ECU clocks are
    PTP-synchronized, so the receiver can interpret the sender timestamp
    carried in each sample and program the deadline for sample n+1 at
    ``t_st,n + P + d_mon`` (pessimism bounded by arrival jitter + sync
    error, both folded into ``d_mon``).  On expiry the next deadline is
    simply the last one plus the period, so consecutive misses are each
    detected.  Late samples are discarded to preserve the constant-rate
    assumption; the handler may recover by issuing the receive event
    itself (Algorithm 1) or propagate an error event to the next local
    segment's monitor.

Timeout handling can execute in the **middleware** event thread (what
the paper measures in Fig. 12: 100 us .. 2 ms entry latency under load)
or be forwarded to the high-priority **monitor thread** (the paper's
proposed fix, Sec. V-B).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, Tuple

from repro.core.chain_runtime import ChainRuntime, Outcome
from repro.core.exceptions import (
    ExceptionContext,
    ExceptionHandler,
    PropagateAlways,
    TemporalException,
    handle_remote_exception,
)
from repro.core.local_monitor import LocalSegmentRuntime, MonitorThread
from repro.core.segments import Segment, SegmentKind
from repro.core.weakly_hard import MissWindow, MKConstraint
from repro.dds.reader import DataReader
from repro.dds.topic import Sample
from repro.sim.timers import Timer


class TimeoutContext(enum.Enum):
    """Where the timeout routine executes after the timer fires."""

    #: DDS event thread at middleware priority (paper Fig. 12 baseline).
    MIDDLEWARE = "middleware"
    #: Forwarded to the ECU's high-priority monitor thread (Sec. V-B).
    MONITOR_THREAD = "monitor_thread"


ActivationFn = Callable[[Sample], Optional[int]]


class SyncRemoteMonitor:
    """Synchronization-based monitoring of one remote segment.

    Parameters
    ----------
    segment:
        The remote segment (``d_mon`` must be assigned).
    reader:
        The DDS reader at which the segment's end (receive) events occur.
    period:
        Chain activation period P in ns.
    handler:
        Application exception policy (Algorithm 1).
    mk:
        Weakly-hard constraint for the handler's miss count m.
    context:
        Where timeout handling runs (middleware vs monitor thread).
    monitor_thread:
        Required for ``TimeoutContext.MONITOR_THREAD``.
    next_local:
        The subsequent local segment runtime(s) to which propagated
        exceptions send their error propagation event -- a single
        runtime, a sequence (a shared remote segment can feed several
        local segments, like the paper's classifier fan-out), or None
        for chain-terminal remote segments.
    activation_fn:
        Extracts activation index n from a sample (defaults to the
        writer sequence number).
    key:
        Instance key this monitor is responsible for (keyed topics --
        see :class:`KeyedSyncMonitorGroup`); stamped onto recovered
        samples.
    attach:
        Install the receive filter on the reader (default).  A
        :class:`KeyedSyncMonitorGroup` passes False and demultiplexes
        samples to its per-key monitors itself.
    """

    def __init__(
        self,
        segment: Segment,
        reader: DataReader,
        period: int,
        handler: Optional[ExceptionHandler] = None,
        mk: MKConstraint = MKConstraint(0, 1),
        context: TimeoutContext = TimeoutContext.MONITOR_THREAD,
        monitor_thread: Optional[MonitorThread] = None,
        next_local: Optional[LocalSegmentRuntime] = None,
        activation_fn: Optional[ActivationFn] = None,
        key: Optional[str] = None,
        attach: bool = True,
    ):
        if segment.kind is not SegmentKind.REMOTE:
            raise ValueError(f"{segment.name} is not a remote segment")
        if segment.d_mon is None:
            raise ValueError(f"{segment.name} has no monitored deadline assigned")
        if period <= 0:
            raise ValueError("period must be positive")
        if context is TimeoutContext.MONITOR_THREAD and monitor_thread is None:
            raise ValueError(
                "monitor_thread is required for TimeoutContext.MONITOR_THREAD"
            )
        self.segment = segment
        self.reader = reader
        self.period = int(period)
        self.handler = handler or PropagateAlways()
        self.window = MissWindow(mk)
        self.context = context
        self.monitor_thread = monitor_thread
        if next_local is None:
            self.next_local: List[LocalSegmentRuntime] = []
        elif isinstance(next_local, LocalSegmentRuntime):
            self.next_local = [next_local]
        else:
            self.next_local = list(next_local)
        self.activation_fn = activation_fn
        self.sim = reader.participant.sim
        self.ecu = reader.participant.ecu
        self._timer = Timer(
            self.sim, self._on_timer_expired, name=f"syncmon:{segment.name}"
        )
        #: Activation currently guarded by the timer (None before the
        #: first sample is observed).
        self.awaiting: Optional[int] = None
        #: Local-clock deadline for the awaited activation.
        self.deadline_local: Optional[int] = None
        self.last_good_data: Any = None
        # Measurements.
        self.latencies: List[Tuple[int, int, Outcome]] = []
        self.exceptions: List[TemporalException] = []
        self.entry_latency_samples: List[int] = []
        self.key = key
        self.late_discarded = 0
        self.reporters: List[ChainRuntime] = []
        #: Telemetry emission hooks (duck-typed, like ``reporters``; see
        #: :class:`repro.telemetry.emitter.MonitorTelemetrySink`).
        self.telemetry_sinks: List = []
        self._issuing = False
        if attach:
            reader.receive_filters.append(self._receive_filter)

    # ------------------------------------------------------------------
    def _activation_of(self, sample: Sample) -> int:
        if self.activation_fn is not None:
            n = self.activation_fn(sample)
            if n is not None:
                return n
        return sample.sequence_number

    # ------------------------------------------------------------------
    # Arrival path (runs in delivery context, zero simulated time)
    # ------------------------------------------------------------------
    def _receive_filter(self, sample: Sample) -> bool:
        if self._issuing:
            # Recovered data issued by this monitor itself: pass through
            # without re-booking.  Samples merely *marked* recovered by an
            # upstream segment's recovery still arrive over the transport
            # and are monitored like any other (they can be late).
            return True
        n = self._activation_of(sample)
        if self.awaiting is not None and n < self.awaiting:
            # Arrived after its exception: discard the receive event to
            # preserve the constant-rate assumption.
            self.late_discarded += 1
            self.sim.emit_trace(
                "syncmon.late_discarded", segment=self.segment.name, n=n
            )
            return False
        # Rare: a later sample overtakes an undetected missing one (only
        # possible when d_mon approaches P); treat the gap as misses.
        while self.awaiting is not None and n > self.awaiting:
            missed = self.awaiting
            nominal = self.deadline_local or self.ecu.now()
            self._advance_after(missed)
            self._dispatch_violation(missed, nominal)
        ts = sample.source_timestamp
        arrival_local = self.ecu.now()
        latency = arrival_local - ts
        self.window.record(False)
        self.latencies.append((n, latency, Outcome.OK))
        for runtime in self.reporters:
            runtime.report(self.segment.name, n, Outcome.OK, latency=latency)
        if self.telemetry_sinks:
            for sink in self.telemetry_sinks:
                sink.segment_event(
                    self.segment.name, n, Outcome.OK.value, latency,
                    arrival_local,
                )
        self.last_good_data = sample.data
        # Program the deadline for the *next* activation from the sender
        # timestamp (valid to within the PTP sync error).
        self.awaiting = n + 1
        self.deadline_local = ts + self.period + self.segment.d_mon
        self._timer.start_at(self._to_sim_time(self.deadline_local))
        self.sim.emit_trace(
            "syncmon.armed",
            segment=self.segment.name,
            n=self.awaiting,
            deadline=self.deadline_local,
        )
        return True

    def _to_sim_time(self, local_time: int) -> int:
        """Convert a local-clock instant to simulator time for the timer."""
        offset = self.ecu.now() - self.sim.now
        return max(self.sim.now, local_time - offset)

    # ------------------------------------------------------------------
    # Timeout path
    # ------------------------------------------------------------------
    def _on_timer_expired(self) -> None:
        # Kernel context (the hardware timer): mark the activation as
        # excepted immediately so late arrivals are discarded, re-arm for
        # the next period, then dispatch handling to the configured
        # context.
        assert self.awaiting is not None and self.deadline_local is not None
        missed = self.awaiting
        nominal = self.deadline_local
        self._advance_after(missed)
        self._dispatch_violation(missed, nominal)

    def _advance_after(self, missed: int) -> None:
        self.awaiting = missed + 1
        assert self.deadline_local is not None
        self.deadline_local = self.deadline_local + self.period
        self._timer.start_at(self._to_sim_time(self.deadline_local))

    def _dispatch_violation(self, n: int, nominal: int) -> None:
        # Ambient span context is lost through the deferred hop (the
        # middleware/monitor threads restore their own, empty, context),
        # so the anchor instant and causal parent travel explicitly.
        span_begin = None
        parent = None
        spans = self.sim.spans
        if spans is not None:
            span_begin = self.sim.now
            parent = spans.current
        if self.context is TimeoutContext.MIDDLEWARE:
            self.reader.participant.post_middleware_event(
                self._handle_violation, n, nominal, span_begin, parent
            )
        else:
            assert self.monitor_thread is not None
            self.monitor_thread.forward(
                lambda: self._handle_violation(n, nominal, span_begin, parent)
            )

    def _handle_violation(
        self,
        n: int,
        nominal: int,
        span_begin: Optional[int] = None,
        parent: Any = None,
    ) -> None:
        """Algorithm 1, executed in the configured timeout context."""
        entered_at = self.ecu.now()
        self.entry_latency_samples.append(entered_at - nominal)
        exception = TemporalException(
            segment=self.segment,
            activation=n,
            deadline=nominal,
            raised_at=entered_at,
        )
        self.exceptions.append(exception)
        context = ExceptionContext(
            exception=exception,
            misses=self.window.misses_in_window + 1,
            last_good_data=self.last_good_data,
        )
        spans = self.sim.spans
        exc_span = None
        if spans is not None:
            # Spans the timer expiry -> end of handling, so the critical
            # path of a recovered activation charges detection + handler
            # time to the "exception" category.
            exc_span = spans.begin(
                f"syncmon.exception:{self.segment.name}",
                "exception",
                parent=parent if parent is not None else spans.current,
                start=span_begin,
                segment=self.segment.name,
                n=n,
            )
            prev_ctx = spans.current
            spans.current = exc_span.context
        recovered = handle_remote_exception(
            self.handler,
            context,
            issue_receive=lambda data: self._issue_receive(n, data),
            propagate_exception=lambda: self._propagate(n),
        )
        if exc_span is not None:
            spans.current = prev_ctx
            exc_span.attrs["recovered"] = recovered
            exc_span.attrs["entry_latency"] = entered_at - nominal
            spans.end(exc_span)
        self.window.record(not recovered)
        outcome = Outcome.RECOVERED if recovered else Outcome.MISS
        start_ts = nominal - self.segment.d_mon  # the nominal start instant
        self.latencies.append((n, entered_at - start_ts, outcome))
        for runtime in self.reporters:
            runtime.report(
                self.segment.name,
                n,
                outcome,
                latency=entered_at - start_ts,
                detection_latency=entered_at - nominal,
            )
            runtime.report_exception(exception)
        if self.telemetry_sinks:
            for sink in self.telemetry_sinks:
                sink.segment_event(
                    self.segment.name, n, outcome.value,
                    entered_at - start_ts, entered_at,
                )
                sink.exception_event(
                    self.segment.name, n, entered_at - nominal, entered_at
                )
        self.sim.emit_trace(
            "syncmon.exception",
            segment=self.segment.name,
            n=n,
            recovered=recovered,
            entry_latency=entered_at - nominal,
        )

    def _issue_receive(self, n: int, data: Any) -> None:
        sample = Sample(
            topic=self.reader.topic,
            data=data,
            source_timestamp=self.ecu.now(),
            sequence_number=n,
            key=self.key,
            recovered=True,
        )
        self._issuing = True
        try:
            self.reader.issue_receive(sample)
        finally:
            self._issuing = False

    def _propagate(self, n: int) -> None:
        for runtime in self.next_local:
            runtime.post_error_propagation(n)

    @property
    def armed(self) -> bool:
        """True while the timeout timer is pending."""
        return self._timer.armed

    def arm(self, activation: int, deadline_local: int) -> None:
        """Externally (re)arm the timeout for *activation*.

        The monitor normally arms itself from the sender timestamp of
        each arriving sample, which leaves a cold-start gap: a sensor
        that is silent from the very first activation never arms the
        timer and is never detected.  A watchdog (see
        :class:`repro.faults.degradation.MonitorWatchdog`) closes the
        gap by calling this with a local-clock deadline of its choosing.
        """
        self.awaiting = activation
        self.deadline_local = deadline_local
        self._timer.start_at(self._to_sim_time(deadline_local))
        self.sim.emit_trace(
            "syncmon.rearmed",
            segment=self.segment.name,
            n=activation,
            deadline=deadline_local,
        )

    def stop(self) -> None:
        """Disarm the monitor's timer (end of experiment)."""
        self._timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SyncRemoteMonitor {self.segment.name} awaiting={self.awaiting}>"


KeyFn = Callable[[Sample], Optional[str]]


class KeyedSyncMonitorGroup:
    """One synchronization-based monitor per DDS instance key.

    The paper (Sec. IV-B2): "for multiple communication partners on the
    same topic, multiple monitors have to be instantiated, and
    differentiated based on delivered DDS topic keys".  This group
    installs a single receive filter on the reader and demultiplexes
    samples to lazily created per-key :class:`SyncRemoteMonitor`
    instances that share all configuration.

    Parameters mirror :class:`SyncRemoteMonitor`; ``key_fn`` extracts
    the instance key (defaults to ``sample.key``, falling back to the
    writer GUID so unkeyed multi-writer topics still demux correctly).
    """

    def __init__(
        self,
        segment: Segment,
        reader: DataReader,
        period: int,
        handler: Optional[ExceptionHandler] = None,
        mk: MKConstraint = MKConstraint(0, 1),
        context: TimeoutContext = TimeoutContext.MONITOR_THREAD,
        monitor_thread: Optional[MonitorThread] = None,
        next_local: Optional[LocalSegmentRuntime] = None,
        activation_fn: Optional[ActivationFn] = None,
        key_fn: Optional[KeyFn] = None,
    ):
        self.base_segment = segment
        self.reader = reader
        self.period = period
        self.handler = handler
        self.mk = mk
        self.context = context
        self.monitor_thread = monitor_thread
        self.next_local = next_local
        self.activation_fn = activation_fn
        self.key_fn = key_fn or self._default_key
        self.monitors: dict = {}
        reader.receive_filters.append(self._receive_filter)

    @staticmethod
    def _default_key(sample: Sample) -> Optional[str]:
        if sample.key is not None:
            return sample.key
        return sample.writer_id or None

    def monitor_for(self, key: Optional[str]) -> SyncRemoteMonitor:
        """Return (creating on first use) the monitor of *key*."""
        monitor = self.monitors.get(key)
        if monitor is None:
            named = Segment(
                name=f"{self.base_segment.name}[{key}]",
                kind=self.base_segment.kind,
                start=self.base_segment.start,
                end=self.base_segment.end,
                d_mon=self.base_segment.d_mon,
                d_ex=self.base_segment.d_ex,
            )
            monitor = SyncRemoteMonitor(
                named,
                self.reader,
                period=self.period,
                handler=self.handler,
                mk=self.mk,
                context=self.context,
                monitor_thread=self.monitor_thread,
                next_local=self.next_local,
                activation_fn=self.activation_fn,
                key=key,
                attach=False,
            )
            self.monitors[key] = monitor
        return monitor

    def _receive_filter(self, sample: Sample) -> bool:
        return self.monitor_for(self.key_fn(sample))._receive_filter(sample)

    def stop(self) -> None:
        """Disarm every per-key monitor."""
        for monitor in self.monitors.values():
            monitor.stop()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<KeyedSyncMonitorGroup {self.base_segment.name} "
            f"keys={sorted(map(str, self.monitors))}>"
        )


class InterArrivalMonitor:
    """Inter-arrival monitoring (the DDS deadline-QoS baseline).

    A timer is (re)armed at every arrival with ``t_max_ia``, the maximum
    allowed time between consecutive end events.  Expiry raises a
    violation *not attributable to a specific activation* -- the core
    deficiency the paper identifies: only suitable for m = 0, blind to
    consecutive lateness that stays under ``t_max_ia`` per hop even as
    absolute latency grows without bound.
    """

    def __init__(
        self,
        reader: DataReader,
        t_max_ia: int,
        context: TimeoutContext = TimeoutContext.MIDDLEWARE,
        monitor_thread: Optional[MonitorThread] = None,
        rearm_on_expiry: bool = False,
    ):
        if t_max_ia <= 0:
            raise ValueError("t_max_ia must be positive")
        if context is TimeoutContext.MONITOR_THREAD and monitor_thread is None:
            raise ValueError(
                "monitor_thread is required for TimeoutContext.MONITOR_THREAD"
            )
        self.reader = reader
        self.t_max_ia = int(t_max_ia)
        self.context = context
        self.monitor_thread = monitor_thread
        self.rearm_on_expiry = rearm_on_expiry
        self.sim = reader.participant.sim
        self.ecu = reader.participant.ecu
        self._timer = Timer(
            self.sim, self._on_timer_expired, name=f"iamon:{reader.guid}"
        )
        self.arrivals: List[int] = []
        #: (expiry_local_time, handler_entry_local_time) pairs.
        self.detections: List[Tuple[int, int]] = []
        self.on_violation: Optional[Callable[[int], None]] = None
        reader.on_receive_hooks.append(self._on_arrival)

    def _on_arrival(self, sample: Sample) -> None:
        now_local = self.ecu.now()
        self.arrivals.append(now_local)
        self._timer.start(self.t_max_ia)

    def _on_timer_expired(self) -> None:
        nominal = self.ecu.now()
        if self.rearm_on_expiry:
            self._timer.start(self.t_max_ia)
        if self.context is TimeoutContext.MIDDLEWARE:
            self.reader.participant.post_middleware_event(
                self._handle_violation, nominal
            )
        else:
            assert self.monitor_thread is not None
            self.monitor_thread.forward(lambda: self._handle_violation(nominal))

    def _handle_violation(self, nominal: int) -> None:
        entered_at = self.ecu.now()
        self.detections.append((nominal, entered_at))
        self.sim.emit_trace(
            "iamon.violation", reader=self.reader.guid, nominal=nominal
        )
        if self.on_violation is not None:
            self.on_violation(nominal)

    def stop(self) -> None:
        """Disarm the monitor's timer."""
        self._timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<InterArrivalMonitor {self.reader.guid} t_max={self.t_max_ia}>"
