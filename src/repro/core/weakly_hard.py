"""Weakly-hard (m,k) constraints and sliding-window miss accounting.

An (m,k) constraint (Bernat/Burns/Llamosi) tolerates at most ``m``
deadline misses within *any* ``k`` consecutive executions.  The paper
applies it to end-to-end chain executions and -- thanks to miss
propagation -- reuses the same (m,k) for individual segment deadlines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Sequence, Tuple, Union


@dataclass(frozen=True)
class MKConstraint:
    """At most *m* misses in any *k* consecutive executions."""

    m: int
    k: int

    def __post_init__(self) -> None:
        if not isinstance(self.m, int) or not isinstance(self.k, int):
            raise ValueError(
                f"(m, k) must be integers, got m={self.m!r}, k={self.k!r}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got k={self.k}")
        if not (0 <= self.m <= self.k):
            raise ValueError(
                f"need 0 <= m <= k, got (m, k) = ({self.m}, {self.k})"
            )

    @property
    def hard(self) -> bool:
        """True when the constraint is a hard deadline (m == 0)."""
        return self.m == 0

    def satisfied_by(self, misses: Sequence[bool]) -> bool:
        """Check a whole outcome sequence against the constraint."""
        return satisfies_mk(misses, self.m, self.k)

    def __str__(self) -> str:
        return f"({self.m},{self.k})"


class MissWindow:
    """Online sliding window of the last k outcomes.

    Feed outcomes with :meth:`record`; the window reports the current
    miss count and whether the constraint has been violated at any point
    so far.

    Accepts a validated :class:`MKConstraint` or a plain ``(m, k)``
    tuple, which is validated on construction -- a degenerate window
    (``k < 1`` or ``m`` outside ``[0, k]``) raises ``ValueError``
    immediately instead of silently mis-counting later.
    """

    def __init__(self, constraint: Union[MKConstraint, Tuple[int, int]]):
        if isinstance(constraint, tuple):
            constraint = MKConstraint(*constraint)
        if not isinstance(constraint, MKConstraint):
            raise ValueError(
                "MissWindow needs an MKConstraint or an (m, k) tuple, "
                f"got {constraint!r}"
            )
        self.constraint = constraint
        self._window: Deque[bool] = deque(maxlen=constraint.k)
        self._misses_in_window = 0
        self.total = 0
        self.total_misses = 0
        self.violations = 0
        #: Activation indices (0-based, counting records) of violations.
        self.violation_indices: List[int] = []

    @property
    def misses_in_window(self) -> int:
        """Miss count within the current window."""
        return self._misses_in_window

    @property
    def violated(self) -> bool:
        """True if the constraint was ever violated."""
        return self.violations > 0

    def record(self, miss: bool) -> bool:
        """Record one outcome; return True if the window now violates.

        A violation is counted at every position where the window
        contains more than m misses.
        """
        if (
            len(self._window) == self.constraint.k
            and self._window[0]
        ):
            self._misses_in_window -= 1
        self._window.append(miss)
        if miss:
            self._misses_in_window += 1
            self.total_misses += 1
        self.total += 1
        if self._misses_in_window > self.constraint.m:
            self.violations += 1
            self.violation_indices.append(self.total - 1)
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MissWindow {self.constraint} misses={self._misses_in_window} "
            f"total={self.total_misses}/{self.total}>"
        )


def max_window_misses(misses: Sequence[bool], k: int) -> int:
    """Maximum number of misses in any window of k consecutive outcomes.

    Windows shorter than k (at the trace tail) are also considered --
    they cannot exceed a full window's count, so this equals the classic
    sliding-window maximum.  O(n).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got k={k}")
    best = 0
    current = 0
    window: Deque[bool] = deque()
    for miss in misses:
        window.append(miss)
        if miss:
            current += 1
        if len(window) > k:
            if window.popleft():
                current -= 1
        if current > best:
            best = current
    return best


def satisfies_mk(misses: Sequence[bool], m: int, k: int) -> bool:
    """True iff no window of k consecutive outcomes has more than m misses."""
    if m < 0:
        raise ValueError(f"m must be non-negative, got m={m}")
    return max_window_misses(misses, k) <= m


def miss_indices(misses: Iterable[bool]) -> List[int]:
    """Indices of missed executions (diagnostics helper)."""
    return [i for i, miss in enumerate(misses) if miss]


def max_consecutive_misses(misses: Iterable[bool]) -> int:
    """Length of the longest run of consecutive misses."""
    best = 0
    current = 0
    for miss in misses:
        if miss:
            current += 1
            if current > best:
                best = current
        else:
            current = 0
    return best


@dataclass(frozen=True)
class ConsecutiveMissConstraint:
    """Bernat et al.'s <m,k> variant: never more than *m* consecutive
    misses (within any k consecutive executions; for m < k the window
    is immaterial, so only *m* is needed here).

    The paper uses the any-m-in-k (m,k) form, but consecutive-miss
    constraints are the other common weakly-hard type for control loops
    whose stability tolerates isolated but not back-to-back misses.
    """

    m: int

    def __post_init__(self) -> None:
        if self.m < 0:
            raise ValueError("m must be non-negative")

    def satisfied_by(self, misses: Sequence[bool]) -> bool:
        """Check a whole outcome sequence against the constraint."""
        return max_consecutive_misses(misses) <= self.m

    def __str__(self) -> str:
        return f"<={self.m} consecutive"


class ConsecutiveMissWindow:
    """Online checker for :class:`ConsecutiveMissConstraint`."""

    def __init__(self, constraint: ConsecutiveMissConstraint):
        self.constraint = constraint
        self.current_run = 0
        self.longest_run = 0
        self.violations = 0
        self.total = 0

    @property
    def violated(self) -> bool:
        """True if the constraint was ever violated."""
        return self.violations > 0

    def record(self, miss: bool) -> bool:
        """Record one outcome; True if the run limit is now exceeded."""
        self.total += 1
        if miss:
            self.current_run += 1
            if self.current_run > self.longest_run:
                self.longest_run = self.current_run
            if self.current_run > self.constraint.m:
                self.violations += 1
                return True
        else:
            self.current_run = 0
        return False
