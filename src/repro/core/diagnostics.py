"""System-level diagnostics over monitor reports (paper Sec. III-B).

Temporal exceptions "are then handled by the application itself or by a
system-level entity to perform further diagnostics or take appropriate
countermeasures".  This module provides that entity: a
:class:`HealthSupervisor` consuming segment outcomes and maintaining a
per-segment health state with hysteresis:

- ``OK``        -- recent miss ratio below the degraded threshold,
- ``DEGRADED``  -- miss ratio above it (exceptions recur),
- ``FAILED``    -- a run of consecutive misses exceeded the failure
  limit (the segment is effectively down -- e.g. a silent sensor),

plus chain-level verdicts and a renderable health report.  State-change
callbacks let applications escalate (degrade the driving function, fall
back to a safe state) exactly where the paper leaves the reaction open.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.core.chain_runtime import Outcome


class Health(enum.Enum):
    """Health state of a monitored segment."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass
class HealthPolicy:
    """Thresholds governing state transitions.

    ``window`` outcomes are kept per segment; the state degrades when
    the windowed miss ratio exceeds ``degraded_ratio`` and fails after
    ``failed_consecutive`` back-to-back misses.  Recovery to OK needs
    ``recover_clean`` consecutive clean outcomes (hysteresis, so health
    does not flap on isolated events).
    """

    window: int = 20
    degraded_ratio: float = 0.2
    failed_consecutive: int = 3
    recover_clean: int = 10

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not (0 < self.degraded_ratio <= 1):
            raise ValueError("degraded_ratio must be in (0, 1]")
        if self.failed_consecutive < 1:
            raise ValueError("failed_consecutive must be >= 1")
        if self.recover_clean < 1:
            raise ValueError("recover_clean must be >= 1")


@dataclass
class _SegmentHealth:
    state: Health = Health.OK
    outcomes: Deque[bool] = field(default_factory=deque)  # True = miss
    consecutive_misses: int = 0
    consecutive_clean: int = 0
    transitions: List = field(default_factory=list)


StateChangeFn = Callable[[str, Health, Health], None]


class HealthSupervisor:
    """Aggregates monitor outcomes into segment/system health."""

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        on_state_change: Optional[StateChangeFn] = None,
    ):
        self.policy = policy or HealthPolicy()
        self.on_state_change = on_state_change
        self._segments: Dict[str, _SegmentHealth] = {}

    # ------------------------------------------------------------------
    def observe(self, segment_name: str, outcome: Outcome) -> Health:
        """Feed one outcome; returns the segment's (possibly new) state.

        RECOVERED counts as clean for health purposes (the data path
        stayed alive); MISS and SKIPPED count as misses.
        """
        health = self._segments.setdefault(segment_name, _SegmentHealth())
        miss = outcome in (Outcome.MISS, Outcome.SKIPPED)
        health.outcomes.append(miss)
        while len(health.outcomes) > self.policy.window:
            health.outcomes.popleft()
        if miss:
            health.consecutive_misses += 1
            health.consecutive_clean = 0
        else:
            health.consecutive_misses = 0
            health.consecutive_clean += 1
        self._transition(segment_name, health)
        return health.state

    def attach(self, runtime) -> None:
        """Mirror a :class:`LocalSegmentRuntime`/monitor into this
        supervisor by appending a reporting shim to its reporters."""
        supervisor = self

        class _Shim:
            def report(self, segment_name, activation, outcome, **_kw):
                supervisor.observe(segment_name, outcome)

            def report_exception(self, exception):
                pass

        runtime.reporters.append(_Shim())

    # ------------------------------------------------------------------
    def _transition(self, name: str, health: _SegmentHealth) -> None:
        old = health.state
        new = old
        if health.consecutive_misses >= self.policy.failed_consecutive:
            new = Health.FAILED
        elif old is Health.FAILED:
            if health.consecutive_clean >= self.policy.recover_clean:
                new = Health.OK
        else:
            ratio = (
                sum(health.outcomes) / len(health.outcomes)
                if health.outcomes
                else 0.0
            )
            if ratio > self.policy.degraded_ratio:
                new = Health.DEGRADED
            elif old is Health.DEGRADED:
                if health.consecutive_clean >= self.policy.recover_clean:
                    new = Health.OK
        if new is not old:
            health.state = new
            health.transitions.append((old, new, len(health.outcomes)))
            if self.on_state_change is not None:
                self.on_state_change(name, old, new)

    # ------------------------------------------------------------------
    def state_of(self, segment_name: str) -> Health:
        """Current health of one segment (OK if never observed)."""
        health = self._segments.get(segment_name)
        return health.state if health else Health.OK

    @property
    def system_health(self) -> Health:
        """Worst health across all observed segments."""
        order = {Health.OK: 0, Health.DEGRADED: 1, Health.FAILED: 2}
        worst = Health.OK
        for health in self._segments.values():
            if order[health.state] > order[worst]:
                worst = health.state
        return worst

    def report(self) -> str:
        """Human-readable health table."""
        lines = [f"system health: {self.system_health.value.upper()}"]
        for name in sorted(self._segments):
            health = self._segments[name]
            ratio = (
                sum(health.outcomes) / len(health.outcomes)
                if health.outcomes
                else 0.0
            )
            lines.append(
                f"  {name:16s} {health.state.value:9s} "
                f"miss_ratio={ratio:.2f} "
                f"consecutive={health.consecutive_misses} "
                f"transitions={len(health.transitions)}"
            )
        return "\n".join(lines)
