"""Temporal exceptions and application-level handling.

A temporal exception is raised when a segment's end event does not occur
within ``d_mon`` of its start event.  Handling happens at *application
level* -- only the application can decide whether a late segment is a
fault -- through a user-provided :class:`ExceptionHandler` whose
``user_exception(context)`` either returns substitute data (recovery) or
``None`` (propagation).  The two dispatch routines below are literal
renditions of the paper's Algorithm 1 (remote) and Algorithm 2 (local):
both call the user handler; the remote path issues a receive event with
recovered data, the local path publishes it; otherwise the violation
propagates to the next segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.segments import Segment


@dataclass
class TemporalException:
    """A detected segment deadline violation."""

    segment: Segment
    #: Activation index n of the missed execution.
    activation: int
    #: Local time at which the monitored deadline nominally expired.
    deadline: int
    #: Local time at which the exception handler was entered.
    raised_at: int

    @property
    def detection_latency(self) -> int:
        """Delay from nominal deadline expiry to handler entry (ns).

        This is the quantity reported in the paper's Figs. 10 and 12.
        """
        return self.raised_at - self.deadline


@dataclass
class ExceptionContext:
    """Information passed to the user exception handler.

    ``misses`` is the argument *m* of Algorithms 1/2: the number of
    misses within the last k executions, so handlers can recover more
    aggressively as the (m,k) budget depletes.
    """

    exception: TemporalException
    misses: int
    #: Input data of the *current* activation, if available (e.g. the
    #: front-lidar cloud when the rear lidar is the one running late --
    #: the recovery source in the paper's Fig. 3 example).
    start_data: Any = None
    #: Data of the previous successful activation, if any (a common
    #: recovery source: re-send last known-good data).
    last_good_data: Any = None


class ExceptionHandler:
    """Application-specific exception handling policy.

    Subclass and override :meth:`user_exception`; return substitute data
    to recover, ``None`` to propagate.
    """

    def user_exception(self, context: ExceptionContext) -> Optional[Any]:
        """Decide recovery (return data) vs propagation (return None)."""
        return None

    #: CPU work (ns) the handler consumes on the monitor thread; its
    #: worst case must be covered by the segment's ``d_ex``.
    cost_ns: int = 20_000


class PropagateAlways(ExceptionHandler):
    """Never recover -- every temporal exception becomes a miss."""

    def user_exception(self, context: ExceptionContext) -> Optional[Any]:
        return None


class RecoverAlways(ExceptionHandler):
    """Always recover using a data factory (e.g. last good sample)."""

    def __init__(self, data_factory: Callable[[ExceptionContext], Any], cost_ns: int = 20_000):
        self.data_factory = data_factory
        self.cost_ns = cost_ns

    def user_exception(self, context: ExceptionContext) -> Optional[Any]:
        return self.data_factory(context)


class RecoverUpTo(ExceptionHandler):
    """Recover only while the current miss pressure is below a threshold.

    Mirrors the paper's narrative that the handler receives the current
    miss count m and may stop recovering (e.g. front-lidar-only point
    clouds are acceptable occasionally but not persistently).
    """

    def __init__(
        self,
        max_misses: int,
        data_factory: Callable[[ExceptionContext], Any],
        cost_ns: int = 20_000,
    ):
        self.max_misses = max_misses
        self.data_factory = data_factory
        self.cost_ns = cost_ns

    def user_exception(self, context: ExceptionContext) -> Optional[Any]:
        if context.misses <= self.max_misses:
            return self.data_factory(context)
        return None


def handle_remote_exception(
    handler: ExceptionHandler,
    context: ExceptionContext,
    issue_receive: Callable[[Any], None],
    propagate_exception: Callable[[], None],
) -> bool:
    """Paper Algorithm 1: remote segment exception handling.

    Returns True on recovery (does not count as a miss), False on
    propagation (counts as a miss).
    """
    data = handler.user_exception(context)
    if data is not None:
        issue_receive(data)
        return True
    propagate_exception()
    return False


def handle_local_exception(
    handler: ExceptionHandler,
    context: ExceptionContext,
    publish: Callable[[Any], None],
) -> bool:
    """Paper Algorithm 2: local segment exception handling.

    Returns True on recovery, False on propagation.  Propagation needs
    no action: omitting the publication lets the next remote segment's
    monitor detect the missing message after its own timeout.
    """
    data = handler.user_exception(context)
    if data is not None:
        publish(data)
        return True
    return False
