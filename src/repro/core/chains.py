"""Event chains: gap-free sequences of segments with performance bounds.

An event chain carries (Sec. III):

- a period ``P`` (from the throughput requirement),
- a per-segment latency bound ``B_seg`` (concurrent segments must each
  keep up with the frame rate),
- an end-to-end budget ``B_e2e`` that must dominate the sum of segment
  deadlines (Eq. 1 / Eq. 3),
- a weakly-hard (m,k) constraint on chain executions.

Validation enforces the gap-free property ``e_e^{s_i} = e_st^{s_{i+1}}``
-- the paper's central argument against stitched-together local
monitoring is precisely that naive segmentations leave unmonitored gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.segments import Segment
from repro.core.weakly_hard import MKConstraint


class ChainValidationError(ValueError):
    """Raised when a chain's structure violates the system model."""


@dataclass
class EventChain:
    """A monitored end-to-end event chain.

    Parameters
    ----------
    name:
        Chain identifier, e.g. ``"front_lidar_chain"``.
    segments:
        Ordered segments; consecutive boundaries must coincide exactly.
    period:
        Activation period P in ns.
    budget_e2e:
        End-to-end latency budget ``B_e2e`` in ns.
    budget_seg:
        Per-segment bound ``B_seg`` in ns (defaults to the period,
        the tightest throughput-preserving choice).
    mk:
        Weakly-hard constraint on chain executions.
    """

    name: str
    segments: List[Segment]
    period: int
    budget_e2e: int
    budget_seg: Optional[int] = None
    mk: MKConstraint = field(default_factory=lambda: MKConstraint(0, 1))

    def __post_init__(self) -> None:
        if not self.segments:
            raise ChainValidationError(f"{self.name}: chain needs >= 1 segment")
        if self.period <= 0:
            raise ChainValidationError(f"{self.name}: period must be positive")
        if self.budget_e2e <= 0:
            raise ChainValidationError(f"{self.name}: budget must be positive")
        if self.budget_seg is None:
            self.budget_seg = self.period
        for earlier, later in zip(self.segments, self.segments[1:]):
            if earlier.end != later.start:
                raise ChainValidationError(
                    f"{self.name}: unmonitored gap between "
                    f"{earlier.name} (ends {earlier.end}) and "
                    f"{later.name} (starts {later.start})"
                )

    def __iter__(self):
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"{self.name} has no segment {name!r}")

    def index_of(self, name: str) -> int:
        """Position of the named segment within the chain."""
        for i, seg in enumerate(self.segments):
            if seg.name == name:
                return i
        raise KeyError(f"{self.name} has no segment {name!r}")

    @property
    def deadlines_assigned(self) -> bool:
        """True once every segment has a monitored deadline."""
        return all(seg.d_mon is not None for seg in self.segments)

    def deadline_sum(self) -> int:
        """Sum of total segment deadlines (Eq. 1's right-hand side)."""
        total = 0
        for seg in self.segments:
            if seg.deadline is None:
                raise ChainValidationError(
                    f"{self.name}: segment {seg.name} has no deadline assigned"
                )
            total += seg.deadline
        return total

    def check_budget(self) -> None:
        """Enforce Eq. (1)/(3): ``B_e2e >= sum(d^si)`` and Eq. (4):
        every deadline within ``B_seg``.  Raises on violation."""
        total = self.deadline_sum()
        if total > self.budget_e2e:
            raise ChainValidationError(
                f"{self.name}: deadline sum {total} exceeds budget "
                f"B_e2e={self.budget_e2e}"
            )
        for seg in self.segments:
            assert seg.deadline is not None
            if seg.deadline > self.budget_seg:
                raise ChainValidationError(
                    f"{self.name}: segment {seg.name} deadline {seg.deadline} "
                    f"exceeds B_seg={self.budget_seg}"
                )

    def with_deadlines(self, d_mon_by_segment: Sequence[int]) -> "EventChain":
        """Return a copy of the chain with monitored deadlines assigned."""
        if len(d_mon_by_segment) != len(self.segments):
            raise ValueError(
                f"expected {len(self.segments)} deadlines, "
                f"got {len(d_mon_by_segment)}"
            )
        return EventChain(
            name=self.name,
            segments=[
                seg.with_deadline(d_mon)
                for seg, d_mon in zip(self.segments, d_mon_by_segment)
            ],
            period=self.period,
            budget_e2e=self.budget_e2e,
            budget_seg=self.budget_seg,
            mk=self.mk,
        )

    def __str__(self) -> str:
        path = " -> ".join(seg.name for seg in self.segments)
        return f"EventChain({self.name}: {path}, P={self.period}, {self.mk})"
