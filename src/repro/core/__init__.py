"""The paper's contribution: online latency monitoring of event chains.

Model (Sec. III-A)
    :mod:`~repro.core.events`, :mod:`~repro.core.segments`,
    :mod:`~repro.core.chains` -- event chains as gap-free alternating
    sequences of local and remote segments delimited by communication
    events, with latency budget ``B_e2e``, throughput bound ``B_seg`` and
    a weakly-hard (m,k) constraint (:mod:`~repro.core.weakly_hard`).

Mechanisms (Sec. III-B, IV)
    :mod:`~repro.core.exceptions` -- temporal exceptions and the
    recovery/propagation algorithms (paper Algorithms 1 and 2).
    :mod:`~repro.core.local_monitor` -- the high-priority monitor thread
    fed by ring buffers and a semaphore, monitoring local segments.
    :mod:`~repro.core.remote_monitor` -- receiver-side monitoring of
    remote segments: the synchronization-based approach (proposed) and
    the inter-arrival approach (DDS deadline baseline).
    :mod:`~repro.core.chain_runtime` -- end-to-end supervision: per
    activation outcomes, miss propagation and (m,k) verdicts.
"""

from repro.core.events import EventKind, EventPoint
from repro.core.weakly_hard import (
    MKConstraint,
    MissWindow,
    max_window_misses,
    satisfies_mk,
)
from repro.core.segments import Segment, SegmentKind
from repro.core.chains import EventChain
from repro.core.exceptions import (
    ExceptionContext,
    ExceptionHandler,
    PropagateAlways,
    RecoverAlways,
    RecoverUpTo,
    TemporalException,
)
from repro.core.local_monitor import LocalSegmentRuntime, MonitorThread, SkipGate
from repro.core.remote_monitor import (
    InterArrivalMonitor,
    KeyedSyncMonitorGroup,
    SyncRemoteMonitor,
    TimeoutContext,
)
from repro.core.chain_runtime import ActivationOutcome, ChainRuntime, Outcome
from repro.core.dag import DagChain, DagPath
from repro.core.dag_runtime import DagChainRuntime

__all__ = [
    "EventKind",
    "EventPoint",
    "MKConstraint",
    "MissWindow",
    "max_window_misses",
    "satisfies_mk",
    "Segment",
    "SegmentKind",
    "EventChain",
    "ExceptionContext",
    "ExceptionHandler",
    "PropagateAlways",
    "RecoverAlways",
    "RecoverUpTo",
    "TemporalException",
    "LocalSegmentRuntime",
    "MonitorThread",
    "SkipGate",
    "InterArrivalMonitor",
    "KeyedSyncMonitorGroup",
    "SyncRemoteMonitor",
    "TimeoutContext",
    "ActivationOutcome",
    "ChainRuntime",
    "Outcome",
    "DagChain",
    "DagPath",
    "DagChainRuntime",
]
