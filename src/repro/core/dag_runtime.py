"""Per-path (m,k) supervision of DAG event chains.

A :class:`DagChainRuntime` is the DAG analogue of
:class:`~repro.core.chain_runtime.ChainRuntime`: segment monitors report
per-activation outcomes, and the runtime folds them into one weakly-hard
verdict *per root->sink path*.  Path windows are tracked by the
bit-packed :class:`~repro.telemetry.automata.MKAutomaton` (O(1) memory
per path) keyed by path id -- the same automaton the fleet store uses,
whose record-for-record equivalence to
:class:`~repro.core.weakly_hard.MissWindow` is proven by property tests.

Reports route two ways:

- :meth:`report` mirrors the ``ChainRuntime`` reporter contract
  (``report(segment, n, outcome, ...)``): a segment outcome lands on
  every path containing that segment, so existing monitors plug in
  unchanged.
- :meth:`report_path` addresses one path explicitly -- used by
  end-to-end path monitors whose verdict already incorporates which
  sink deadline applies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.chain_runtime import (
    ActivationOutcome,
    ChainReport,
    Outcome,
    SegmentRecord,
)
from repro.core.dag import DagChain, DagPath
from repro.core.exceptions import TemporalException
from repro.core.weakly_hard import max_window_misses
from repro.telemetry.automata import MKAutomaton


class DagChainRuntime:
    """Collects monitor reports for one DAG and judges each path."""

    def __init__(
        self,
        dag: DagChain,
        on_violation: Optional[Callable[[str, int, int], None]] = None,
    ):
        self.dag = dag
        self.paths: List[DagPath] = dag.paths()
        #: path id -> bit-packed online (m,k) checker.
        self.automata: Dict[str, MKAutomaton] = {
            p.path_id: MKAutomaton(dag.mk[p.sink]) for p in self.paths
        }
        #: path id -> activation -> segment name -> record.
        self.records: Dict[str, Dict[int, Dict[str, SegmentRecord]]] = {
            p.path_id: {} for p in self.paths
        }
        #: segment name -> path ids containing it.
        self.membership: Dict[str, List[str]] = {s: [] for s in dag.segments}
        for path in self.paths:
            for name in path.segment_names:
                self.membership[name].append(path.path_id)
        self.exceptions: List[TemporalException] = []
        #: Called as ``on_violation(path_id, activation, window_misses)``.
        self.on_violation = on_violation
        self._finalized_through: Dict[str, int] = {
            p.path_id: -1 for p in self.paths
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(
        self,
        segment_name: str,
        activation: int,
        outcome: Outcome,
        latency: Optional[int] = None,
        detection_latency: Optional[int] = None,
    ) -> None:
        """Record a segment outcome on every path through the segment.

        Raises :class:`KeyError` for a segment name not in the DAG
        (mirroring :meth:`report_path`) -- a misspelled monitor name
        must not silently drop its outcomes.
        """
        if segment_name not in self.membership:
            raise KeyError(
                f"unknown segment {segment_name!r} in DAG {self.dag.name!r} "
                f"(have {sorted(self.membership)})"
            )
        record = SegmentRecord(
            outcome=outcome,
            latency=latency,
            detection_latency=detection_latency,
        )
        for path_id in self.membership[segment_name]:
            per_activation = self.records[path_id].setdefault(activation, {})
            per_activation[segment_name] = record

    def report_path(
        self,
        path_id: str,
        activation: int,
        outcome: Outcome,
        latency: Optional[int] = None,
        detection_latency: Optional[int] = None,
    ) -> None:
        """Record an end-to-end outcome for one specific path.

        The record is filed under the path's sink segment.
        """
        path = self.dag.path_by_id(path_id)
        per_activation = self.records[path_id].setdefault(activation, {})
        per_activation[path.sink] = SegmentRecord(
            outcome=outcome,
            latency=latency,
            detection_latency=detection_latency,
        )

    def report_exception(self, exception: TemporalException) -> None:
        """Archive a raised temporal exception (diagnostics)."""
        self.exceptions.append(exception)

    # ------------------------------------------------------------------
    # Online supervision
    # ------------------------------------------------------------------
    def _activation_violated(self, path_id: str, activation: int) -> bool:
        per_segment = self.records[path_id].get(activation, {})
        return any(
            record.outcome is Outcome.MISS for record in per_segment.values()
        )

    def advance_window(self, through_activation: int) -> None:
        """Feed completed activations into every path's automaton."""
        for path in self.paths:
            path_id = path.path_id
            automaton = self.automata[path_id]
            for n in range(
                self._finalized_through[path_id] + 1, through_activation + 1
            ):
                violated = self._activation_violated(path_id, n)
                if automaton.record(violated) and self.on_violation is not None:
                    self.on_violation(path_id, n, automaton.misses_in_window)
            self._finalized_through[path_id] = max(
                self._finalized_through[path_id], through_activation
            )

    @property
    def violated_paths(self) -> List[str]:
        """Path ids whose (m,k) constraint was ever violated."""
        return [
            path_id for path_id, automaton in self.automata.items()
            if automaton.violated
        ]

    # ------------------------------------------------------------------
    # Offline verdicts
    # ------------------------------------------------------------------
    def finalize(
        self, through_activation: Optional[int] = None
    ) -> Dict[str, ChainReport]:
        """Aggregate per-path reports over all observed activations."""
        out: Dict[str, ChainReport] = {}
        for path in self.paths:
            path_id = path.path_id
            records = self.records[path_id]
            through = through_activation
            if through is None:
                through = max(records, default=-1)
            activations: List[ActivationOutcome] = []
            misses: List[bool] = []
            counts = {outcome: 0 for outcome in Outcome}
            for n in range(through + 1):
                per_segment = records.get(n, {})
                violated = any(
                    r.outcome is Outcome.MISS for r in per_segment.values()
                )
                activations.append(ActivationOutcome(
                    activation=n, violated=violated, segments=per_segment
                ))
                misses.append(violated)
                for record in per_segment.values():
                    counts[record.outcome] += 1
            mk = self.dag.mk[path.sink]
            worst = max_window_misses(misses, mk.k) if misses else 0
            out[path_id] = ChainReport(
                chain_name=f"{self.dag.name}:{path_id}",
                activations=activations,
                misses=misses,
                mk_satisfied=worst <= mk.m,
                max_window_misses=worst,
                ok_count=counts[Outcome.OK],
                recovered_count=counts[Outcome.RECOVERED],
                miss_count=counts[Outcome.MISS],
                skipped_count=counts[Outcome.SKIPPED],
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DagChainRuntime {self.dag.name} paths={len(self.paths)} "
            f"violated={len(self.violated_paths)}>"
        )
