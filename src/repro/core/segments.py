"""Segments: the monitored units an event chain is decomposed into.

A *local* segment starts with a receive event and ends with a
publication (or, as in the paper's evaluation where rviz2 terminates the
chain, another receive) event **on the same ECU**.  A *remote* segment
starts with a publication event and ends with a receive event **on
another ECU**.  Maximizing local segment length yields an alternating
remote/local sequence and minimizes the number of monitored segments.

Each segment carries its deadline split ``d = d_mon + d_ex``: violations
must be *detected* within ``d_mon`` so that exception handling (bounded
by ``d_ex``) completes within ``d``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.events import EventKind, EventPoint


class SegmentKind(enum.Enum):
    """Local (intra-ECU) or remote (inter-ECU) segment."""

    LOCAL = "local"
    REMOTE = "remote"


@dataclass
class Segment:
    """One monitored segment of an event chain.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"s1_fusion"``.
    kind:
        LOCAL or REMOTE.
    start, end:
        The delimiting communication events.  Structural rules are
        enforced: remote segments go publication -> receive across ECUs;
        local segments stay on one ECU and start with a receive.
    d_mon:
        Monitored deadline in ns (None until budgeting assigns one).
    d_ex:
        Reserved exception-handling time in ns (a conservative WCRT of
        the handler, per the paper acquired analytically).
    """

    name: str
    kind: SegmentKind
    start: EventPoint
    end: EventPoint
    d_mon: Optional[int] = None
    d_ex: int = 0

    def __post_init__(self) -> None:
        if self.d_mon is not None and self.d_mon <= 0:
            raise ValueError(f"{self.name}: d_mon must be positive")
        if self.d_ex < 0:
            raise ValueError(f"{self.name}: d_ex must be non-negative")
        if self.kind is SegmentKind.LOCAL:
            if self.start.ecu != self.end.ecu:
                raise ValueError(
                    f"{self.name}: local segment must stay on one ECU "
                    f"({self.start.ecu} != {self.end.ecu})"
                )
            if self.start.kind is not EventKind.RECEIVE:
                raise ValueError(
                    f"{self.name}: local segment must start with a receive event"
                )
        else:
            if self.start.ecu == self.end.ecu:
                raise ValueError(
                    f"{self.name}: remote segment must cross ECUs"
                )
            if self.start.kind is not EventKind.PUBLICATION:
                raise ValueError(
                    f"{self.name}: remote segment must start with a publication"
                )
            if self.end.kind is not EventKind.RECEIVE:
                raise ValueError(
                    f"{self.name}: remote segment must end with a receive"
                )
            if self.start.topic != self.end.topic:
                raise ValueError(
                    f"{self.name}: remote segment must carry one topic "
                    f"({self.start.topic} != {self.end.topic})"
                )

    @property
    def deadline(self) -> Optional[int]:
        """Total segment deadline ``d = d_mon + d_ex`` (None if unset)."""
        if self.d_mon is None:
            return None
        return self.d_mon + self.d_ex

    def with_deadline(self, d_mon: int, d_ex: Optional[int] = None) -> "Segment":
        """Return a copy with the monitored deadline (re)assigned."""
        return Segment(
            name=self.name,
            kind=self.kind,
            start=self.start,
            end=self.end,
            d_mon=d_mon,
            d_ex=self.d_ex if d_ex is None else d_ex,
        )

    def __str__(self) -> str:
        return f"{self.name}[{self.kind.value}] {self.start} -> {self.end}"


def local_segment(
    name: str,
    ecu: str,
    start_topic: str,
    end_topic: str,
    start_process: str = "",
    end_process: str = "",
    end_kind: EventKind = EventKind.PUBLICATION,
    d_mon: Optional[int] = None,
    d_ex: int = 0,
) -> Segment:
    """Convenience constructor for a local segment."""
    return Segment(
        name=name,
        kind=SegmentKind.LOCAL,
        start=EventPoint(start_topic, EventKind.RECEIVE, ecu, start_process),
        end=EventPoint(end_topic, end_kind, ecu, end_process),
        d_mon=d_mon,
        d_ex=d_ex,
    )


def remote_segment(
    name: str,
    topic: str,
    src_ecu: str,
    dst_ecu: str,
    src_process: str = "",
    dst_process: str = "",
    d_mon: Optional[int] = None,
    d_ex: int = 0,
) -> Segment:
    """Convenience constructor for a remote segment."""
    return Segment(
        name=name,
        kind=SegmentKind.REMOTE,
        start=EventPoint(topic, EventKind.PUBLICATION, src_ecu, src_process),
        end=EventPoint(topic, EventKind.RECEIVE, dst_ecu, dst_process),
        d_mon=d_mon,
        d_ex=d_ex,
    )
