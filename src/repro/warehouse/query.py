"""Cohort queries and cross-run attribution diffs over the warehouse.

A *cohort* is every ingested run matching a :class:`RunSelector`
(``commit=abc``, ``suite=campaign,scenario=loss_burst``, a single
``run_id=...``, or all runs).  Cohort percentiles come from **merging
the persisted per-run DDSketch snapshots**
(:meth:`~repro.telemetry.histogram.StreamingHistogram.merged`), never
from re-scanning raw spans -- a fleet-month cohort costs the same as a
single run.  For a single-run cohort the merged sketch *is* the per-run
sketch, so reported quantiles reconcile exactly with that run's
:func:`~repro.tracing.critical_path.attribute_chain` aggregates.

:func:`attribution_diff` compares two cohorts and answers the CI
question "which edge category regressed": per chain it reports
per-category p50/p95 deltas, per-segment d_mon budget-burn shifts
(Eqs. 3-7 headroom), and the end-to-end shift -- a JSON document
(``repro-warehouse-diff/1``) with a human-readable renderer.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry.histogram import StreamingHistogram
from repro.warehouse.schema import DIFF_SCHEMA
from repro.warehouse.store import SpanWarehouse

#: Selector fields, in the order they render.
SELECTOR_FIELDS = ("run_id", "commit", "suite", "scenario", "vehicle")


@dataclass(frozen=True)
class RunSelector:
    """A conjunctive filter over run-manifest key fields."""

    run_id: Optional[str] = None
    commit: Optional[str] = None
    suite: Optional[str] = None
    scenario: Optional[str] = None
    vehicle: Optional[str] = None

    @classmethod
    def parse(cls, text: str) -> "RunSelector":
        """Parse ``"commit=abc,scenario=benign"`` (empty = all runs)."""
        fields: Dict[str, str] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"selector term {part!r} is not key=value "
                    f"(keys: {', '.join(SELECTOR_FIELDS)})"
                )
            key, value = part.split("=", 1)
            key = key.strip()
            if key not in SELECTOR_FIELDS:
                raise ValueError(
                    f"unknown selector key {key!r} "
                    f"(keys: {', '.join(SELECTOR_FIELDS)})"
                )
            fields[key] = value.strip()
        return cls(**fields)

    def matches(self, run: Dict[str, Any]) -> bool:
        return all(
            getattr(self, name) is None or run[name] == getattr(self, name)
            for name in SELECTOR_FIELDS
        )

    def describe(self) -> str:
        terms = [
            f"{name}={getattr(self, name)}"
            for name in SELECTOR_FIELDS
            if getattr(self, name) is not None
        ]
        return ",".join(terms) if terms else "all-runs"


# ----------------------------------------------------------------------
# Cohort aggregation (sketch merges)
# ----------------------------------------------------------------------
@dataclass
class ChainCohort:
    """Merged attribution of one chain across a cohort's runs."""

    chain: str
    n_instances: int = 0
    budget_e2e: Optional[int] = None
    e2e: StreamingHistogram = field(default_factory=StreamingHistogram)
    categories: Dict[str, StreamingHistogram] = field(default_factory=dict)
    edges: Dict[str, StreamingHistogram] = field(default_factory=dict)
    #: segment -> (observed-span sketch, d_mon budget).
    segments: Dict[str, Tuple[StreamingHistogram, Optional[int]]] = field(
        default_factory=dict
    )

    def telescoping_ok(self) -> bool:
        """Exact integer reconciliation: per-category totals sum to the
        e2e total (each instance's edges telescope to its e2e)."""
        return (
            sum(hist.total for hist in self.categories.values())
            == self.e2e.total
        )


@dataclass
class CohortAggregate:
    """One cohort's merged view of the warehouse."""

    selector: RunSelector
    run_ids: List[str]
    n_spans: int
    chains: Dict[str, ChainCohort] = field(default_factory=dict)


def select_runs(
    store: SpanWarehouse, selector: RunSelector
) -> List[Dict[str, Any]]:
    """The cohort's run rows, ordered by run_id."""
    return [run for run in store.runs() if selector.matches(run)]


def aggregate(
    store: SpanWarehouse, selector: RunSelector
) -> CohortAggregate:
    """Merge a cohort's persisted sketches into one aggregate."""
    runs = select_runs(store, selector)
    run_ids = [run["run_id"] for run in runs]
    out = CohortAggregate(
        selector=selector,
        run_ids=run_ids,
        n_spans=sum(run["n_spans"] for run in runs),
    )
    for chain in store.chains_of(run_ids):
        cohort = ChainCohort(chain=chain)
        for run_id, n_instances, budget_e2e in store.attribution_rows(
            run_ids, chain
        ):
            cohort.n_instances += n_instances
            if budget_e2e is not None:
                if (cohort.budget_e2e is not None
                        and cohort.budget_e2e != budget_e2e):
                    warnings.warn(
                        f"{chain}: budget_e2e differs across cohort runs "
                        f"({cohort.budget_e2e} vs {budget_e2e} in {run_id}); "
                        "using the latest",
                        stacklevel=2,
                    )
                cohort.budget_e2e = budget_e2e
        for _run_id, kind, key, budget, snapshot in store.sketch_rows(
            run_ids, chain
        ):
            hist = StreamingHistogram.restore(json.loads(snapshot))
            if kind == "e2e":
                cohort.e2e.merge(hist)
            elif kind == "category":
                _merge_into(cohort.categories, key, hist)
            elif kind == "edge":
                _merge_into(cohort.edges, key, hist)
            elif kind == "segment":
                if key in cohort.segments:
                    existing, prev_budget = cohort.segments[key]
                    existing.merge(hist)
                    if (budget is not None and prev_budget is not None
                            and budget != prev_budget):
                        warnings.warn(
                            f"{chain}/{key}: d_mon differs across cohort "
                            f"runs ({prev_budget} vs {budget}); using the "
                            "latest",
                            stacklevel=2,
                        )
                    cohort.segments[key] = (
                        existing, budget if budget is not None else prev_budget
                    )
                else:
                    cohort.segments[key] = (hist, budget)
        out.chains[chain] = cohort
    return out


def _merge_into(
    table: Dict[str, StreamingHistogram], key: str, hist: StreamingHistogram
) -> None:
    if key in table:
        table[key].merge(hist)
    else:
        table[key] = hist


# ----------------------------------------------------------------------
# Attribution diffs
# ----------------------------------------------------------------------
def _q(hist: Optional[StreamingHistogram], q: float) -> Optional[float]:
    return None if hist is None else hist.quantile(q)


def _delta(base: Optional[float], head: Optional[float]) -> Optional[float]:
    if base is None or head is None:
        return None
    return head - base


def _ratio(base: Optional[float], head: Optional[float]) -> Optional[float]:
    if base is None or head is None or base <= 0:
        return None
    return head / base


def _pair(
    base: Optional[StreamingHistogram], head: Optional[StreamingHistogram]
) -> Dict[str, Any]:
    """base/head p50+p95 with deltas and ratios for one metric."""
    entry: Dict[str, Any] = {}
    for quant, label in ((0.50, "p50"), (0.95, "p95")):
        b, h = _q(base, quant), _q(head, quant)
        entry[f"base_{label}"] = b
        entry[f"head_{label}"] = h
        entry[f"delta_{label}"] = _delta(b, h)
        entry[f"ratio_{label}"] = _ratio(b, h)
    entry["base_count"] = 0 if base is None else base.count
    entry["head_count"] = 0 if head is None else head.count
    return entry


def _burn(p95: Optional[float], budget: Optional[int]) -> Optional[float]:
    if p95 is None or not budget:
        return None
    return p95 / budget


def attribution_diff(
    store: SpanWarehouse,
    base_selector: RunSelector,
    head_selector: RunSelector,
) -> Dict[str, Any]:
    """The cross-cohort attribution diff document (JSON-able, stable).

    Key ordering is canonical (sorted chains/categories/segments), so
    serializing with sorted keys is byte-stable across ingest orders.
    """
    base = aggregate(store, base_selector)
    head = aggregate(store, head_selector)
    chains: Dict[str, Any] = {}
    for chain in sorted(set(base.chains) | set(head.chains)):
        b = base.chains.get(chain)
        h = head.chains.get(chain)
        b_chain = b if b is not None else ChainCohort(chain=chain)
        h_chain = h if h is not None else ChainCohort(chain=chain)

        budget_e2e = (
            h_chain.budget_e2e
            if h_chain.budget_e2e is not None
            else b_chain.budget_e2e
        )
        e2e = _pair(b_chain.e2e, h_chain.e2e)
        e2e["budget_e2e"] = budget_e2e
        e2e["base_burn"] = _burn(e2e["base_p95"], budget_e2e)
        e2e["head_burn"] = _burn(e2e["head_p95"], budget_e2e)
        e2e["burn_shift"] = _delta(e2e["base_burn"], e2e["head_burn"])

        categories: Dict[str, Any] = {}
        for key in sorted(set(b_chain.categories) | set(h_chain.categories)):
            categories[key] = _pair(
                b_chain.categories.get(key), h_chain.categories.get(key)
            )

        segments: Dict[str, Any] = {}
        for key in sorted(set(b_chain.segments) | set(h_chain.segments)):
            b_hist, b_budget = b_chain.segments.get(key, (None, None))
            h_hist, h_budget = h_chain.segments.get(key, (None, None))
            d_mon = h_budget if h_budget is not None else b_budget
            entry = _pair(b_hist, h_hist)
            entry["d_mon"] = d_mon
            entry["base_burn"] = _burn(entry["base_p95"], d_mon)
            entry["head_burn"] = _burn(entry["head_p95"], d_mon)
            entry["burn_shift"] = _delta(
                entry["base_burn"], entry["head_burn"]
            )
            entry["base_headroom_ns"] = (
                None if entry["base_p95"] is None or d_mon is None
                else d_mon - entry["base_p95"]
            )
            entry["head_headroom_ns"] = (
                None if entry["head_p95"] is None or d_mon is None
                else d_mon - entry["head_p95"]
            )
            segments[key] = entry

        chains[chain] = {
            "base_instances": b_chain.n_instances,
            "head_instances": h_chain.n_instances,
            "telescoping_ok": {
                "base": b_chain.telescoping_ok(),
                "head": h_chain.telescoping_ok(),
            },
            "e2e": e2e,
            "categories": categories,
            "segments": segments,
        }
    return {
        "schema": DIFF_SCHEMA,
        "base": {
            "selector": base.selector.describe(),
            "runs": base.run_ids,
            "n_spans": base.n_spans,
        },
        "head": {
            "selector": head.selector.describe(),
            "runs": head.run_ids,
            "n_spans": head.n_spans,
        },
        "chains": chains,
    }


def dump_diff(diff: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a diff document canonically (byte-stable goldens)."""
    path = Path(path)
    path.write_text(
        json.dumps(diff, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def _ms(value: Optional[float]) -> str:
    return "      -" if value is None else f"{value / 1e6:7.3f}"


def _pct(value: Optional[float]) -> str:
    return "    -" if value is None else f"{value:+5.1%}"


def render_cohort(agg: CohortAggregate) -> str:
    """Human-readable cohort summary (SNIPPETS.md's p50/p95/p99 tiles)."""
    lines = [
        f"cohort [{agg.selector.describe()}]: "
        f"{len(agg.run_ids)} runs, {agg.n_spans} spans"
    ]
    for chain in sorted(agg.chains):
        cohort = agg.chains[chain]
        lines.append(
            f"  chain {chain}: {cohort.n_instances} instances "
            f"(telescoping {'OK' if cohort.telescoping_ok() else 'BROKEN'})"
        )
        pcts = cohort.e2e.percentiles()
        lines.append(
            f"    e2e        p50={_ms(pcts['p50'])} p95={_ms(pcts['p95'])} "
            f"p99={_ms(pcts['p99'])} ms"
        )
        for key in sorted(
            cohort.categories, key=lambda k: -cohort.categories[k].total
        ):
            hist = cohort.categories[key]
            lines.append(
                f"    {key:<10} p50={_ms(hist.quantile(0.50))} "
                f"p95={_ms(hist.quantile(0.95))} "
                f"p99={_ms(hist.quantile(0.99))} ms  n={hist.count}"
            )
        for key in sorted(cohort.segments):
            hist, d_mon = cohort.segments[key]
            p95 = hist.quantile(0.95)
            burn = _burn(p95, d_mon)
            burn_s = "-" if burn is None else f"{burn:5.1%}"
            lines.append(
                f"    seg {key:<10} p95={_ms(p95)} ms  "
                f"d_mon burn={burn_s}"
            )
    return "\n".join(lines)


def render_diff(diff: Dict[str, Any]) -> str:
    """Human-readable attribution diff report."""
    lines = [
        f"attribution diff: base [{diff['base']['selector']}] "
        f"({len(diff['base']['runs'])} runs) -> "
        f"head [{diff['head']['selector']}] "
        f"({len(diff['head']['runs'])} runs)"
    ]
    for chain, entry in diff["chains"].items():
        e2e = entry["e2e"]
        lines.append(
            f"chain {chain}: {entry['base_instances']} -> "
            f"{entry['head_instances']} instances"
        )
        lines.append(
            f"  e2e        p50 {_ms(e2e['base_p50'])} -> "
            f"{_ms(e2e['head_p50'])} ms  "
            f"p95 {_ms(e2e['base_p95'])} -> {_ms(e2e['head_p95'])} ms  "
            f"burn shift {_pct(e2e['burn_shift'])}"
        )
        ranked = sorted(
            entry["categories"].items(),
            key=lambda item: -abs(item[1]["delta_p95"] or 0.0),
        )
        for key, cat in ranked:
            ratio = cat["ratio_p95"]
            ratio_s = "    -" if ratio is None else f"{ratio:5.2f}x"
            lines.append(
                f"  {key:<10} p50 {_ms(cat['base_p50'])} -> "
                f"{_ms(cat['head_p50'])} ms  "
                f"p95 {_ms(cat['base_p95'])} -> {_ms(cat['head_p95'])} ms  "
                f"{ratio_s}"
            )
        lines.append("  budget burn shifts (p95 vs d_mon):")
        for key, seg in entry["segments"].items():
            lines.append(
                f"    {key:<12} burn {_pct(seg['base_burn'])[1:]} -> "
                f"{_pct(seg['head_burn'])[1:]}  "
                f"shift {_pct(seg['burn_shift'])}  "
                f"headroom {_ms(seg['base_headroom_ns'])} -> "
                f"{_ms(seg['head_headroom_ns'])} ms"
            )
    return "\n".join(lines)


def regressed_categories(
    diff: Dict[str, Any], threshold: float = 0.30
) -> List[Tuple[str, str, float]]:
    """(chain, category, p95 ratio) entries above ``1 + threshold``.

    The bench-compare gate uses this to turn "the suite regressed" into
    "queue edges on this chain regressed".
    """
    out: List[Tuple[str, str, float]] = []
    for chain, entry in diff["chains"].items():
        for key, cat in entry["categories"].items():
            ratio = cat["ratio_p95"]
            if ratio is not None and ratio > 1.0 + threshold:
                out.append((chain, key, ratio))
    out.sort(key=lambda item: (-item[2], item[0], item[1]))
    return out
