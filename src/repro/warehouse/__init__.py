"""Fleet-scale span warehouse with cross-run regression mining.

Per-run tracing (``repro.tracing``) attributes one run's latency to
critical-path edges; this package makes that attribution *comparable
across runs*: an indexed, append-only sqlite warehouse ingests the
tracing layer's JSONL exports (campaign / chaos / adapt / fleet runs),
persists per-(run, chain, category, segment) DDSketch percentile
sketches next to the raw spans, and answers "which edge category
regressed between these two commits / fleet cohorts" from sketch
merges instead of raw re-scans.

- :mod:`~repro.warehouse.schema` -- run manifests + chain metadata
  (versioned, mirrors ``telemetry/store.py``'s guard discipline);
- :mod:`~repro.warehouse.ingest` -- run-bundle export/import with the
  strict span-schema version guard;
- :mod:`~repro.warehouse.store` -- the sqlite tables, idempotent
  digest-checked ingestion and the order-independent store digest;
- :mod:`~repro.warehouse.query` -- cohort selectors, sketch-merge
  aggregation, attribution diffs and renderers;
- :mod:`~repro.warehouse.gate` -- the bench-compare CI integration
  (attribution-diff artifact on any flagged regression);
- :mod:`~repro.warehouse.cli` -- ``python -m repro warehouse``.
"""

from repro.warehouse.schema import (
    DIFF_SCHEMA,
    MANIFEST_SCHEMA,
    RunKey,
    RunManifest,
    chain_from_meta,
    chain_to_meta,
)
from repro.warehouse.ingest import (
    load_run_bundle,
    read_spans_jsonl,
    write_run_bundle,
)
from repro.warehouse.store import (
    WAREHOUSE_SCHEMA,
    IngestResult,
    SpanWarehouse,
    content_digest,
)
from repro.warehouse.query import (
    ChainCohort,
    CohortAggregate,
    RunSelector,
    aggregate,
    attribution_diff,
    dump_diff,
    regressed_categories,
    render_cohort,
    render_diff,
    select_runs,
)
from repro.warehouse.gate import (
    attach_attribution_diff,
    build_regression_artifact,
)

__all__ = [
    "DIFF_SCHEMA",
    "MANIFEST_SCHEMA",
    "WAREHOUSE_SCHEMA",
    "ChainCohort",
    "CohortAggregate",
    "IngestResult",
    "RunKey",
    "RunManifest",
    "RunSelector",
    "SpanWarehouse",
    "aggregate",
    "attach_attribution_diff",
    "attribution_diff",
    "build_regression_artifact",
    "chain_from_meta",
    "chain_to_meta",
    "content_digest",
    "dump_diff",
    "load_run_bundle",
    "read_spans_jsonl",
    "regressed_categories",
    "render_cohort",
    "render_diff",
    "select_runs",
    "write_run_bundle",
]
