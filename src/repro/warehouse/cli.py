"""``python -m repro warehouse``: ingest span runs, query, diff, report.

Subcommands
-----------
``ingest DB BUNDLE...``
    Ingest run bundles (directories with ``manifest.json`` +
    ``spans.jsonl``, written by ``python -m repro trace --export-run``).
    Idempotent: re-ingesting an identical run is a no-op; a run_id
    collision with different content is refused.
``query DB [--select k=v,...] [--chain NAME]``
    Merged cohort percentiles (p50/p95/p99 per edge category, segment
    d_mon budget burn) from persisted sketch merges.
``diff DB --base SEL --head SEL [--json PATH]``
    Cross-cohort attribution diff: per-edge-category p50/p95 deltas and
    budget-burn shifts between two runs, commits, or fleet cohorts.
``report DB``
    Inventory: every ingested run plus the order-independent store
    digest.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro warehouse",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ingest = sub.add_parser("ingest", help="ingest run bundles")
    p_ingest.add_argument("db", help="warehouse database file")
    p_ingest.add_argument("bundles", nargs="+", help="run bundle directories")

    p_query = sub.add_parser("query", help="merged cohort percentiles")
    p_query.add_argument("db")
    p_query.add_argument(
        "--select", default="", metavar="SEL",
        help="cohort selector, e.g. commit=abc,scenario=benign "
        "(default: all runs)",
    )
    p_query.add_argument(
        "--chain", default=None, help="report only this chain",
    )

    p_diff = sub.add_parser("diff", help="cross-cohort attribution diff")
    p_diff.add_argument("db")
    p_diff.add_argument("--base", required=True, metavar="SEL",
                        help="base cohort selector (e.g. commit=abc)")
    p_diff.add_argument("--head", required=True, metavar="SEL",
                        help="head cohort selector (e.g. commit=def)")
    p_diff.add_argument("--json", default=None, metavar="PATH",
                        help="also write the diff document to PATH")

    p_report = sub.add_parser("report", help="run inventory + digest")
    p_report.add_argument("db")

    args = parser.parse_args(argv)

    from repro.warehouse.ingest import load_run_bundle
    from repro.warehouse.query import (
        RunSelector,
        aggregate,
        attribution_diff,
        dump_diff,
        render_cohort,
        render_diff,
    )
    from repro.warehouse.store import SpanWarehouse

    if args.command == "ingest":
        with SpanWarehouse(args.db) as store:
            for bundle in args.bundles:
                manifest, spans = load_run_bundle(bundle)
                result = store.ingest_run(manifest, spans)
                verb = "skipped (already ingested)" if result.skipped \
                    else "ingested"
                print(
                    f"{verb} {result.run_id}: {result.n_spans} spans, "
                    f"{result.n_instances} instances "
                    f"[{result.digest[:12]}]"
                )
            print(f"warehouse digest: {store.digest()[:16]}")
        return 0

    if args.command == "query":
        try:
            selector = RunSelector.parse(args.select)
        except ValueError as exc:
            parser.error(str(exc))
        with SpanWarehouse(args.db) as store:
            agg = aggregate(store, selector)
            if not agg.run_ids:
                print(f"no runs match [{selector.describe()}]")
                return 1
            if args.chain is not None:
                if args.chain not in agg.chains:
                    print(
                        f"unknown chain {args.chain!r} "
                        f"(have {sorted(agg.chains)})"
                    )
                    return 1
                agg.chains = {args.chain: agg.chains[args.chain]}
            print(render_cohort(agg))
        return 0

    if args.command == "diff":
        try:
            base = RunSelector.parse(args.base)
            head = RunSelector.parse(args.head)
        except ValueError as exc:
            parser.error(str(exc))
        with SpanWarehouse(args.db) as store:
            diff = attribution_diff(store, base, head)
            if not diff["base"]["runs"] or not diff["head"]["runs"]:
                side = "base" if not diff["base"]["runs"] else "head"
                print(f"no runs match the {side} selector")
                return 1
            print(render_diff(diff))
            if args.json is not None:
                path = dump_diff(diff, args.json)
                print(f"wrote diff document to {path}")
        return 0

    # report
    with SpanWarehouse(args.db) as store:
        runs = store.runs()
        if not runs:
            print("warehouse is empty")
            return 0
        header = (
            f"{'run_id':<24} {'commit':<12} {'suite':<10} {'scenario':<14} "
            f"{'vehicle':<8} {'spans':>8} {'instances':>9}"
        )
        print(header)
        for run in runs:
            print(
                f"{run['run_id']:<24} {run['commit']:<12} "
                f"{run['suite']:<10} {run['scenario']:<14} "
                f"{run['vehicle']:<8} {run['n_spans']:>8} "
                f"{run['n_instances']:>9}"
            )
        print(
            f"{len(runs)} runs, {store.span_count()} spans, "
            f"{store.edge_count()} edges; digest {store.digest()[:16]}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
