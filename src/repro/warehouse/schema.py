"""Warehouse schemas: run manifests and chain metadata.

A *run bundle* is the unit of ingestion: a ``manifest.json`` describing
where the spans came from plus a ``spans.jsonl`` export from the
tracing layer.  The manifest pins

- the **run key** ``(run_id, commit, suite, scenario, vehicle)`` the
  warehouse indexes cohorts by,
- ``n_frames`` (the chain activations the run simulated, so the
  analyzer knows which instances to look for), and
- the full **chain metadata** (segments with their delimiting event
  points, ``d_mon`` / ``d_ex`` deadline splits, periods, (m,k) and
  end-to-end budgets), so ingestion can rebuild genuine
  :class:`~repro.core.chains.EventChain` objects and run the *same*
  :class:`~repro.tracing.critical_path.CriticalPathAnalyzer` code path
  a live run would -- warehouse aggregates therefore reconcile exactly
  with per-run attribution.

Versioning mirrors ``telemetry/store.py``: an unknown schema identifier
raises :class:`~repro.telemetry.records.SchemaVersionError` before any
state is touched; unknown *extra* fields inside a known schema warn and
are ignored (additive evolution).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.chains import EventChain
from repro.core.events import EventKind, EventPoint
from repro.core.segments import Segment, SegmentKind
from repro.core.weakly_hard import MKConstraint
from repro.telemetry.records import SchemaVersionError

#: Schema identifier of a run bundle's ``manifest.json``.
MANIFEST_SCHEMA = "repro-warehouse-manifest/1"

#: Schema identifier of an attribution-diff document.
DIFF_SCHEMA = "repro-warehouse-diff/1"

#: Top-level manifest fields this build understands.
_MANIFEST_FIELDS = frozenset(
    {"schema", "run_id", "commit", "suite", "scenario", "vehicle",
     "n_frames", "chains", "extra"}
)


def _warn_unknown_fields(context: str, data: dict, known: frozenset) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        warnings.warn(
            f"{context}: ignoring unknown field(s) {unknown} "
            f"(written by a newer build?)",
            stacklevel=3,
        )


# ----------------------------------------------------------------------
# Chain metadata (JSON <-> EventChain)
# ----------------------------------------------------------------------
def _point_to_meta(point: EventPoint) -> Dict[str, str]:
    return {
        "topic": point.topic,
        "kind": point.kind.value,
        "ecu": point.ecu,
        "process": point.process,
    }


def _point_from_meta(meta: Dict[str, str]) -> EventPoint:
    return EventPoint(
        topic=meta["topic"],
        kind=EventKind(meta["kind"]),
        ecu=meta["ecu"],
        process=meta.get("process", ""),
    )


def chain_to_meta(chain: EventChain) -> Dict[str, Any]:
    """The JSON-able metadata of one monitored chain."""
    return {
        "name": chain.name,
        "period": chain.period,
        "budget_e2e": chain.budget_e2e,
        "budget_seg": chain.budget_seg,
        "mk": [chain.mk.m, chain.mk.k],
        "segments": [
            {
                "name": seg.name,
                "kind": seg.kind.value,
                "start": _point_to_meta(seg.start),
                "end": _point_to_meta(seg.end),
                "d_mon": seg.d_mon,
                "d_ex": seg.d_ex,
            }
            for seg in chain.segments
        ],
    }


def chain_from_meta(meta: Dict[str, Any]) -> EventChain:
    """Rebuild a genuine (fully validated) chain from its metadata."""
    segments = [
        Segment(
            name=seg["name"],
            kind=SegmentKind(seg["kind"]),
            start=_point_from_meta(seg["start"]),
            end=_point_from_meta(seg["end"]),
            d_mon=seg.get("d_mon"),
            d_ex=seg.get("d_ex", 0),
        )
        for seg in meta["segments"]
    ]
    return EventChain(
        name=meta["name"],
        segments=segments,
        period=meta["period"],
        budget_e2e=meta["budget_e2e"],
        budget_seg=meta.get("budget_seg"),
        mk=MKConstraint(*meta.get("mk", (0, 1))),
    )


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunKey:
    """The identity a run is indexed (and cohorts are selected) by."""

    run_id: str
    commit: str = "unknown"
    suite: str = "trace"
    scenario: str = ""
    vehicle: str = ""

    def __post_init__(self) -> None:
        if not self.run_id:
            raise ValueError("run_id must be non-empty")


@dataclass
class RunManifest:
    """Everything the warehouse needs to ingest one run's spans."""

    key: RunKey
    n_frames: int
    chains: List[Dict[str, Any]] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {self.n_frames}")

    @classmethod
    def for_run(
        cls,
        key: RunKey,
        chains: Dict[str, EventChain],
        n_frames: int,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Build a manifest from live chain objects (export side)."""
        return cls(
            key=key,
            n_frames=n_frames,
            chains=[chain_to_meta(chains[name]) for name in sorted(chains)],
            extra=dict(extra or {}),
        )

    def build_chains(self) -> Dict[str, EventChain]:
        """Reconstruct the run's monitored chains (ingest side)."""
        chains = {meta["name"]: chain_from_meta(meta) for meta in self.chains}
        if len(chains) != len(self.chains):
            raise ValueError(f"{self.key.run_id}: duplicate chain names")
        return chains

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.key.run_id,
            "commit": self.key.commit,
            "suite": self.key.suite,
            "scenario": self.key.scenario,
            "vehicle": self.key.vehicle,
            "n_frames": self.n_frames,
            "chains": self.chains,
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunManifest":
        """Parse + version-check a manifest document."""
        if not isinstance(data, dict):
            raise SchemaVersionError("manifest", None, MANIFEST_SCHEMA)
        if data.get("schema") != MANIFEST_SCHEMA:
            raise SchemaVersionError(
                "manifest", data.get("schema"), MANIFEST_SCHEMA
            )
        _warn_unknown_fields("manifest", data, _MANIFEST_FIELDS)
        return cls(
            key=RunKey(
                run_id=data["run_id"],
                commit=data.get("commit", "unknown"),
                suite=data.get("suite", "trace"),
                scenario=data.get("scenario", ""),
                vehicle=data.get("vehicle", ""),
            ),
            n_frames=data["n_frames"],
            chains=list(data.get("chains", [])),
            extra=dict(data.get("extra", {})),
        )
