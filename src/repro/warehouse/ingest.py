"""Run-bundle export and the strict (version-guarded) span importer.

A run bundle is one directory::

    <bundle>/manifest.json   # RunManifest (repro-warehouse-manifest/1)
    <bundle>/spans.jsonl     # tracing JSONL export (repro-spans/1)

:func:`write_run_bundle` is the producer side (called by
``python -m repro trace --export-run`` and the examples);
:func:`load_run_bundle` is the consumer side the warehouse CLI feeds to
:meth:`~repro.warehouse.store.SpanWarehouse.ingest_run`.

Unlike :func:`repro.tracing.export.read_jsonl` (which tolerates legacy
headerless files), the importer here **requires** the span schema
header and raises :class:`~repro.telemetry.records.SchemaVersionError`
on an unknown or missing version -- the warehouse must never silently
mis-ingest spans written by an incompatible build.  Unknown extra
fields inside a known schema warn and are ignored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.chains import EventChain
from repro.tracing.export import parse_jsonl_lines, to_jsonl
from repro.tracing.spans import Span, SpanRecorder
from repro.warehouse.schema import RunKey, RunManifest

#: File names inside a run bundle directory.
MANIFEST_NAME = "manifest.json"
SPANS_NAME = "spans.jsonl"


def read_spans_jsonl(path: Union[str, Path]) -> List[Span]:
    """Load a spans JSONL export, *requiring* the schema header."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_jsonl_lines(
            iter(handle), require_header=True, context=str(path)
        )


def write_run_bundle(
    recorder: SpanRecorder,
    chains: Dict[str, EventChain],
    n_frames: int,
    out_dir: Union[str, Path],
    key: RunKey,
    extra: Optional[dict] = None,
) -> Tuple[Path, int]:
    """Write ``manifest.json`` + ``spans.jsonl`` for one finished run.

    Returns ``(bundle_dir, span_count)``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    manifest = RunManifest.for_run(key, chains, n_frames, extra=extra)
    (out / MANIFEST_NAME).write_text(
        json.dumps(manifest.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    count = -1  # header line is not a span
    with (out / SPANS_NAME).open("w", encoding="utf-8") as handle:
        for line in to_jsonl(recorder):
            handle.write(line)
            handle.write("\n")
            count += 1
    return out, count


def load_run_bundle(
    bundle_dir: Union[str, Path]
) -> Tuple[RunManifest, List[Span]]:
    """Load one run bundle, version-checking both documents."""
    bundle = Path(bundle_dir)
    manifest_path = bundle / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(
            f"{bundle}: not a run bundle (no {MANIFEST_NAME})"
        )
    manifest = RunManifest.from_json(
        json.loads(manifest_path.read_text(encoding="utf-8"))
    )
    spans = read_spans_jsonl(bundle / SPANS_NAME)
    return manifest, spans
