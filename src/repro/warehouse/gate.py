"""Bench-compare integration: attribution diffs on flagged regressions.

``python -m repro bench --compare`` answers *that* a suite regressed;
this module answers *where*.  When a comparison fails and the operator
pointed the bench CLI at a warehouse (``--warehouse``), the gate runs a
cross-cohort attribution diff (base vs head selectors, typically two
commits) and writes it as a JSON artifact next to the bench output --
"the kernel suite regressed 30%" becomes "queue edges on segment s2
regressed", with the flagged benchmarks recorded in the document.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.warehouse.query import (
    RunSelector,
    attribution_diff,
    dump_diff,
    regressed_categories,
)
from repro.warehouse.store import SpanWarehouse


def build_regression_artifact(
    store: SpanWarehouse,
    base_selector: RunSelector,
    head_selector: RunSelector,
    *,
    flagged: List[str],
    suite: str,
    threshold: float = 0.30,
) -> Dict[str, Any]:
    """The attribution-diff document annotated with the bench verdict."""
    diff = attribution_diff(store, base_selector, head_selector)
    diff["bench"] = {
        "suite": suite,
        "flagged": sorted(flagged),
        "threshold": threshold,
    }
    diff["regressed_categories"] = [
        {"chain": chain, "category": category, "ratio_p95": ratio}
        for chain, category, ratio in regressed_categories(diff, threshold)
    ]
    return diff


def attach_attribution_diff(
    report,
    warehouse_path: Union[str, Path],
    out_path: Union[str, Path],
    base_selector: RunSelector,
    head_selector: RunSelector,
) -> Optional[Path]:
    """Write the attribution-diff artifact for a failed CompareReport.

    Returns the artifact path, or None when the report passed (nothing
    to attribute).  *report* is a
    :class:`~repro.bench.harness.CompareReport`.
    """
    if report.passed:
        return None
    flagged = [c.name for c in report.comparisons if c.regressed]
    flagged += list(report.missing)
    with SpanWarehouse(warehouse_path) as store:
        diff = build_regression_artifact(
            store,
            base_selector,
            head_selector,
            flagged=flagged,
            suite=report.suite,
            threshold=report.threshold,
        )
    return dump_diff(diff, out_path)
