"""The sqlite-backed, append-only span warehouse.

One warehouse file accumulates every ingested run:

- ``runs`` -- one row per run manifest, keyed by ``run_id`` and indexed
  by ``(commit, suite, scenario, vehicle)`` for cohort selection;
- ``spans`` -- the raw span rows (lossless: links/attrs as JSON),
  indexed by ``(run_id, category)``;
- ``instances`` / ``edges`` -- the per-frame critical paths and their
  telescoping edge decomposition, indexed by edge category, so "show me
  the queue edges that regressed" is one indexed scan, not a re-walk of
  millions of spans;
- ``segment_obs`` -- per-instance observed segment spans, indexed by
  segment, feeding d_mon budget-burn queries;
- ``sketches`` -- per ``(run, chain, kind, key)`` DDSketch snapshots
  (:class:`~repro.telemetry.histogram.StreamingHistogram`), so cohort
  p50/p95/p99 come from **sketch merges**, never raw re-scans.

Ingestion runs the exact per-run code path
(:class:`~repro.tracing.critical_path.CriticalPathAnalyzer` +
:func:`~repro.tracing.critical_path.attribute_chain`) on the imported
spans, so warehouse aggregates reconcile exactly -- integer-ns
telescoping included -- with what a live analysis of the same run
reports.

Determinism contract (``tests/test_warehouse_store.py``):

- re-ingesting an identical run is a no-op (the warehouse digest is
  unchanged);
- re-ingesting a *different* payload under an existing ``run_id`` is
  refused (append-only, no silent rewrite);
- :meth:`SpanWarehouse.digest` hashes rows in primary-key order, so it
  is independent of ingest order across runs.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.telemetry.histogram import StreamingHistogram
from repro.telemetry.records import SchemaVersionError
from repro.tracing.critical_path import (
    CriticalPathAnalyzer,
    attribute_chain,
)
from repro.tracing.export import span_to_dict
from repro.tracing.spans import Span
from repro.warehouse.schema import RunManifest

#: Schema identifier stamped into (and required from) every warehouse.
WAREHOUSE_SCHEMA = "repro-warehouse/1"

#: Sketch kinds persisted per (run, chain).
SKETCH_KINDS = ("e2e", "category", "edge", "segment")

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id         TEXT PRIMARY KEY,
    commit_id      TEXT NOT NULL,
    suite          TEXT NOT NULL,
    scenario       TEXT NOT NULL,
    vehicle        TEXT NOT NULL,
    n_frames       INTEGER NOT NULL,
    n_spans        INTEGER NOT NULL,
    n_instances    INTEGER NOT NULL,
    content_digest TEXT NOT NULL,
    manifest       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_commit ON runs (commit_id);
CREATE INDEX IF NOT EXISTS idx_runs_cohort ON runs (suite, scenario, vehicle);
CREATE TABLE IF NOT EXISTS spans (
    run_id    TEXT NOT NULL,
    span_id   INTEGER NOT NULL,
    trace_id  INTEGER NOT NULL,
    parent_id INTEGER,
    name      TEXT NOT NULL,
    category  TEXT NOT NULL,
    start_ns  INTEGER NOT NULL,
    end_ns    INTEGER,
    links     TEXT,
    attrs     TEXT,
    PRIMARY KEY (run_id, span_id)
);
CREATE INDEX IF NOT EXISTS idx_spans_category ON spans (run_id, category);
CREATE TABLE IF NOT EXISTS instances (
    run_id   TEXT NOT NULL,
    chain    TEXT NOT NULL,
    frame    INTEGER NOT NULL,
    start_ns INTEGER NOT NULL,
    end_ns   INTEGER NOT NULL,
    e2e_ns   INTEGER NOT NULL,
    PRIMARY KEY (run_id, chain, frame)
);
CREATE TABLE IF NOT EXISTS edges (
    run_id   TEXT NOT NULL,
    chain    TEXT NOT NULL,
    frame    INTEGER NOT NULL,
    idx      INTEGER NOT NULL,
    name     TEXT NOT NULL,
    category TEXT NOT NULL,
    start_ns INTEGER NOT NULL,
    end_ns   INTEGER NOT NULL,
    PRIMARY KEY (run_id, chain, frame, idx)
);
CREATE INDEX IF NOT EXISTS idx_edges_category ON edges (run_id, category);
CREATE TABLE IF NOT EXISTS segment_obs (
    run_id      TEXT NOT NULL,
    chain       TEXT NOT NULL,
    frame       INTEGER NOT NULL,
    segment     TEXT NOT NULL,
    observed_ns INTEGER,
    PRIMARY KEY (run_id, chain, frame, segment)
);
CREATE INDEX IF NOT EXISTS idx_segment_obs ON segment_obs (run_id, segment);
CREATE TABLE IF NOT EXISTS sketches (
    run_id    TEXT NOT NULL,
    chain     TEXT NOT NULL,
    kind      TEXT NOT NULL,
    key       TEXT NOT NULL,
    budget_ns INTEGER,
    snapshot  TEXT NOT NULL,
    PRIMARY KEY (run_id, chain, kind, key)
);
CREATE TABLE IF NOT EXISTS attributions (
    run_id      TEXT NOT NULL,
    chain       TEXT NOT NULL,
    n_instances INTEGER NOT NULL,
    budget_e2e  INTEGER,
    PRIMARY KEY (run_id, chain)
);
"""

#: (table, ordered column list) pairs the warehouse digest walks, in a
#: fixed order with ORDER BY the primary key -- ingest order never
#: changes the digest.
_DIGEST_TABLES: Tuple[Tuple[str, str], ...] = (
    ("runs", "run_id"),
    ("spans", "run_id, span_id"),
    ("instances", "run_id, chain, frame"),
    ("edges", "run_id, chain, frame, idx"),
    ("segment_obs", "run_id, chain, frame, segment"),
    ("sketches", "run_id, chain, kind, key"),
    ("attributions", "run_id, chain"),
)


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_digest(manifest: RunManifest, spans: Iterable[Span]) -> str:
    """The ingest-idempotency digest of one run's payload."""
    h = hashlib.sha256()
    h.update(_canonical(manifest.to_json()).encode())
    for span in spans:
        h.update(b"\n")
        h.update(_canonical(span_to_dict(span)).encode())
    return h.hexdigest()


class _LoadedRun:
    """Duck-typed stand-in for a SpanRecorder (analyzer input)."""

    __slots__ = ("spans",)

    def __init__(self, spans: List[Span]):
        self.spans = spans


@dataclass
class IngestResult:
    """What one :meth:`SpanWarehouse.ingest_run` call did."""

    run_id: str
    skipped: bool
    n_spans: int
    n_instances: int
    digest: str


class SpanWarehouse:
    """An append-only warehouse of analyzed span runs.

    Parameters
    ----------
    path:
        Database file; ``":memory:"`` for an ephemeral warehouse.
    """

    def __init__(self, path: Union[str, Path] = ":memory:"):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_TABLES)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                (WAREHOUSE_SCHEMA,),
            )
            self._conn.commit()
        elif row[0] != WAREHOUSE_SCHEMA:
            self._conn.close()
            raise SchemaVersionError(
                f"warehouse {self.path}", row[0], WAREHOUSE_SCHEMA
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SpanWarehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_run(
        self, manifest: RunManifest, spans: List[Span]
    ) -> IngestResult:
        """Analyze and store one run (idempotent per content digest).

        Re-ingesting a byte-identical run is a no-op; re-using a
        ``run_id`` for different content raises ``ValueError`` (the
        warehouse is append-only).
        """
        digest = content_digest(manifest, spans)
        run_id = manifest.key.run_id
        row = self._conn.execute(
            "SELECT content_digest, n_spans, n_instances FROM runs "
            "WHERE run_id = ?",
            (run_id,),
        ).fetchone()
        if row is not None:
            if row[0] != digest:
                raise ValueError(
                    f"run {run_id!r} already ingested with different "
                    f"content (have {row[0][:12]}, got {digest[:12]}); "
                    "the warehouse is append-only"
                )
            return IngestResult(run_id, True, row[1], row[2], digest)

        chains = manifest.build_chains()
        analyzer = CriticalPathAnalyzer(_LoadedRun(spans))
        frames = range(manifest.n_frames)

        cur = self._conn.cursor()
        try:
            cur.execute("BEGIN")
            cur.executemany(
                "INSERT INTO spans VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        run_id, s.span_id, s.trace_id, s.parent_id, s.name,
                        s.category, s.start, s.end,
                        _canonical(s.links) if s.links else None,
                        _canonical(s.attrs) if s.attrs else None,
                    )
                    for s in spans
                ),
            )
            n_instances = 0
            for name in sorted(chains):
                chain = chains[name]
                paths = analyzer.analyze(chain, frames)
                n_instances += len(paths)
                for path in paths:
                    path.verify()  # integer-ns telescoping, always
                    cur.execute(
                        "INSERT INTO instances VALUES (?, ?, ?, ?, ?, ?)",
                        (run_id, name, path.frame, path.start_ts,
                         path.end_ts, path.e2e_ns),
                    )
                    cur.executemany(
                        "INSERT INTO edges VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            (run_id, name, path.frame, idx, edge.name,
                             edge.category, edge.start, edge.end)
                            for idx, edge in enumerate(path.edges)
                        ),
                    )
                    cur.executemany(
                        "INSERT INTO segment_obs VALUES (?, ?, ?, ?, ?)",
                        (
                            (run_id, name, path.frame, seg_name, observed)
                            for seg_name, observed
                            in analyzer.segment_spans(chain, path)
                        ),
                    )
                attribution = attribute_chain(
                    analyzer, chain, frames, paths=paths
                )
                cur.execute(
                    "INSERT INTO attributions VALUES (?, ?, ?, ?)",
                    (run_id, name, attribution.n_instances,
                     attribution.budget_e2e),
                )
                self._insert_sketches(cur, run_id, name, attribution)
            cur.execute(
                "INSERT INTO runs VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id, manifest.key.commit, manifest.key.suite,
                    manifest.key.scenario, manifest.key.vehicle,
                    manifest.n_frames, len(spans), n_instances, digest,
                    _canonical(manifest.to_json()),
                ),
            )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return IngestResult(run_id, False, len(spans), n_instances, digest)

    def _insert_sketches(self, cur, run_id: str, chain: str, attribution):
        def put(kind: str, key: str, hist: StreamingHistogram,
                budget: Optional[int]) -> None:
            cur.execute(
                "INSERT INTO sketches VALUES (?, ?, ?, ?, ?, ?)",
                (run_id, chain, kind, key, budget,
                 _canonical(hist.snapshot())),
            )

        put("e2e", "e2e", attribution.e2e_histogram, attribution.budget_e2e)
        for key in sorted(attribution.category_histograms):
            put("category", key, attribution.category_histograms[key], None)
        for key in sorted(attribution.edge_histograms):
            put("edge", key, attribution.edge_histograms[key], None)
        for key in sorted(attribution.segment_burn):
            hist, d_mon = attribution.segment_burn[key]
            put("segment", key, hist, d_mon)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def runs(self) -> List[Dict[str, Any]]:
        """Every ingested run's manifest row, ordered by run_id."""
        rows = self._conn.execute(
            "SELECT run_id, commit_id, suite, scenario, vehicle, n_frames, "
            "n_spans, n_instances, content_digest FROM runs ORDER BY run_id"
        ).fetchall()
        keys = ("run_id", "commit", "suite", "scenario", "vehicle",
                "n_frames", "n_spans", "n_instances", "content_digest")
        return [dict(zip(keys, row)) for row in rows]

    def chains_of(self, run_ids: Iterable[str]) -> List[str]:
        """Chain names attributed in any of *run_ids*, sorted."""
        ids = sorted(set(run_ids))
        if not ids:
            return []
        marks = ",".join("?" for _ in ids)
        rows = self._conn.execute(
            f"SELECT DISTINCT chain FROM attributions WHERE run_id IN ({marks}) "
            "ORDER BY chain",
            ids,
        ).fetchall()
        return [row[0] for row in rows]

    def sketch_rows(
        self, run_ids: Iterable[str], chain: str
    ) -> List[Tuple[str, str, str, Optional[int], str]]:
        """(run_id, kind, key, budget_ns, snapshot) rows for *chain*."""
        ids = sorted(set(run_ids))
        if not ids:
            return []
        marks = ",".join("?" for _ in ids)
        return self._conn.execute(
            f"SELECT run_id, kind, key, budget_ns, snapshot FROM sketches "
            f"WHERE run_id IN ({marks}) AND chain = ? "
            "ORDER BY run_id, kind, key",
            ids + [chain],
        ).fetchall()

    def attribution_rows(
        self, run_ids: Iterable[str], chain: str
    ) -> List[Tuple[str, int, Optional[int]]]:
        """(run_id, n_instances, budget_e2e) rows for *chain*."""
        ids = sorted(set(run_ids))
        if not ids:
            return []
        marks = ",".join("?" for _ in ids)
        return self._conn.execute(
            f"SELECT run_id, n_instances, budget_e2e FROM attributions "
            f"WHERE run_id IN ({marks}) AND chain = ? ORDER BY run_id",
            ids + [chain],
        ).fetchall()

    def edge_count(self, run_id: Optional[str] = None,
                   category: Optional[str] = None) -> int:
        """Indexed count of stored edges (drill-down smoke queries)."""
        sql, params = "SELECT COUNT(*) FROM edges", []
        clauses = []
        if run_id is not None:
            clauses.append("run_id = ?")
            params.append(run_id)
        if category is not None:
            clauses.append("category = ?")
            params.append(category)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        return self._conn.execute(sql, params).fetchone()[0]

    def span_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM spans").fetchone()[0]

    # ------------------------------------------------------------------
    # Determinism
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """sha256 over every table's rows in primary-key order.

        Independent of ingest order and of sqlite page layout (the hash
        walks logical rows, not file bytes).
        """
        h = hashlib.sha256()
        for table, order in _DIGEST_TABLES:
            h.update(table.encode())
            for row in self._conn.execute(
                f"SELECT * FROM {table} ORDER BY {order}"  # noqa: S608
            ):
                h.update(_canonical(list(row)).encode())
        return h.hexdigest()
