"""Segment-latency reconstruction from communication-event traces.

The middleware emits ``dds.publish`` and ``dds.receive`` trace points
carrying topic, endpoint GUID and sequence number.  Endpoint GUIDs have
the form ``"<ecu>/<process>#<id>/<endpoint>"``, so an
:class:`~repro.core.events.EventPoint` (topic, kind, ecu, process)
selects a unique event stream.  Pairing the n-th start event with the
n-th end event yields the segment's latency series -- exactly the
measurement the paper performs on its LTTng traces.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.events import EventKind, EventPoint
from repro.core.segments import Segment
from repro.budgeting.traces import ChainTrace, SegmentTrace
from repro.core.chains import EventChain
from repro.tracing.tracer import TraceEvent, Tracer

_KIND_TO_TRACE = {
    EventKind.PUBLICATION: "dds.publish",
    EventKind.RECEIVE: "dds.receive",
}
_KIND_TO_GUID_FIELD = {
    EventKind.PUBLICATION: "writer",
    EventKind.RECEIVE: "reader",
}


def _guid_matches(guid: str, ecu: str, process: str) -> bool:
    head = guid.split("#", 1)[0]  # "<ecu>/<process>"
    parts = head.split("/", 1)
    if parts[0] != ecu:
        return False
    if process and (len(parts) < 2 or parts[1] != process):
        return False
    return True


def endpoint_events(tracer: Tracer, point: EventPoint) -> List[TraceEvent]:
    """All trace events observed at *point*, in time order."""
    trace_name = _KIND_TO_TRACE[point.kind]
    guid_field = _KIND_TO_GUID_FIELD[point.kind]
    out = []
    for event in tracer.events(trace_name):
        if event.fields.get("topic") != point.topic:
            continue
        guid = event.fields.get(guid_field, "")
        if _guid_matches(guid, point.ecu, point.process):
            out.append(event)
    return out


def segment_latencies_from_trace(
    tracer: Tracer, segment: Segment, max_pairs: Optional[int] = None
) -> List[int]:
    """Latency series of *segment*: n-th end minus n-th start timestamp.

    Valid for unmonitored runs (no suppressed events), where the paper's
    in-order assumption guarantees positional correspondence.
    """
    starts = endpoint_events(tracer, segment.start)
    ends = endpoint_events(tracer, segment.end)
    n = min(len(starts), len(ends))
    if max_pairs is not None:
        n = min(n, max_pairs)
    latencies = []
    for i in range(n):
        latency = ends[i].timestamp - starts[i].timestamp
        if latency < 0:
            raise ValueError(
                f"{segment.name}: negative latency at activation {i}; "
                f"start/end streams are misaligned"
            )
        latencies.append(latency)
    return latencies


def chain_trace_from_tracer(
    tracer: Tracer,
    chain: EventChain,
    d_ex: int = 0,
    max_pairs: Optional[int] = None,
) -> ChainTrace:
    """Build the budgeting input (:class:`ChainTrace`) for *chain*."""
    trace = ChainTrace(chain.name)
    for segment in chain.segments:
        trace.add(
            SegmentTrace(
                segment.name,
                segment_latencies_from_trace(tracer, segment, max_pairs=max_pairs),
                d_ex=d_ex,
            )
        )
    return trace
