"""Span contexts: the propagated identity of a span.

A :class:`SpanContext` is the minimal value that travels with causality
-- through scheduled kernel events, DDS samples, executor queue entries
and monitor bookkeeping -- so that work performed later (or elsewhere)
can be parented to the span that caused it.  It is intentionally tiny:
two integers, no reference to the recorder or the span object itself,
which keeps captured contexts safe to stash anywhere without pinning
span payloads alive semantics-wise.

Identifiers are allocated by :class:`~repro.tracing.spans.SpanRecorder`
from plain per-recorder counters, so two runs with the same seed assign
identical ids -- trace exports are byte-stable, like everything else in
the simulator.
"""

from __future__ import annotations


class SpanContext:
    """Immutable (trace_id, span_id) pair identifying one span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.span_id == self.span_id
            and other.trace_id == self.trace_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"
