"""``python -m repro trace``: record spans, attribute latency, export.

Runs one golden scenario with span tracing enabled, verifies the exact
attribution invariant (critical-path edge durations sum to the recorded
end-to-end latency on every completed chain instance), prints per-chain
attribution reports and optionally exports the span set as a Chrome
``trace_event`` JSON (loadable in ``about:tracing`` / Perfetto) and/or
compact JSONL.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scenario",
        choices=["benign", "interference", "lossy_link"],
        default="benign",
        help="which golden scenario configuration to run (default: benign)",
    )
    parser.add_argument(
        "--frames", type=int, default=24,
        help="chain activations to simulate (default: 24)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's seed",
    )
    parser.add_argument(
        "--chain", default=None,
        help="report only this chain (default: all four)",
    )
    parser.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON to PATH",
    )
    parser.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="write one span per line (lossless) to PATH",
    )
    parser.add_argument(
        "--no-report", action="store_true",
        help="skip the per-chain attribution report",
    )
    parser.add_argument(
        "--export-run", metavar="DIR", default=None,
        help="write a warehouse run bundle (manifest.json + spans.jsonl) "
        "to DIR for `python -m repro warehouse ingest`",
    )
    parser.add_argument(
        "--run-id", default=None,
        help="run identity in the bundle manifest "
        "(default: <scenario>-s<seed>-f<frames>)",
    )
    parser.add_argument(
        "--commit", default="unknown",
        help="commit recorded in the bundle manifest",
    )
    parser.add_argument(
        "--vehicle", default="veh0",
        help="vehicle recorded in the bundle manifest",
    )
    args = parser.parse_args(argv)

    from repro.perception.stack import PerceptionStack, StackConfig
    from repro.experiments.common import interference_governor
    from repro.tracing.critical_path import (
        CriticalPathAnalyzer,
        attribute_chain,
        render_attribution,
        validate_spans,
    )
    from repro.tracing.export import write_chrome_trace, write_jsonl

    if args.scenario == "benign":
        config = StackConfig(seed=1)
    elif args.scenario == "interference":
        config = StackConfig(seed=42, ecu2_governor=interference_governor())
    else:
        config = StackConfig(seed=7, link_loss=0.08)
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    config = dataclasses.replace(config, spans=True)

    stack = PerceptionStack(config)
    stack.run(n_frames=args.frames)
    recorder = stack.spans
    print(
        f"scenario {args.scenario}: {args.frames} frames, "
        f"{len(recorder)} spans recorded ({recorder.open_spans} open)"
    )

    problems = validate_spans(recorder)
    if problems:
        print(f"span validation FAILED ({len(problems)} problems):")
        for problem in problems[:10]:
            print(f"  {problem}")
        return 1

    analyzer = CriticalPathAnalyzer(recorder)
    chains = stack.chains
    if args.chain is not None:
        if args.chain not in chains:
            parser.error(
                f"unknown chain {args.chain!r} (have {sorted(chains)})"
            )
        chains = {args.chain: chains[args.chain]}

    verified = 0
    for chain in chains.values():
        # instance_path() verifies the exact-sum invariant per instance
        # and raises on any mismatch.
        verified += len(analyzer.analyze(chain, range(args.frames)))
    print(
        f"attribution exact on {verified} chain instances "
        "(edge durations sum to recorded e2e)"
    )

    if not args.no_report:
        for name in sorted(chains):
            attribution = attribute_chain(
                analyzer, chains[name], range(args.frames)
            )
            print()
            print(render_attribution(attribution))

    if args.chrome is not None:
        count = write_chrome_trace(recorder, args.chrome)
        print(f"\nwrote {count} trace events to {args.chrome}")
    if args.jsonl is not None:
        count = write_jsonl(recorder, args.jsonl)
        print(f"wrote {count} spans to {args.jsonl}")
    if args.export_run is not None:
        from repro.warehouse import RunKey, write_run_bundle

        run_id = args.run_id or (
            f"{args.scenario}-s{config.seed}-f{args.frames}"
        )
        bundle, count = write_run_bundle(
            recorder, stack.chains, args.frames, args.export_run,
            RunKey(
                run_id=run_id,
                commit=args.commit,
                suite="trace",
                scenario=args.scenario,
                vehicle=args.vehicle,
            ),
        )
        print(f"wrote run bundle {run_id} ({count} spans) to {bundle}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
