"""Golden-trace digests: a compact fingerprint of a simulation run.

The digest hashes every buffered trace event (name, timestamp and a
canonical rendering of its fields) plus, optionally, the monitored
latency series of a stack.  Two runs with the same seed and the same
*observable* behavior produce the same digest -- which makes digests the
oracle for hot-path optimizations: any refactor of the kernel, the
scheduler or the DDS delivery path must leave them bit-identical.

``tests/golden/golden_digests.json`` pins the digests of three
representative scenarios; ``tests/test_golden_traces.py`` recomputes
them on every CI run.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.tracer import Tracer


def _canonical_fields(fields: dict) -> str:
    """Stable rendering of a trace event's field dict."""
    return ",".join(f"{key}={fields[key]!r}" for key in sorted(fields))


def trace_digest(tracer: "Tracer") -> str:
    """SHA-256 over every buffered trace event, bucketed by name.

    Events within one name are in recording (time) order; names are
    visited sorted, so the digest does not depend on dict iteration
    order.
    """
    digest = hashlib.sha256()
    for name in tracer.names():
        for event in tracer.events(name):
            line = f"{name}|{event.timestamp}|{_canonical_fields(event.fields)}\n"
            digest.update(line.encode("utf-8"))
    return digest.hexdigest()


def latency_digest(series_by_segment: Dict[str, Iterable[int]]) -> str:
    """SHA-256 over per-segment monitored latency series."""
    digest = hashlib.sha256()
    for name in sorted(series_by_segment):
        values = ",".join(str(v) for v in series_by_segment[name])
        digest.update(f"{name}|{values}\n".encode("utf-8"))
    return digest.hexdigest()


#: Frames per golden scenario -- small enough for CI, long enough to
#: exercise monitors, recoveries and remote deadline handling.
GOLDEN_FRAMES = 12


def golden_scenarios() -> Dict[str, "object"]:
    """The pinned scenario matrix: name -> zero-arg stack factory.

    Three representative configurations: a benign run, a run under ECU2
    frequency interference (latency tail + exceptions), and a lossy-link
    run (retransmits + remote monitor timeouts).
    """
    from repro.experiments.common import interference_governor
    from repro.perception.stack import PerceptionStack, StackConfig

    def benign():
        return PerceptionStack(StackConfig(seed=1))

    def interference():
        return PerceptionStack(
            StackConfig(seed=42, ecu2_governor=interference_governor())
        )

    def lossy_link():
        return PerceptionStack(StackConfig(seed=7, link_loss=0.08))

    return {
        "benign_seed1": benign,
        "interference_seed42": interference,
        "lossy_link_seed7": lossy_link,
    }


def compute_golden_digests(n_frames: int = GOLDEN_FRAMES) -> Dict[str, Dict[str, str]]:
    """Run every golden scenario and fingerprint it."""
    out = {}
    for name, factory in golden_scenarios().items():
        stack = factory()
        stack.run(n_frames=n_frames)
        out[name] = stack_fingerprint(stack)
    return out


def stack_fingerprint(stack) -> Dict[str, str]:
    """Digest a finished :class:`~repro.perception.stack.PerceptionStack` run.

    Returns ``{"trace": ..., "latencies": ..., "final_time": ...}`` --
    the triple pinned per scenario by the golden-trace suite.
    """
    latencies = {}
    for name, runtime in getattr(stack, "local_runtimes", {}).items():
        latencies[name] = [lat for _n, lat, _o in runtime.latencies]
    for name, monitor in getattr(stack, "remote_monitors", {}).items():
        latencies[name] = [lat for _n, lat, _o in monitor.latencies]
    return {
        "trace": trace_digest(stack.tracer),
        "latencies": latency_digest(latencies),
        "final_time": str(stack.sim.now),
    }
