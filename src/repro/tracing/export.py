"""Span exporters: Chrome ``trace_event`` JSON and compact JSONL.

The Chrome format loads directly in ``about:tracing`` / Perfetto: spans
become complete events (``ph: "X"``) on one row per category, grouped
into one process per trace (chain instance), with instants (publication
marks, degradation transitions) as ``ph: "i"``.  Timestamps are
microseconds as the format requires; the original integer nanoseconds
survive in ``args``.

The JSONL format is the lossless interchange: one span per line,
round-trippable via :func:`read_jsonl` for offline analysis of a run
recorded elsewhere (e.g. a CI artifact).  Every export starts with a
header line carrying the span schema identifier (``repro-spans/1``);
:func:`read_jsonl` tolerates headerless legacy files, while the
warehouse importer (:mod:`repro.warehouse.ingest`) requires the header
and refuses unknown versions with a
:class:`~repro.telemetry.records.SchemaVersionError`.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Dict, Iterator, List

from repro.telemetry.records import SchemaVersionError
from repro.tracing.spans import Span, SpanRecorder

#: Schema identifier written as the first line of every JSONL export.
SPANS_SCHEMA = "repro-spans/1"

#: Fields a span record may carry; extras warn (additive evolution).
_SPAN_FIELDS = frozenset(
    {"name", "cat", "trace", "id", "start", "end", "parent", "links", "attrs"}
)


def chrome_trace(recorder: SpanRecorder) -> Dict[str, Any]:
    """The ``trace_event`` JSON document for *recorder*'s spans."""
    events: List[Dict[str, Any]] = []
    seen_traces = set()
    for span in recorder.spans:
        if span.trace_id not in seen_traces:
            seen_traces.add(span.trace_id)
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": span.trace_id,
                "args": {"name": f"trace {span.trace_id}"},
            })
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.links:
            args["links"] = list(span.links)
        args["start_ns"] = span.start
        end = span.start if span.end is None else span.end
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "pid": span.trace_id,
            "tid": span.category,
            "ts": span.start / 1000.0,
            "args": args,
        }
        if end > span.start:
            event["ph"] = "X"
            event["dur"] = (end - span.start) / 1000.0
            args["dur_ns"] = end - span.start
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: SpanRecorder, path: str) -> int:
    """Write the Chrome trace of *recorder* to *path*; returns #events."""
    document = chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# JSONL (lossless round-trip)
# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> Dict[str, Any]:
    """The compact JSONL record of one span."""
    record: Dict[str, Any] = {
        "name": span.name,
        "cat": span.category,
        "trace": span.trace_id,
        "id": span.span_id,
        "start": span.start,
        "end": span.end,
    }
    if span.parent_id is not None:
        record["parent"] = span.parent_id
    if span.links:
        record["links"] = list(span.links)
    if span.attrs:
        record["attrs"] = span.attrs
    return record


def span_from_dict(record: Dict[str, Any]) -> Span:
    """Reconstruct a span from its JSONL record."""
    span = Span(
        name=record["name"],
        category=record["cat"],
        trace_id=record["trace"],
        span_id=record["id"],
        parent_id=record.get("parent"),
        start=record["start"],
        attrs=record.get("attrs", {}),
    )
    span.end = record["end"]
    span.links = list(record.get("links", []))
    return span


def jsonl_header(recorder: SpanRecorder) -> str:
    """The schema header line opening a JSONL export."""
    return json.dumps(
        {"schema": SPANS_SCHEMA, "spans": len(recorder.spans)},
        separators=(",", ":"),
    )


def to_jsonl(recorder: SpanRecorder) -> Iterator[str]:
    """Header line, then one JSON line per span in recording order."""
    yield jsonl_header(recorder)
    for span in recorder.spans:
        yield json.dumps(span_to_dict(span), separators=(",", ":"))


def write_jsonl(recorder: SpanRecorder, path: str) -> int:
    """Write the JSONL export to *path*; returns the span count."""
    count = -1  # the header line is not a span
    with open(path, "w", encoding="utf-8") as handle:
        for line in to_jsonl(recorder):
            handle.write(line)
            handle.write("\n")
            count += 1
    return count


def parse_jsonl_lines(
    lines: Iterator[str], *, require_header: bool, context: str = "spans"
) -> List[Span]:
    """Parse a JSONL span stream, enforcing the schema header.

    With ``require_header=False`` a legacy headerless stream (every
    line a span record) still loads; the warehouse importer passes
    ``True`` so silently mis-ingesting a future span schema is
    impossible.  Unknown *extra* fields on span records are tolerated
    with one warning per stream (additive evolution).
    """
    spans: List[Span] = []
    saw_header = False
    unknown: set = set()
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not spans and not saw_header and "schema" in record:
            if record["schema"] != SPANS_SCHEMA:
                raise SchemaVersionError(
                    context, record["schema"], SPANS_SCHEMA
                )
            saw_header = True
            continue
        if not record.keys() <= _SPAN_FIELDS:
            unknown |= set(record) - _SPAN_FIELDS
        spans.append(span_from_dict(record))
    if require_header and not saw_header:
        raise SchemaVersionError(context, None, SPANS_SCHEMA)
    if unknown:
        warnings.warn(
            f"{context}: ignoring unknown span field(s) {sorted(unknown)} "
            f"(written by a newer build?)",
            stacklevel=3,
        )
    return spans


def read_jsonl(path: str) -> List[Span]:
    """Load spans back from a JSONL export (lossless round-trip)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl_lines(iter(handle), require_header=False)
