"""Span exporters: Chrome ``trace_event`` JSON and compact JSONL.

The Chrome format loads directly in ``about:tracing`` / Perfetto: spans
become complete events (``ph: "X"``) on one row per category, grouped
into one process per trace (chain instance), with instants (publication
marks, degradation transitions) as ``ph: "i"``.  Timestamps are
microseconds as the format requires; the original integer nanoseconds
survive in ``args``.

The JSONL format is the lossless interchange: one span per line,
round-trippable via :func:`read_jsonl` for offline analysis of a run
recorded elsewhere (e.g. a CI artifact).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List

from repro.tracing.spans import Span, SpanRecorder


def chrome_trace(recorder: SpanRecorder) -> Dict[str, Any]:
    """The ``trace_event`` JSON document for *recorder*'s spans."""
    events: List[Dict[str, Any]] = []
    seen_traces = set()
    for span in recorder.spans:
        if span.trace_id not in seen_traces:
            seen_traces.add(span.trace_id)
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": span.trace_id,
                "args": {"name": f"trace {span.trace_id}"},
            })
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.links:
            args["links"] = list(span.links)
        args["start_ns"] = span.start
        end = span.start if span.end is None else span.end
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "pid": span.trace_id,
            "tid": span.category,
            "ts": span.start / 1000.0,
            "args": args,
        }
        if end > span.start:
            event["ph"] = "X"
            event["dur"] = (end - span.start) / 1000.0
            args["dur_ns"] = end - span.start
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: SpanRecorder, path: str) -> int:
    """Write the Chrome trace of *recorder* to *path*; returns #events."""
    document = chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# JSONL (lossless round-trip)
# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> Dict[str, Any]:
    """The compact JSONL record of one span."""
    record: Dict[str, Any] = {
        "name": span.name,
        "cat": span.category,
        "trace": span.trace_id,
        "id": span.span_id,
        "start": span.start,
        "end": span.end,
    }
    if span.parent_id is not None:
        record["parent"] = span.parent_id
    if span.links:
        record["links"] = list(span.links)
    if span.attrs:
        record["attrs"] = span.attrs
    return record


def span_from_dict(record: Dict[str, Any]) -> Span:
    """Reconstruct a span from its JSONL record."""
    span = Span(
        name=record["name"],
        category=record["cat"],
        trace_id=record["trace"],
        span_id=record["id"],
        parent_id=record.get("parent"),
        start=record["start"],
        attrs=record.get("attrs", {}),
    )
    span.end = record["end"]
    span.links = list(record.get("links", []))
    return span


def to_jsonl(recorder: SpanRecorder) -> Iterator[str]:
    """One JSON line per recorded span, in recording order."""
    for span in recorder.spans:
        yield json.dumps(span_to_dict(span), separators=(",", ":"))


def write_jsonl(recorder: SpanRecorder, path: str) -> int:
    """Write the JSONL export to *path*; returns the span count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in to_jsonl(recorder):
            handle.write(line)
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Span]:
    """Load spans back from a JSONL export (lossless round-trip)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans
