"""LTTng-like tracing and offline latency reconstruction.

The paper instruments the software with LTTng, records traces of an
*unmonitored* run, and extracts segment latencies from them to feed the
budgeting CSP (Sec. III-C: "we record one or multiple traces (without
monitoring) to measure segment latencies").  This package mirrors that:

- :class:`~repro.tracing.tracer.Tracer` subscribes to the simulator's
  trace hooks and buffers events (middleware publish/receive, monitor
  and scheduler events).
- :mod:`~repro.tracing.analysis` reconstructs per-segment latency
  series from the buffered communication events, pairing the n-th start
  with the n-th end event (valid under in-order delivery).
- :mod:`~repro.tracing.spans` adds *causal* span tracing on top: a
  recorder attached as ``sim.spans`` collects parent-linked intervals
  across kernel dispatch, DDS hops, executors and monitors.
- :mod:`~repro.tracing.critical_path` walks the span graph backwards
  per chain instance and attributes the end-to-end latency to edges
  whose durations sum exactly to it.
- :mod:`~repro.tracing.export` writes Chrome ``trace_event`` JSON and
  compact JSONL.
"""

from repro.tracing.tracer import TraceEvent, Tracer
from repro.tracing.analysis import (
    endpoint_events,
    segment_latencies_from_trace,
    chain_trace_from_tracer,
)
from repro.tracing.spans import Span, SpanRecorder
from repro.tracing.context import SpanContext
from repro.tracing.critical_path import (
    CriticalPath,
    CriticalPathAnalyzer,
    attribute_chain,
    build_edges,
    render_attribution,
    validate_spans,
)
from repro.tracing.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "endpoint_events",
    "segment_latencies_from_trace",
    "chain_trace_from_tracer",
    "Span",
    "SpanRecorder",
    "SpanContext",
    "CriticalPath",
    "CriticalPathAnalyzer",
    "attribute_chain",
    "build_edges",
    "render_attribution",
    "validate_spans",
    "chrome_trace",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
