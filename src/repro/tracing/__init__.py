"""LTTng-like tracing and offline latency reconstruction.

The paper instruments the software with LTTng, records traces of an
*unmonitored* run, and extracts segment latencies from them to feed the
budgeting CSP (Sec. III-C: "we record one or multiple traces (without
monitoring) to measure segment latencies").  This package mirrors that:

- :class:`~repro.tracing.tracer.Tracer` subscribes to the simulator's
  trace hooks and buffers events (middleware publish/receive, monitor
  and scheduler events).
- :mod:`~repro.tracing.analysis` reconstructs per-segment latency
  series from the buffered communication events, pairing the n-th start
  with the n-th end event (valid under in-order delivery).
"""

from repro.tracing.tracer import TraceEvent, Tracer
from repro.tracing.analysis import (
    endpoint_events,
    segment_latencies_from_trace,
    chain_trace_from_tracer,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "endpoint_events",
    "segment_latencies_from_trace",
    "chain_trace_from_tracer",
]
