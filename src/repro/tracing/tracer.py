"""Event tracer buffering simulator trace points.

Events are grouped by name for cheap retrieval.  An optional name
prefix filter keeps high-rate runs lean (like enabling only selected
LTTng tracepoints), and a capacity bound emulates finite trace buffers
(oldest events are discarded first, counted per name).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace point (global simulation time)."""

    name: str
    timestamp: int
    fields: dict


class Tracer:
    """Buffers trace points emitted through ``Simulator.emit_trace``.

    Parameters
    ----------
    sim:
        Simulator to attach to.
    prefixes:
        Only record events whose name starts with one of these (None
        records everything).
    capacity_per_name:
        Ring-buffer bound per event name (None = unbounded).
    """

    def __init__(
        self,
        sim: Simulator,
        prefixes: Optional[Sequence[str]] = None,
        capacity_per_name: Optional[int] = None,
    ):
        self.sim = sim
        self.prefixes = tuple(prefixes) if prefixes else None
        self.capacity = capacity_per_name
        self._by_name: Dict[str, Deque[TraceEvent]] = {}
        self.recorded = 0
        self.discarded = 0
        self.enabled = True
        sim.add_trace_hook(self._on_event)

    def _on_event(self, name: str, timestamp: int, fields: dict) -> None:
        if not self.enabled:
            return
        if self.prefixes is not None and not name.startswith(self.prefixes):
            return
        bucket = self._by_name.get(name)
        if bucket is None:
            bucket = deque(maxlen=self.capacity)
            self._by_name[name] = bucket
        if self.capacity is not None and len(bucket) == self.capacity:
            self.discarded += 1
        bucket.append(TraceEvent(name, timestamp, fields))
        self.recorded += 1

    def events(self, name: str) -> List[TraceEvent]:
        """All recorded events of one name, in time order."""
        return list(self._by_name.get(name, ()))

    def names(self) -> List[str]:
        """Event names seen so far."""
        return sorted(self._by_name)

    def count(self, name: str) -> int:
        """Number of buffered events of one name."""
        return len(self._by_name.get(name, ()))

    def clear(self) -> None:
        """Drop all buffered events (statistics keep counting)."""
        self._by_name.clear()

    def select(self, name: str, **field_filters) -> List[TraceEvent]:
        """Events of *name* whose fields match all given key=value pairs."""
        out = []
        for event in self._by_name.get(name, ()):
            if all(event.fields.get(k) == v for k, v in field_filters.items()):
                out.append(event)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tracer {self.recorded} events, {len(self._by_name)} names>"
