"""Critical-path extraction and latency attribution over recorded spans.

Given a finished run with span tracing enabled (``StackConfig(spans=True)``),
this module answers *where an end-to-end latency came from*: for each
chain instance (frame) it walks the causal span graph backwards from the
chain's end event to its start publication and decomposes the elapsed
time into contiguous edges -- local compute, DDS transport, executor
queueing, exception handling -- whose durations **sum exactly** to the
recorded end-to-end latency (a telescoping construction over the path
spans' start boundaries, verified per instance).

Aggregation folds per-edge durations into
:class:`~repro.telemetry.histogram.StreamingHistogram` sketches (p50 /
p95 / p99 per edge and per category) and reports budget burn against the
chain's deadline split: each segment's observed span against its
``d_mon`` (Eqs. (3)-(5): violations must be *detected* within ``d_mon``
so handling completes within ``d = d_mon + d_ex``) and the whole
instance against ``budget_e2e`` (Eqs. (6)-(7): segment budgets compose
to the end-to-end deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.events import EventKind, EventPoint
from repro.telemetry.histogram import StreamingHistogram
from repro.tracing.spans import Span, SpanRecorder


def _guid_matches(guid: str, point: EventPoint) -> bool:
    """Does a DDS entity guid belong to *point*'s ECU + process?

    Guids are ``{ecu}/{process}#{id}`` plus a ``/wN`` / ``/rN`` entity
    suffix; an empty process on the event point matches any process.
    """
    if not guid.startswith(f"{point.ecu}/"):
        return False
    if point.process and f"/{point.process}#" not in guid:
        return False
    return True


# ----------------------------------------------------------------------
# Validation (shared with the property-based test suite)
# ----------------------------------------------------------------------
def validate_spans(recorder: SpanRecorder) -> List[str]:
    """Structural well-formedness violations of a recorded span set.

    Checks, per span: closed (``end`` is not None) with ``end >= start``;
    the parent exists, belongs to the same trace, and does not start
    after its child; every link target exists.  Per trace: exactly one
    root.  Returns human-readable violation strings (empty == valid).
    """
    problems: List[str] = []
    by_id = {span.span_id: span for span in recorder.spans}
    roots_per_trace: Dict[int, int] = {}
    for span in recorder.spans:
        label = f"span {span.span_id} ({span.name})"
        if span.end is None:
            problems.append(f"{label}: still open")
        elif span.end < span.start:
            problems.append(f"{label}: end {span.end} < start {span.start}")
        if span.parent_id is None:
            roots_per_trace[span.trace_id] = (
                roots_per_trace.get(span.trace_id, 0) + 1
            )
        else:
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(f"{label}: dangling parent {span.parent_id}")
            else:
                if parent.trace_id != span.trace_id:
                    problems.append(
                        f"{label}: parent {parent.span_id} is in "
                        f"trace {parent.trace_id}, not {span.trace_id}"
                    )
                if parent.start > span.start:
                    problems.append(
                        f"{label}: starts at {span.start} before its "
                        f"parent's start {parent.start}"
                    )
        for link in span.links:
            if link not in by_id:
                problems.append(f"{label}: dangling link {link}")
    for trace_id, n_roots in roots_per_trace.items():
        if n_roots != 1:
            problems.append(f"trace {trace_id}: {n_roots} roots")
    return problems


# ----------------------------------------------------------------------
# Per-instance critical path
# ----------------------------------------------------------------------
@dataclass
class Edge:
    """One contiguous slice of a chain instance's end-to-end time."""

    name: str
    category: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The attributed latency of one chain instance (frame)."""

    chain: str
    frame: int
    #: Path spans in causal (forward) order, start publication first.
    spans: List[Span]
    edges: List[Edge]
    start_ts: int
    end_ts: int

    @property
    def e2e_ns(self) -> int:
        """End-to-end latency: chain end event minus start publication."""
        return self.end_ts - self.start_ts

    def by_category(self) -> Dict[str, int]:
        """Total ns per edge category (sums to :attr:`e2e_ns`)."""
        totals: Dict[str, int] = {}
        for edge in self.edges:
            totals[edge.category] = totals.get(edge.category, 0) + edge.duration
        return totals

    def verify(self) -> None:
        """Assert the exact-attribution invariant of this instance."""
        total = sum(edge.duration for edge in self.edges)
        if total != self.e2e_ns:
            raise AssertionError(
                f"{self.chain} frame {self.frame}: edges sum to {total} ns "
                f"but e2e is {self.e2e_ns} ns"
            )
        for edge in self.edges:
            if edge.duration < 0:
                raise AssertionError(
                    f"{self.chain} frame {self.frame}: negative edge "
                    f"{edge.name} ({edge.duration} ns)"
                )


def build_edges(path_spans: List[Span]) -> List[Edge]:
    """Decompose a causal span path into telescoping edges.

    For every span but the last, the edge runs from the span's start to
    the *next* span's start; when the next span starts after this one
    ended, the remainder is a separate ``queue`` edge (executor backlog,
    monitor-thread wakeup latency, a fusion input waiting for its
    partner).  The last span contributes its full extent.  Durations
    therefore sum exactly to ``last.end - first.start`` by construction.
    """
    edges: List[Edge] = []
    for span, nxt in zip(path_spans, path_spans[1:]):
        boundary = nxt.start
        if boundary <= (span.end if span.end is not None else boundary):
            edges.append(Edge(span.name, span.category, span.start, boundary))
        else:
            edges.append(Edge(span.name, span.category, span.start, span.end))
            edges.append(Edge(f"queue:{nxt.name}", "queue", span.end, boundary))
    last = path_spans[-1]
    edges.append(Edge(last.name, last.category, last.start, last.end))
    return edges


class CriticalPathAnalyzer:
    """Extracts per-instance critical paths from one recorded run.

    Parameters
    ----------
    recorder:
        The run's :class:`~repro.tracing.spans.SpanRecorder`
        (``stack.spans`` after a ``StackConfig(spans=True)`` run).
    """

    def __init__(self, recorder: SpanRecorder):
        self.recorder = recorder
        self._by_id: Dict[int, Span] = {
            span.span_id: span for span in recorder.spans
        }
        #: (topic, frame) -> publication instants, in recording order.
        self._pubs: Dict[Tuple[str, int], List[Span]] = {}
        #: (topic, frame) -> transport spans, in recording order.
        self._transports: Dict[Tuple[str, int], List[Span]] = {}
        for span in recorder.spans:
            frame = span.attrs.get("frame")
            topic = span.attrs.get("topic")
            if frame is None or topic is None:
                continue
            if span.name == "dds.publish":
                self._pubs.setdefault((topic, frame), []).append(span)
            elif span.name == "dds.transport":
                self._transports.setdefault((topic, frame), []).append(span)

    # ------------------------------------------------------------------
    def _anchor(self, point: EventPoint, frame: int) -> Optional[Span]:
        """The span realizing *point* for *frame*.

        The earliest match by (start, span_id) wins -- e.g. the original
        publication over a later recovery republication -- and the
        choice is invariant under recording-order permutations.
        """
        if point.kind is EventKind.PUBLICATION:
            candidates = self._pubs.get((point.topic, frame), [])
            key = "writer"
        else:
            candidates = self._transports.get((point.topic, frame), [])
            key = "reader"
        best: Optional[Span] = None
        for span in candidates:
            if _guid_matches(span.attrs.get(key, ""), point):
                if best is None or (span.start, span.span_id) < (
                    best.start, best.span_id
                ):
                    best = span
        return best

    def _backward_path(self, end: Span, target_id: int) -> Optional[List[Span]]:
        """Causal predecessors from *end* back to *target_id* (DFS).

        Predecessor edges are the parent plus any links (causal joins);
        the returned list is in forward order, target first.
        """
        stack: List[Tuple[int, List[int]]] = [(end.span_id, [end.span_id])]
        visited = {end.span_id}
        while stack:
            span_id, trail = stack.pop()
            if span_id == target_id:
                return [self._by_id[sid] for sid in reversed(trail)]
            span = self._by_id.get(span_id)
            if span is None:
                continue
            preds = list(span.links)
            if span.parent_id is not None:
                preds.append(span.parent_id)
            for pred in preds:
                if pred not in visited:
                    visited.add(pred)
                    stack.append((pred, trail + [pred]))
        return None

    # ------------------------------------------------------------------
    def instance_path(self, chain, frame: int) -> Optional[CriticalPath]:
        """The critical path of one chain instance, or None if the
        instance never completed (dropped frame, chain-terminal miss)."""
        start = self._anchor(chain.segments[0].start, frame)
        end = self._anchor(chain.segments[-1].end, frame)
        if start is None or end is None:
            return None
        path_spans = self._backward_path(end, start.span_id)
        if path_spans is None:
            return None
        result = CriticalPath(
            chain=chain.name,
            frame=frame,
            spans=path_spans,
            edges=build_edges(path_spans),
            start_ts=start.start,
            end_ts=end.end if end.end is not None else end.start,
        )
        result.verify()
        return result

    def analyze(self, chain, frames: Iterable[int]) -> List[CriticalPath]:
        """Critical paths of *chain* for every completed frame."""
        paths = []
        for frame in frames:
            path = self.instance_path(chain, frame)
            if path is not None:
                paths.append(path)
        return paths

    # ------------------------------------------------------------------
    def segment_spans(
        self, chain, path: CriticalPath
    ) -> List[Tuple[str, Optional[int]]]:
        """(segment name, observed span ns) along one instance's path.

        A segment's observed span is its end anchor instant minus its
        start anchor instant (publication span start / transport span
        end, per event kind); None when an anchor is missing from the
        trace (e.g. the data object was substituted during recovery).
        """
        out: List[Tuple[str, Optional[int]]] = []
        for segment in chain.segments:
            start = self._anchor(segment.start, path.frame)
            end = self._anchor(segment.end, path.frame)
            if start is None or end is None:
                out.append((segment.name, None))
                continue
            start_ts = (
                start.start
                if segment.start.kind is EventKind.PUBLICATION
                else (start.end if start.end is not None else start.start)
            )
            end_ts = (
                end.start
                if segment.end.kind is EventKind.PUBLICATION
                else (end.end if end.end is not None else end.start)
            )
            out.append((segment.name, end_ts - start_ts))
        return out


# ----------------------------------------------------------------------
# Aggregation and reporting
# ----------------------------------------------------------------------
@dataclass
class ChainAttribution:
    """Aggregated latency attribution of one chain across frames."""

    chain: str
    n_instances: int = 0
    #: Per-edge-name duration sketches (only non-zero durations folded).
    edge_histograms: Dict[str, StreamingHistogram] = field(default_factory=dict)
    #: Per-category duration sketches (one sample per instance).
    category_histograms: Dict[str, StreamingHistogram] = field(default_factory=dict)
    #: End-to-end latency sketch (one sample per instance).
    e2e_histogram: StreamingHistogram = field(default_factory=StreamingHistogram)
    #: segment name -> (observed-span sketch, d_mon budget or None).
    segment_burn: Dict[str, Tuple[StreamingHistogram, Optional[int]]] = field(
        default_factory=dict
    )
    budget_e2e: Optional[int] = None

    def category_share(self) -> Dict[str, float]:
        """Fraction of total attributed time per category."""
        totals = {
            name: hist.total for name, hist in self.category_histograms.items()
        }
        grand = sum(totals.values())
        if grand <= 0:
            return {name: 0.0 for name in totals}
        return {name: value / grand for name, value in totals.items()}


def attribute_chain(
    analyzer: CriticalPathAnalyzer,
    chain,
    frames: Iterable[int],
    paths: Optional[List[CriticalPath]] = None,
) -> ChainAttribution:
    """Fold every completed instance of *chain* into an attribution.

    ``paths`` may carry the instances already extracted via
    :meth:`CriticalPathAnalyzer.analyze` (the warehouse ingester does
    this to persist per-instance edges and the aggregate sketches from
    one walk); when omitted they are extracted here.
    """
    result = ChainAttribution(chain=chain.name, budget_e2e=chain.budget_e2e)
    for segment in chain.segments:
        result.segment_burn[segment.name] = (StreamingHistogram(), segment.d_mon)
    if paths is None:
        paths = analyzer.analyze(chain, frames)
    for path in paths:
        result.n_instances += 1
        result.e2e_histogram.add(path.e2e_ns)
        for edge in path.edges:
            if edge.duration > 0:
                result.edge_histograms.setdefault(
                    edge.name, StreamingHistogram()
                ).add(edge.duration)
        for category, total in path.by_category().items():
            result.category_histograms.setdefault(
                category, StreamingHistogram()
            ).add(total)
        for name, observed in analyzer.segment_spans(chain, path):
            if observed is not None:
                result.segment_burn[name][0].add(observed)
    return result


def _pcts(hist: StreamingHistogram) -> str:
    def fmt(q: float) -> str:
        value = hist.quantile(q)
        return "-" if value is None else f"{value / 1e6:8.3f}"

    return f"p50={fmt(0.50)}  p95={fmt(0.95)}  p99={fmt(0.99)} ms"


def render_attribution(attribution: ChainAttribution) -> str:
    """Human-readable attribution report of one chain."""
    lines = [
        f"chain {attribution.chain}: {attribution.n_instances} instances",
        f"  e2e        {_pcts(attribution.e2e_histogram)}",
    ]
    shares = attribution.category_share()
    for category in sorted(
        attribution.category_histograms,
        key=lambda name: -attribution.category_histograms[name].total,
    ):
        hist = attribution.category_histograms[category]
        lines.append(
            f"  {category:<10} {_pcts(hist)}  share={shares[category]:5.1%}"
        )
    lines.append("  budget burn (observed span vs d_mon):")
    for name, (hist, budget) in attribution.segment_burn.items():
        p95 = hist.quantile(0.95)
        if p95 is None:
            lines.append(f"    {name:<12} no completed anchors")
        elif budget is None:
            lines.append(f"    {name:<12} p95={p95 / 1e6:.3f} ms (no budget)")
        else:
            lines.append(
                f"    {name:<12} p95={p95 / 1e6:.3f} ms "
                f"of {budget / 1e6:.3f} ms ({p95 / budget:5.1%})"
            )
    if attribution.budget_e2e:
        p95 = attribution.e2e_histogram.quantile(0.95)
        if p95 is not None:
            lines.append(
                f"  e2e p95 burn: {p95 / 1e6:.3f} ms of "
                f"{attribution.budget_e2e / 1e6:.3f} ms "
                f"({p95 / attribution.budget_e2e:5.1%})"
            )
    lines.append("  slowest edges (p95):")
    ranked = sorted(
        attribution.edge_histograms.items(),
        key=lambda item: -(item[1].quantile(0.95) or 0.0),
    )[:6]
    for name, hist in ranked:
        lines.append(f"    {name:<32} {_pcts(hist)}  n={hist.count}")
    return "\n".join(lines)
