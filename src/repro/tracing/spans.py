"""Causal spans and the recorder that collects them.

A :class:`Span` is one interval (or instant) of causally-attributed
work: a lidar driver callback, a DDS transport hop, a monitor exception
handler.  Spans form trees via ``parent_id`` plus optional cross-tree
``links`` (the fusion join, where one chain instance waits for data
whose causal history lives in another trace).

The :class:`SpanRecorder` is attached to a simulator as ``sim.spans``
and follows the same guarded duck-typed hook discipline as
``telemetry_sinks``: every instrumented call site performs exactly one
``if spans is not None`` (or one attribute load feeding it) when tracing
is disabled, and the golden-trace digests are bit-identical either way
-- the recorder draws no randomness, schedules no events and emits no
kernel trace points.

Ambient propagation
-------------------
``recorder.current`` holds the context of the work item being executed
right now.  The kernel captures it into every scheduled event and
restores it at dispatch; the scheduler restores a thread-carried context
(``SimThread.span_ctx``) whenever it resumes a generator thread; the
executor stamps it onto queue entries.  ``begin()`` defaults the parent
to the ambient context, so most call sites never pass one explicitly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.tracing.context import SpanContext

#: Sentinel distinguishing "no parent given, use ambient" from an
#: explicit ``parent=None`` (which forces a new root / trace).
_AMBIENT = object()


class Span:
    """One recorded interval of attributed work.

    ``end`` is ``None`` while the span is open.  ``category`` feeds the
    critical-path decomposition buckets (``compute``, ``network``,
    ``exception``, ...).  ``links`` lists span ids of *additional*
    causal predecessors beyond the parent (causal joins).
    """

    __slots__ = (
        "name",
        "category",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "links",
    )

    def __init__(
        self,
        name: str,
        category: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.category = category
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[int] = None
        self.attrs = attrs
        self.links: List[int] = []

    @property
    def context(self) -> SpanContext:
        """The propagatable identity of this span."""
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> int:
        """Span duration in ns (0 while still open)."""
        if self.end is None:
            return 0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "open" if self.end is None else self.end
        return (
            f"<Span {self.name} [{self.category}] "
            f"t{self.trace_id}/s{self.span_id} parent={self.parent_id} "
            f"{self.start}..{end}>"
        )


class SpanRecorder:
    """Collects spans for one simulator run (``sim.spans``).

    Parameters
    ----------
    sim:
        The owning simulator; span timestamps default to ``sim.now``
        (simulated time, *not* per-ECU drifting clocks, so edge
        durations along a cross-ECU path telescope exactly).
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        #: Ambient context of the work item currently executing.
        self.current: Optional[SpanContext] = None
        self._next_span_id = 0
        self._next_trace_id = 0
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        #: Spans begun but not yet ended (diagnostics).
        self.open_spans = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        category: str,
        parent: Any = _AMBIENT,
        start: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  Does *not* change the ambient context.

        ``parent`` defaults to the ambient context; pass ``None``
        explicitly to force a new root (and a new trace).  ``start``
        defaults to the current simulated time but may be overridden to
        anchor the span where its cause happened (e.g. a transport span
        starting at the publication instant).
        """
        if parent is _AMBIENT:
            parent = self.current
        if parent is None:
            self._next_trace_id += 1
            trace_id = self._next_trace_id
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        self._next_span_id += 1
        span = Span(
            name,
            category,
            trace_id,
            self._next_span_id,
            parent_id,
            self.sim.now if start is None else start,
            attrs,
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self.open_spans += 1
        return span

    def end(self, span: Span, end: Optional[int] = None) -> Span:
        """Close *span* (idempotent; the first close wins)."""
        if span.end is None:
            span.end = self.sim.now if end is None else end
            self.open_spans -= 1
        return span

    def instant(
        self,
        name: str,
        category: str,
        parent: Any = _AMBIENT,
        ts: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Record a zero-duration span (publication marks, transitions)."""
        when = self.sim.now if ts is None else ts
        span = self.begin(name, category, parent=parent, start=when, **attrs)
        span.end = when
        self.open_spans -= 1
        return span

    # ------------------------------------------------------------------
    # Links (causal joins)
    # ------------------------------------------------------------------
    def add_link(self, span: Span, ctx: Optional[SpanContext]) -> None:
        """Record *ctx* as an extra causal predecessor of *span*."""
        if ctx is not None:
            span.links.append(ctx.span_id)

    def link_current(self, ctx: Optional[SpanContext]) -> None:
        """Link *ctx* into the span the ambient context points at."""
        if ctx is None or self.current is None:
            return
        span = self._by_id.get(self.current.span_id)
        if span is not None:
            span.links.append(ctx.span_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, span_id: int) -> Optional[Span]:
        """The span with *span_id*, or None."""
        return self._by_id.get(span_id)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanRecorder spans={len(self.spans)} open={self.open_spans}>"
