"""``python -m repro bench`` -- run benchmark suites, compare baselines.

Examples
--------
Run everything and write ``BENCH_kernel.json`` / ``BENCH_e2e.json``::

    python -m repro bench --suite all --out .

Regression-check the kernel suite against a committed baseline (exits
non-zero when any benchmark got more than ``--threshold`` slower)::

    python -m repro bench --suite kernel --quick --compare BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.harness import (
    DEFAULT_THRESHOLD,
    check_throughput_floors,
    compare_suites,
    load_suite,
    render_suite,
    suite_to_json,
    write_suite,
)
from repro.bench.suites import SUITES, run_suite


def bench_file_name(suite: str) -> str:
    """Canonical file name for a suite (``BENCH_kernel.json``...)."""
    return f"BENCH_{suite}.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Micro/e2e benchmarks with JSON baselines and "
        "regression comparison.",
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES) + ["all"],
        default="all",
        help="which suite to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single iteration, no warmup (CI smoke mode)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="BENCH",
        help="run only the named benchmark(s); repeatable and "
        "comma-separable.  Floor references are pulled in "
        "automatically; --compare is restricted to the selected names",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write BENCH_<suite>.json files into DIR",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="baseline BENCH_*.json (or a directory holding them); "
        "exit 1 on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed median slowdown fraction for --compare "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--warehouse",
        type=Path,
        default=None,
        metavar="DB",
        help="span warehouse to attribute flagged --compare regressions "
        "against (writes an attribution-diff artifact)",
    )
    parser.add_argument(
        "--attr-base",
        default="",
        metavar="SEL",
        help="warehouse base cohort selector, e.g. commit=abc "
        "(default: all runs)",
    )
    parser.add_argument(
        "--attr-head",
        default="",
        metavar="SEL",
        help="warehouse head cohort selector (default: all runs)",
    )
    parser.add_argument(
        "--attribution-out",
        type=Path,
        default=Path("attribution_diff.json"),
        metavar="PATH",
        help="where the attribution-diff artifact is written "
        "(default: attribution_diff.json)",
    )
    args = parser.parse_args(argv)

    only: Optional[List[str]] = None
    if args.only:
        only = [
            name for entry in args.only for name in entry.split(",") if name
        ]

    suites = sorted(SUITES) if args.suite == "all" else [args.suite]
    if only is not None:
        # Restrict to suites that contain at least one selected bench;
        # run_suite validates the names within each suite it runs.
        known = {
            name for entries in SUITES.values() for name, _, _, _ in entries
        }
        unknown = sorted(set(only) - known)
        if unknown:
            print(f"unknown benchmark(s): {unknown}")
            return 2
        suites = [
            suite for suite in suites
            if any(name for name, _, _, _ in SUITES[suite] if name in only)
        ]
    failed = False
    for suite in suites:
        suite_only = None
        if only is not None:
            suite_only = [
                name for name, _, _, _ in SUITES[suite] if name in only
            ]
        results = run_suite(suite, quick=args.quick, only=suite_only)
        print(f"==> {suite}")
        print(render_suite(results))
        floor_report = check_throughput_floors(suite_to_json(suite, results))
        if floor_report.checks:
            print(floor_report.render())
            failed = failed or not floor_report.passed
        if args.out is not None:
            if only is not None:
                print("--only with --out would write a partial baseline; "
                      "refusing")
                return 2
            args.out.mkdir(parents=True, exist_ok=True)
            path = write_suite(args.out / bench_file_name(suite), suite, results)
            print(f"wrote {path}")
        if args.compare is not None:
            baseline_path = args.compare
            if baseline_path.is_dir():
                baseline_path = baseline_path / bench_file_name(suite)
            try:
                baseline = load_suite(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"cannot load baseline {baseline_path}: {exc}")
                failed = True
                continue
            if only is not None:
                # A filtered run must not fail on baseline benches it
                # never executed.
                ran = {r.name for r in results}
                baseline = dict(baseline)
                baseline["benchmarks"] = {
                    name: entry
                    for name, entry in baseline["benchmarks"].items()
                    if name in ran
                }
            report = compare_suites(
                suite_to_json(suite, results), baseline, threshold=args.threshold
            )
            print(report.render())
            if not report.passed and args.warehouse is not None:
                # Turn "the suite regressed" into "these edge
                # categories / segments regressed": attach the
                # warehouse attribution diff as a CI artifact.
                from repro.warehouse import (
                    RunSelector,
                    attach_attribution_diff,
                )

                out = args.attribution_out
                if len(suites) > 1:
                    out = out.with_name(f"{out.stem}_{suite}{out.suffix}")
                artifact = attach_attribution_diff(
                    report,
                    args.warehouse,
                    out,
                    RunSelector.parse(args.attr_base),
                    RunSelector.parse(args.attr_head),
                )
                print(f"wrote attribution diff to {artifact}")
            failed = failed or not report.passed
        print()
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
