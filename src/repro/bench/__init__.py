"""Benchmark harness: hot-path microbenches, JSON baselines, regression
comparison (``python -m repro bench``)."""

from repro.bench.harness import (
    DEFAULT_THRESHOLD,
    SCHEMA,
    BenchResult,
    CompareReport,
    Comparison,
    compare_suites,
    load_suite,
    render_suite,
    run_bench,
    suite_to_json,
    validate_suite,
    write_suite,
)
from repro.bench.suites import SUITES, run_suite

__all__ = [
    "BenchResult",
    "CompareReport",
    "Comparison",
    "DEFAULT_THRESHOLD",
    "SCHEMA",
    "SUITES",
    "compare_suites",
    "load_suite",
    "render_suite",
    "run_bench",
    "run_suite",
    "suite_to_json",
    "validate_suite",
    "write_suite",
]
