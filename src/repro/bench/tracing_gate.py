"""Same-process A/B gate for the disabled-tracing kernel hot path.

Span tracing is wired into the kernel dispatch loop behind ``is None``
guards (see :mod:`repro.sim.kernel`); the design contract is that those
guards are near-free while tracing is off.  This module *measures* that
contract instead of trusting it: it times the real kernel with tracing
disabled against an in-process replica of the pre-tracing dispatch loop
(no ``spans`` guard, no ``ctx`` slot on events) and fails when the
guarded path's median exceeds the replica's by more than the threshold.

Noise handling: both sides run in the same process, interleaved A/B
with the order flipped on every trial, so clock drift, CPU-frequency
changes and allocator warmup hit both sides symmetrically.  The verdict
compares *medians* over the trial set, which drops one-off scheduler
hiccups on either side.

The recorder-attached cost (spans *on*) is reported alongside for
context but never gated -- recording spans does real work, and its cost
is a documented trade-off, not a regression.

Run it directly::

    PYTHONPATH=src python -m repro.bench.tracing_gate --threshold 0.03
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

#: Events dispatched per timing trial.  Large enough that a trial takes
#: several milliseconds, so perf_counter granularity and per-call
#: overheads disappear into the measurement.
DEFAULT_EVENTS = 20_000

#: Trials per side.  Odd, so the order-flip interleave is balanced
#: around the median sample.
DEFAULT_TRIALS = 15

#: Maximum tolerated median overhead of the guarded (tracing present
#: but disabled) path over the pre-tracing replica.
DEFAULT_THRESHOLD = 0.03


# ----------------------------------------------------------------------
# Replica of the pre-tracing hot path
# ----------------------------------------------------------------------
class _BaselineEvent:
    """``ScheduledEvent`` as it was before span tracing: no ctx slot."""

    __slots__ = ("callback", "args", "time", "cancelled", "label")

    def __init__(
        self,
        callback: Callable[..., None],
        args: tuple,
        time: int,
        label: str = "",
    ) -> None:
        self.callback = callback
        self.args = args
        self.time = time
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        self.cancelled = True


class _BaselineSim:
    """Replica of the pre-tracing ``Simulator`` schedule/drain hot path.

    Only the members the dispatch workload touches are replicated, but
    those are replicated faithfully -- same past-check, same heap entry
    layout, same pre-bound ``heappop``, same full-drain loop -- so the
    A/B difference isolates exactly what tracing added: the ``ctx``
    slot initializer, the per-schedule guard, and the fast-path
    ``spans is None`` branch in ``run``.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Any] = []
        self._next_seq = itertools.count().__next__

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> _BaselineEvent:
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time}, now is {self.now}")
        event = _BaselineEvent(callback, args, time, label=label)
        heapq.heappush(self._heap, (time, priority, self._next_seq(), event))
        return event

    def run(self) -> int:
        count = 0
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            time, _prio, _seq, event = heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            event.callback(*event.args)
            count += 1
        return count


# ----------------------------------------------------------------------
# Trials
# ----------------------------------------------------------------------
def _drive(sim: Any, n_events: int) -> int:
    callback = (lambda: None)
    schedule_at = sim.schedule_at
    for i in range(n_events):
        schedule_at(i, callback)
    return sim.run()


def _baseline_trial(n_events: int) -> int:
    return _drive(_BaselineSim(), n_events)


def _guarded_trial(n_events: int) -> int:
    from repro.sim import Simulator

    return _drive(Simulator(), n_events)


def _recorder_trial(n_events: int) -> int:
    from repro.sim import Simulator
    from repro.tracing.spans import SpanRecorder

    sim = Simulator()
    recorder = SpanRecorder(sim)
    sim.spans = recorder
    root = recorder.begin("gate", "compute", parent=None)
    recorder.current = root.context
    fired = _drive(sim, n_events)
    recorder.end(root)
    return fired


def _time_ns(fn: Callable[[int], int], n_events: int) -> int:
    t0 = time.perf_counter_ns()
    fired = fn(n_events)
    elapsed = time.perf_counter_ns() - t0
    if fired != n_events:
        raise AssertionError(f"trial fired {fired} of {n_events} events")
    return elapsed


# ----------------------------------------------------------------------
# Gate
# ----------------------------------------------------------------------
@dataclass
class GateResult:
    """Outcome of one A/B gate run."""

    trials: int
    n_events: int
    threshold: float
    baseline_median_ns: int
    guarded_median_ns: int
    recorder_median_ns: int
    #: guarded / baseline - 1: the cost of tracing being merely present.
    disabled_overhead: float
    #: recorder / baseline - 1: the cost of tracing being on (reported,
    #: never gated).
    enabled_overhead: float

    @property
    def passed(self) -> bool:
        return self.disabled_overhead <= self.threshold

    def render(self) -> str:
        per_event = self.guarded_median_ns / self.n_events
        lines = [
            f"tracing overhead gate ({self.trials} interleaved trials, "
            f"{self.n_events} events/trial)",
            f"  pre-tracing replica   {self.baseline_median_ns / 1e6:>9.3f}ms",
            f"  guarded, spans off    {self.guarded_median_ns / 1e6:>9.3f}ms "
            f"({per_event:.0f}ns/event, "
            f"{self.disabled_overhead:+.2%} vs replica)",
            f"  recorder, spans on    {self.recorder_median_ns / 1e6:>9.3f}ms "
            f"({self.enabled_overhead:+.2%} vs replica, informational)",
            f"  verdict: disabled overhead {self.disabled_overhead:+.2%} "
            f"{'<=' if self.passed else '>'} threshold "
            f"{self.threshold:+.2%} -- {'PASS' if self.passed else 'FAIL'}",
        ]
        return "\n".join(lines)


def run_gate(
    trials: int = DEFAULT_TRIALS,
    n_events: int = DEFAULT_EVENTS,
    threshold: float = DEFAULT_THRESHOLD,
) -> GateResult:
    """Run the interleaved A/B trials and fold them into a verdict."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    # Warm both paths (imports, bytecode caches, allocator pools).
    _baseline_trial(n_events)
    _guarded_trial(n_events)
    _recorder_trial(n_events)

    baseline: List[int] = []
    guarded: List[int] = []
    recorder: List[int] = []
    for trial in range(trials):
        # Flip the order every trial so slow drift (thermal, frequency
        # scaling) cancels instead of biasing one side.
        if trial % 2 == 0:
            baseline.append(_time_ns(_baseline_trial, n_events))
            guarded.append(_time_ns(_guarded_trial, n_events))
        else:
            guarded.append(_time_ns(_guarded_trial, n_events))
            baseline.append(_time_ns(_baseline_trial, n_events))
        recorder.append(_time_ns(_recorder_trial, n_events))

    baseline_median = int(statistics.median(baseline))
    guarded_median = int(statistics.median(guarded))
    recorder_median = int(statistics.median(recorder))
    return GateResult(
        trials=trials,
        n_events=n_events,
        threshold=threshold,
        baseline_median_ns=baseline_median,
        guarded_median_ns=guarded_median,
        recorder_median_ns=recorder_median,
        disabled_overhead=guarded_median / baseline_median - 1.0,
        enabled_overhead=recorder_median / baseline_median - 1.0,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.tracing_gate",
        description="Fail when the disabled-tracing kernel hot path is "
        "more than --threshold slower than a pre-tracing replica.",
    )
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    args = parser.parse_args(argv)
    result = run_gate(
        trials=args.trials, n_events=args.events, threshold=args.threshold
    )
    print(result.render())
    return 0 if result.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
