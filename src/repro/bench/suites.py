"""The benchmark suites: hot-path microbenches + end-to-end layers.

Two suites are defined:

- ``kernel`` (``BENCH_kernel.json``) -- microbenchmarks of the
  simulation substrate itself: kernel event dispatch, cancellation
  sweeps, scheduler context switches and preemption, timer re-arming,
  and a full DDS publish -> executor -> callback round trip.
- ``e2e`` (``BENCH_e2e.json``) -- per-layer costs of the paper
  workloads: the perception stack with and without monitoring (their
  difference is the monitor bookkeeping overhead), the vectorized
  perception numerics, the budgeting CSP solvers, and one fault-campaign
  scenario end to end.

Every benchmark is deterministic (fixed seeds) so timings are
attributable to code changes, not workload drift.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.bench.harness import THROUGHPUT_FLOORS, BenchResult, run_bench

#: name -> (factory kwargs) registries, filled below.
KERNEL_SUITE = "kernel"
E2E_SUITE = "e2e"


# ----------------------------------------------------------------------
# kernel suite
# ----------------------------------------------------------------------
def bench_kernel_dispatch() -> int:
    """Schedule-and-fire cost of bare kernel events."""
    from repro.sim import Simulator

    sim = Simulator()
    callback = (lambda: None)
    for i in range(5000):
        sim.schedule_at(i, callback)
    return sim.run()


def bench_kernel_cancel_sweep() -> int:
    """Mode-change storm: repeated mass cancel + rearm sweeps.

    Each sweep cancels a quarter of the armed events outright and
    rearms the survivors at a later deadline -- the pattern a
    NORMAL->DEGRADED transition produces when deadline monitors are
    torn down and re-armed en masse.  The heap engine pays a lazy
    O(log n) pop for every dead entry plus a fresh handle per rearm;
    the calendar queue retires dead entries in bulk compactions and
    rearms in place.  Units are queue operations (schedule, cancel,
    rearm, fire).
    """
    from repro.sim import Simulator

    sim = Simulator()
    callback = (lambda: None)
    n = 4000
    sweeps = 8
    horizon = 5_000_000
    events = [sim.schedule_at(horizon + i, callback) for i in range(n)]
    ops = n
    for sweep in range(2, sweeps + 2):
        base = horizon * sweep
        survivors = []
        for j, event in enumerate(events):
            if j % 4 == 0:
                event.cancel()
            else:
                survivors.append(sim.reschedule(event, base + j))
        ops += len(events)
        events = survivors
    return ops + sim.run()


def bench_timer_rearm() -> int:
    """Deadline-QoS style re-arming: every start cancels the last."""
    from repro.sim import Simulator
    from repro.sim.timers import Timer

    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    n = 3000
    for i in range(n):
        timer.start(100 + i)
    sim.run()
    return n


def bench_scheduler_pingpong() -> int:
    """Two threads ping-ponging via semaphores (context switches)."""
    from repro.sim import MulticoreScheduler, Semaphore, Simulator, WaitSem

    sim = Simulator()
    sched = MulticoreScheduler(sim, n_cores=1)
    a_sem = Semaphore(sim, initial=1)
    b_sem = Semaphore(sim)
    rounds = 500

    def ping(_):
        for _i in range(rounds):
            yield WaitSem(a_sem)
            b_sem.post()

    def pong(_):
        for _i in range(rounds):
            yield WaitSem(b_sem)
            a_sem.post()

    sched.spawn("ping", ping, priority=2)
    sched.spawn("pong", pong, priority=1)
    sim.run()
    return 2 * rounds


def bench_scheduler_preempt() -> int:
    """A low-priority hog preempted by a periodic high-priority task."""
    from repro.sim import Compute, MulticoreScheduler, Simulator, Sleep, msec, usec

    sim = Simulator()
    sched = MulticoreScheduler(sim, n_cores=1)
    periods = 100

    def hog(_):
        for _i in range(20):
            yield Compute(msec(5))

    def periodic(_):
        for _i in range(periods):
            yield Sleep(msec(1))
            yield Compute(usec(100))

    sched.spawn("hog", hog, priority=1)
    sched.spawn("periodic", periodic, priority=10)
    sim.run()
    return periods


def _tracing_workload(sim) -> int:
    """The shared dispatch workload for the tracing on/off pair."""
    callback = (lambda: None)
    for i in range(5000):
        sim.schedule_at(i, callback)
    return sim.run()


def bench_tracing_spans_off() -> int:
    """Kernel dispatch with the span recorder absent (guards only)."""
    from repro.sim import Simulator

    sim = Simulator()
    return _tracing_workload(sim)


def bench_tracing_spans_on() -> int:
    """Same dispatch workload with a recorder attached and an ambient
    context, so every event captures and restores a span context."""
    from repro.sim import Simulator
    from repro.tracing.spans import SpanRecorder

    sim = Simulator()
    recorder = SpanRecorder(sim)
    sim.spans = recorder
    root = recorder.begin("bench", "compute", parent=None)
    recorder.current = root.context
    fired = _tracing_workload(sim)
    recorder.end(root)
    return fired


def bench_dds_local_pubsub() -> int:
    """Publish -> deliver -> executor -> callback round trips on one ECU."""
    from repro.dds import DdsDomain, Topic
    from repro.ros import Node
    from repro.sim import Ecu, Simulator, usec

    sim = Simulator()
    ecu = Ecu(sim, "e", n_cores=2)
    domain = DdsDomain(sim, local_latency=usec(10))
    talker = Node(domain, ecu, "talker", priority=10)
    listener = Node(domain, ecu, "listener", priority=9)
    topic = Topic("t")
    count: List[int] = []
    listener.create_subscription(topic, lambda s: count.append(1))
    pub = talker.create_publisher(topic)
    n = 300
    for i in range(n):
        sim.schedule_at(i * usec(50), pub.publish, i)
    sim.run()
    assert len(count) == n
    return n


# ----------------------------------------------------------------------
# e2e suite
# ----------------------------------------------------------------------
_E2E_FRAMES = 10


def _run_stack(monitoring: bool) -> int:
    from repro.perception import PerceptionStack, StackConfig

    stack = PerceptionStack(
        StackConfig(seed=3, monitoring=monitoring, trace_prefixes=())
    )
    stack.run(n_frames=_E2E_FRAMES)
    return _E2E_FRAMES


def bench_stack_monitored() -> int:
    """Full two-ECU perception stack, monitors on (per-frame cost)."""
    return _run_stack(True)


def bench_stack_unmonitored() -> int:
    """Same stack without monitors (their difference = bookkeeping)."""
    return _run_stack(False)


def _synthetic_cloud(n_points: int = 4000) -> np.ndarray:
    rng = np.random.default_rng(7)
    ground = rng.uniform([-40, -40, -1.9], [40, 40, -1.7], size=(n_points // 2, 3))
    objects = rng.uniform([-20, -20, -1.5], [20, 20, 1.5], size=(n_points // 2, 3))
    return np.vstack([ground, objects]).astype(np.float32)


def bench_perception_numerics() -> int:
    """Ground classification + euclidean clustering on a synthetic cloud."""
    from repro.perception.clustering import boxes_from_clusters, euclidean_clusters
    from repro.perception.ground_filter import classify_ground
    from repro.perception.pointcloud import PointCloud

    xyz = _synthetic_cloud()
    points = np.concatenate([xyz, np.zeros((len(xyz), 1), np.float32)], axis=1)
    cloud = PointCloud(points=points, frame_index=0, stamp=0)
    mask = classify_ground(cloud)
    nonground = cloud.select(~mask)
    clusters = euclidean_clusters(nonground.xyz)
    boxes_from_clusters(nonground.xyz, clusters)
    return len(cloud)


def _budgeting_problem():
    from repro.budgeting import BudgetingProblem, ChainTrace, SegmentTrace
    from repro.core import EventChain, MKConstraint
    from repro.core.segments import local_segment, remote_segment

    rng = np.random.default_rng(11)
    n_segments, n_activations = 4, 400
    segments = []
    for i in range(n_segments):
        if i % 2 == 0:
            seg = remote_segment(f"s{i}", f"t{i}", "ecuA", "ecuB")
        else:
            seg = local_segment(f"s{i}", "ecuB", f"t{i-1}", f"t{i}")
        segments.append(seg)
    for earlier, later in zip(segments, segments[1:]):
        later.start = earlier.end
    chain = EventChain(
        name="bench", segments=segments, period=100, budget_e2e=260,
        budget_seg=100, mk=MKConstraint(2, 8),
    )
    trace = ChainTrace("bench")
    for seg in segments:
        base = rng.integers(20, 60)
        lats = np.clip(
            rng.lognormal(np.log(base), 0.4, size=n_activations), 5, 400
        ).astype(int)
        trace.add(SegmentTrace(seg.name, [int(v) for v in lats]))
    return BudgetingProblem(chain, trace)


def bench_budgeting_solve() -> int:
    """Independent + greedy + branch-and-bound solves of one instance."""
    from repro.budgeting import (
        solve_branch_and_bound,
        solve_greedy_propagated,
        solve_independent,
    )

    problem = _budgeting_problem()
    solve_independent(problem)
    solve_greedy_propagated(problem)
    solve_branch_and_bound(problem)
    return 3


def bench_fault_scenario() -> int:
    """One loss-burst campaign scenario end to end (both oracles)."""
    from repro.faults.campaign import CampaignConfig, FaultCampaign, default_scenarios

    frames = 24
    scenario = next(s for s in default_scenarios() if s.name == "loss_burst")
    campaign = FaultCampaign([scenario], CampaignConfig(n_frames=frames))
    result = campaign.run()
    assert result.scenarios, "scenario did not run"
    return frames


#: Lazily-built fleet stream shared by the telemetry ingest bench pair.
#: Generation happens once, *outside* any timed iteration, so the
#: measured work is the service's (queue, store, alert engine) and the
#: floor ratio compares engines rather than a common generator cost.
_FLEET_STREAM = None


def _fleet_stream():
    global _FLEET_STREAM
    if _FLEET_STREAM is None:
        from repro.telemetry import FleetConfig, FleetLoadGenerator

        from repro.telemetry.batch import RecordBatch

        generator = FleetLoadGenerator(FleetConfig(vehicles=4, frames=120))
        records = generator.materialize()
        _FLEET_STREAM = (
            generator.config.store_config(),
            records,
            RecordBatch.from_records(records),
        )
    return _FLEET_STREAM


def bench_telemetry_ingest() -> int:
    """Fleet record stream through the per-record ingest -> alert path.

    The stream is pre-materialized (see ``_fleet_stream``) so the
    measured work is the service's, not the generator's.  The scalar
    engine is pinned explicitly: this bench is the reference side of
    the ``ingest_batched`` throughput floor.
    """
    from repro.telemetry import ServiceConfig, TelemetryService

    store_config, records, _ = _fleet_stream()
    service = TelemetryService(ServiceConfig(
        store=store_config, engine="scalar",
    ))
    service.ingest_many(records)
    service.drain()
    assert service.accounting_ok(), "telemetry accounting violated"
    return len(records)


def bench_telemetry_ingest_batched() -> int:
    """The same fleet stream through the columnar batched ingest path.

    Identical records, store config, and alert policy as
    ``telemetry_ingest`` -- the only difference is the engine: one
    struct-of-arrays :class:`~repro.telemetry.batch.RecordBatch`
    through :meth:`~repro.telemetry.service.TelemetryService.ingest_batch`
    and the store's grouped/vectorized ``apply_batch``.  The floor gate
    holds this at >= 2x the scalar reference's throughput; the
    differential suite separately proves both engines produce
    byte-identical store digests and alert logs.
    """
    from repro.telemetry import ServiceConfig, TelemetryService

    store_config, _records, batch = _fleet_stream()
    service = TelemetryService(ServiceConfig(
        store=store_config, engine="batched",
    ))
    service.ingest_batch(batch)
    service.drain()
    assert service.accounting_ok(), "telemetry accounting violated"
    return len(batch)


#: Wall-clock cost (seconds) of one simulated channel step in the
#: uplink roundtrip benches.  The adversarial channel is a
#: discrete-event simulation; with free steps, "throughput" would
#: measure only the encode/apply CPU both protocols share and a
#: pipelined protocol would be indistinguishable from a lockstep one.
#: Charging a fixed quantum per step turns link delay into wall time,
#: which is the regime an ARQ window exists for: stop-and-wait pays
#: ~1 RTT per batch while the windowed client keeps the link full.
#: Because both benches run the identical loop, the ratio the floor
#: gate checks is dominated by step counts, not host speed.
_LINK_STEP_S = 0.001
#: One-way link delay in simulated steps (RTT is twice this, plus the
#: turnaround step).  At 1 ms/step this models a ~8 ms-RTT link.
_LINK_DELAY_STEPS = 4
#: Ack timeout (steps) for both clients; above the clean-channel RTT
#: so neither protocol retransmits spuriously.
_LINK_ACK_TIMEOUT = 16


def _run_uplink_roundtrip(windowed: bool) -> int:
    """One fleet stream through the store-and-forward uplink path.

    Every record is durably spooled (WAL append), carried over a
    clean but latency-modeled channel (``_LINK_STEP_S`` of wall time
    per simulated step, ``_LINK_DELAY_STEPS`` each way), deduplicated,
    logged append-before-ack, applied, and acknowledged.  The two
    public benches differ *only* in the client wired in: the lockstep
    stop-and-wait :class:`RetryingUplinkClient` versus the pipelined
    :class:`WindowedUplinkClient` (multi-record frames, sliding
    window, cumulative acks, zero-re-encode relay of cached WAL wire
    lines).
    """
    import tempfile
    import time as _time
    from pathlib import Path

    from repro.telemetry import (
        FleetConfig,
        FleetLoadGenerator,
        ServiceConfig,
        TelemetryService,
    )
    from repro.telemetry.uplink import (
        AdversarialChannel,
        RetryingUplinkClient,
        UplinkClientConfig,
        UplinkIngestor,
        WalConfig,
        WalSpooler,
        WindowedClientConfig,
        WindowedUplinkClient,
        decode_envelope,
    )

    fleet = FleetConfig(vehicles=2, frames=120, faulty_every=0)
    records = FleetLoadGenerator(fleet).materialize()
    streams: Dict[str, list] = {}
    for record in records:
        streams.setdefault(record.source, []).append(record)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        ingestor = UplinkIngestor(
            TelemetryService(ServiceConfig(store=fleet.store_config())),
            root / "fleet", fsync="never", checkpoint_every=None,
        )
        clients: Dict[str, object] = {}
        down = AdversarialChannel(
            "down",
            lambda frame, now: clients[frame.dst].on_ack(
                decode_envelope(frame.payload), now
            ),
            base_delay=_LINK_DELAY_STEPS,
        )
        up = AdversarialChannel(
            "up",
            lambda frame, now: down.send(
                ingestor.handle_payload(frame.payload, now),
                "fleet", frame.src, now,
            ),
            base_delay=_LINK_DELAY_STEPS,
        )
        for source, stream in sorted(streams.items()):
            spooler = WalSpooler.open_fresh(
                WalConfig(root / source, fsync="never",
                          segment_max_records=128),
                source,
            )
            spooler.append_many(stream)
            send = lambda payload, now, src=source: up.send(
                payload, src, "fleet", now
            )
            if windowed:
                clients[source] = WindowedUplinkClient(
                    spooler, send,
                    WindowedClientConfig(
                        frame_records=64, window_frames=8,
                        ack_timeout=_LINK_ACK_TIMEOUT,
                    ),
                )
            else:
                clients[source] = RetryingUplinkClient(
                    spooler, send,
                    UplinkClientConfig(
                        batch_records=64, ack_timeout=_LINK_ACK_TIMEOUT,
                    ),
                )
        now = 0
        while any(not c.idle() for c in clients.values()) and now < 10_000:
            for client in clients.values():
                client.tick(now)
            up.step(now)
            down.step(now)
            _time.sleep(_LINK_STEP_S)
            now += 1
        assert ingestor.service.store.applied == len(records), \
            "uplink lost records on a clean channel"
    return len(records)


def bench_uplink_roundtrip() -> int:
    """Fleet stream through the stop-and-wait uplink over a modeled link.

    The lockstep baseline: one batch in flight, the next send gated on
    the previous ack, so wall time is ~one RTT per batch (see
    :func:`_run_uplink_roundtrip` for the shared data path and latency
    model).
    """
    return _run_uplink_roundtrip(windowed=False)


def bench_uplink_roundtrip_windowed() -> int:
    """The same fleet stream through the pipelined windowed-ARQ path.

    Identical data path and latency model as ``uplink_roundtrip``, but
    the sliding window keeps ``window_frames`` frames in flight, so the
    link stays full instead of draining once per RTT.  The floor gate
    holds this at >= 2x the stop-and-wait baseline's throughput
    (``THROUGHPUT_FLOORS``).
    """
    return _run_uplink_roundtrip(windowed=True)


def bench_budget_resolve() -> int:
    """Closed-loop re-derivation: resolve d_mon from a fleet window and
    shadow-validate the resulting epoch (the control plane's hot path).
    """
    from repro.adaptive import BudgetEpoch, BudgetResolver, ShadowValidator
    from repro.adaptive.chaos import fleet_chain
    from repro.telemetry.records import segment_record

    chain = fleet_chain()
    rng = np.random.default_rng(13)
    medians = {"seg0": 4_000_000, "seg1": 6_000_000, "seg2": 8_000_000}
    records = []
    seq = 0
    activations = 256
    for vehicle in ("veh00", "veh01", "veh02"):
        for activation in range(activations):
            for segment, median in medians.items():
                latency = int(median * rng.lognormal(0.0, 0.18))
                records.append(segment_record(
                    vehicle, chain.name, segment, activation, latency,
                    "ok", (activation + 1) * chain.period, seq,
                ))
                seq += 1
    resolver = BudgetResolver({chain.name: chain})
    outcome = resolver.resolve(records)
    assert outcome.ok, "resolver failed on a clean window"
    candidate = outcome.epoch(epoch_id=1, parent_id=0)
    baseline = BudgetEpoch(epoch_id=0, budgets={
        chain.name: {
            seg.name: int(seg.d_mon) for seg in chain.segments
        },
    })
    verdict = ShadowValidator({chain.name: chain}).validate(
        records, candidate, baseline
    )
    assert verdict.activations == 3 * activations, "replay lost rows"
    return len(records)


#: Traced-run payload reused across warehouse bench iterations: the
#: simulation cost is paid once so the timed work is the warehouse's
#: (parse -> analyze -> index -> sketch), not the simulator's.
_WAREHOUSE_PAYLOAD: Dict[str, object] = {}


def _warehouse_payload():
    if not _WAREHOUSE_PAYLOAD:
        from repro.perception.stack import PerceptionStack, StackConfig
        from repro.warehouse import RunKey, RunManifest

        frames = 16
        runs = []
        for run_id, config in (
            ("bench-base", StackConfig(seed=1, spans=True)),
            ("bench-head", StackConfig(seed=7, link_loss=0.08, spans=True)),
        ):
            stack = PerceptionStack(config)
            stack.run(n_frames=frames)
            manifest = RunManifest.for_run(
                RunKey(run_id=run_id, commit=run_id, suite="bench"),
                stack.chains, frames,
            )
            runs.append((manifest, list(stack.spans.spans)))
        _WAREHOUSE_PAYLOAD["runs"] = runs
    return _WAREHOUSE_PAYLOAD["runs"]


def bench_warehouse_ingest() -> int:
    """Two traced runs through full warehouse ingestion.

    Measures the analysis-and-index path: span rows, per-instance
    critical paths with telescoping verification, edge/segment tables
    and DDSketch snapshot persistence into a fresh in-memory store.
    """
    from repro.warehouse import SpanWarehouse

    runs = _warehouse_payload()
    with SpanWarehouse(":memory:") as store:
        total = 0
        for manifest, spans in runs:
            result = store.ingest_run(manifest, spans)
            assert not result.skipped and result.n_instances > 0
            total += result.n_spans
    return total


def bench_warehouse_query() -> int:
    """Cohort aggregation + attribution diff over an ingested store.

    The populated in-memory store is cached across iterations (queries
    are read-only), so the timed work is the query layer's: sketch
    restore + merge per (chain, kind, key) and diff assembly -- the
    path the CI gate pays on every flagged regression.
    """
    from repro.warehouse import (
        RunSelector,
        SpanWarehouse,
        aggregate,
        attribution_diff,
    )

    if "store" not in _WAREHOUSE_PAYLOAD:
        store = SpanWarehouse(":memory:")
        for manifest, spans in _warehouse_payload():
            store.ingest_run(manifest, spans)
        _WAREHOUSE_PAYLOAD["store"] = store
    store = _WAREHOUSE_PAYLOAD["store"]
    rows = 0
    base = RunSelector(commit="bench-base")
    head = RunSelector(commit="bench-head")
    for selector in (base, head):
        agg = aggregate(store, selector)
        rows += sum(
            len(chain.categories) + len(chain.edges) + len(chain.segments)
            for chain in agg.chains.values()
        )
    diff = attribution_diff(store, base, head)
    assert diff["chains"], "diff produced no chains"
    rows += sum(
        len(entry["categories"]) + len(entry["segments"])
        for entry in diff["chains"].values()
    )
    return rows


def _engine_pinned(engine: str, fn: Callable[[], int]) -> Callable[[], int]:
    """Run a bench body with the sim engine forced to *engine*.

    The ``*_heap`` reference twins are the same workload pinned to the
    old lazy-cancel heap, so the ``timer_rearm`` / ``kernel_cancel_sweep``
    throughput floors compare the two queue engines on identical work
    in the same process (shared-runner noise cancels instead of
    biasing one side).
    """
    import functools
    import os

    @functools.wraps(fn)
    def wrapper() -> int:
        previous = os.environ.get("REPRO_SIM_ENGINE")
        os.environ["REPRO_SIM_ENGINE"] = engine
        try:
            return fn()
        finally:
            if previous is None:
                os.environ.pop("REPRO_SIM_ENGINE", None)
            else:
                os.environ["REPRO_SIM_ENGINE"] = previous

    return wrapper


#: suite name -> ordered list of (bench name, layer, unit, fn).
SUITES: Dict[str, List[Tuple[str, str, str, Callable[[], int]]]] = {
    KERNEL_SUITE: [
        ("kernel_dispatch", "kernel", "events", bench_kernel_dispatch),
        ("kernel_cancel_sweep", "kernel", "events", bench_kernel_cancel_sweep),
        ("kernel_cancel_sweep_heap", "kernel", "events",
         _engine_pinned("heap", bench_kernel_cancel_sweep)),
        ("tracing_spans_off", "tracing", "events", bench_tracing_spans_off),
        ("tracing_spans_on", "tracing", "events", bench_tracing_spans_on),
        ("timer_rearm", "kernel", "arms", bench_timer_rearm),
        ("timer_rearm_heap", "kernel", "arms",
         _engine_pinned("heap", bench_timer_rearm)),
        ("scheduler_pingpong", "scheduler", "switches", bench_scheduler_pingpong),
        ("scheduler_preempt", "scheduler", "periods", bench_scheduler_preempt),
        ("dds_local_pubsub", "dds", "roundtrips", bench_dds_local_pubsub),
    ],
    E2E_SUITE: [
        ("stack_monitored", "e2e", "frames", bench_stack_monitored),
        ("stack_unmonitored", "e2e", "frames", bench_stack_unmonitored),
        ("perception_numerics", "perception", "points", bench_perception_numerics),
        ("budgeting_solve", "budgeting", "solves", bench_budgeting_solve),
        ("fault_scenario", "faults", "frames", bench_fault_scenario),
        ("telemetry_ingest", "telemetry", "records", bench_telemetry_ingest),
        ("ingest_batched", "telemetry", "records",
         bench_telemetry_ingest_batched),
        ("uplink_roundtrip", "telemetry", "records", bench_uplink_roundtrip),
        ("uplink_roundtrip_windowed", "telemetry", "records",
         bench_uplink_roundtrip_windowed),
        ("budget_resolve", "adaptive", "records", bench_budget_resolve),
        ("warehouse_ingest", "warehouse", "spans", bench_warehouse_ingest),
        ("warehouse_query", "warehouse", "rows", bench_warehouse_query),
    ],
}


def run_suite(
    suite: str,
    quick: bool = False,
    only: Optional[List[str]] = None,
) -> List[BenchResult]:
    """Run every benchmark of *suite*; quick mode = 1 iteration, no warmup.

    *only* restricts the run to the named benchmarks, expanded to keep
    floor gates meaningful: selecting a bench that has a throughput
    floor pulls in its reference bench automatically (a ratio needs
    both sides), so ``--only ingest_batched`` still checks the >= 2x
    gate instead of silently failing on a missing reference.  Unknown
    names raise rather than silently measuring nothing.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r} (have {sorted(SUITES)})")
    entries = SUITES[suite]
    if only is not None:
        available = {name for name, _, _, _ in entries}
        unknown = sorted(set(only) - available)
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown} in suite {suite!r} "
                f"(have {sorted(available)})"
            )
        wanted = set(only)
        for name in only:
            floor = THROUGHPUT_FLOORS.get(name)
            if floor is not None and floor[0] in available:
                wanted.add(floor[0])
        entries = [e for e in entries if e[0] in wanted]
    iterations = 1 if quick else 7
    warmup = 0 if quick else 1
    results = []
    for name, layer, unit, fn in entries:
        results.append(
            run_bench(
                name, fn, layer=layer, unit=unit,
                iterations=iterations, warmup=warmup,
            )
        )
    return results
