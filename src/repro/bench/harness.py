"""Benchmark harness: timing, statistics, JSON persistence, regression
comparison.

A benchmark is a callable returning the number of *units* it processed
(events fired, frames simulated, CSP solves...).  The harness times
repeated calls with ``perf_counter_ns``, reports median / p95 / min wall
time per iteration and derived units-per-second throughput, and persists
suites as machine-readable ``BENCH_<suite>.json`` files with a stable
schema, so CI can archive them and ``--compare`` can fail the build on
slowdowns.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

#: Schema identifier written into (and required from) every bench file.
SCHEMA = "repro-bench/1"

#: Default slowdown tolerance for --compare (fraction of baseline median).
DEFAULT_THRESHOLD = 0.30

#: Relative throughput floors checked on every suite run: bench name
#: -> (reference bench in the same suite, minimum units_per_s ratio).
#: These encode *designed* speedups -- the pipelined windowed uplink
#: exists to beat stop-and-wait, so the gate fails if it stops doing
#: so -- and are robust to machine speed because both sides run on the
#: same host in the same invocation.
THROUGHPUT_FLOORS: Dict[str, tuple] = {
    "uplink_roundtrip_windowed": ("uplink_roundtrip", 2.0),
    # Calendar-queue engine vs the old lazy-cancel heap on identical
    # rearm/cancel-storm workloads (the ``*_heap`` twins pin the
    # reference engine in-process).
    "timer_rearm": ("timer_rearm_heap", 2.0),
    "kernel_cancel_sweep": ("kernel_cancel_sweep_heap", 2.0),
    # Batched SoA ingest vs the per-record scalar telemetry path on the
    # same pre-materialized fleet stream.
    "ingest_batched": ("telemetry_ingest", 2.0),
}


@dataclass
class BenchResult:
    """Statistics of one benchmark."""

    name: str
    #: Which layer of the system the benchmark exercises (kernel, dds,
    #: monitor, perception, budgeting, faults, e2e).
    layer: str
    iterations: int
    units: int
    unit: str
    median_ns: int
    p95_ns: int
    min_ns: int
    #: Units processed per second at the median iteration time.
    units_per_s: float

    def to_json(self) -> dict:
        return {
            "layer": self.layer,
            "iterations": self.iterations,
            "units": self.units,
            "unit": self.unit,
            "median_ns": self.median_ns,
            "p95_ns": self.p95_ns,
            "min_ns": self.min_ns,
            "units_per_s": round(self.units_per_s, 1),
        }


def run_bench(
    name: str,
    fn: Callable[[], int],
    *,
    layer: str,
    unit: str,
    iterations: int = 7,
    warmup: int = 1,
) -> BenchResult:
    """Time *fn* and fold the samples into a :class:`BenchResult`."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    units = 0
    for _ in range(warmup):
        units = int(fn())
    samples: List[int] = []
    for _ in range(iterations):
        t0 = time.perf_counter_ns()
        units = int(fn())
        samples.append(time.perf_counter_ns() - t0)
    samples.sort()
    median_ns = int(statistics.median(samples))
    p95_index = min(len(samples) - 1, int(round(0.95 * (len(samples) - 1))))
    per_second = units / (median_ns / 1e9) if median_ns > 0 else 0.0
    return BenchResult(
        name=name,
        layer=layer,
        iterations=iterations,
        units=max(units, 0),
        unit=unit,
        median_ns=median_ns,
        p95_ns=int(samples[p95_index]),
        min_ns=int(samples[0]),
        units_per_s=per_second,
    )


def suite_to_json(suite: str, results: List[BenchResult]) -> dict:
    """The persisted representation of one benchmark suite."""
    return {
        "schema": SCHEMA,
        "suite": suite,
        "python": platform.python_version(),
        "benchmarks": {r.name: r.to_json() for r in results},
    }


def write_suite(path: Path, suite: str, results: List[BenchResult]) -> Path:
    """Write a suite file (two-space indent, trailing newline, sorted keys)."""
    payload = suite_to_json(suite, results)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_suite(path: Path) -> dict:
    """Load and schema-check a previously written suite file."""
    data = json.loads(Path(path).read_text())
    validate_suite(data)
    return data


def validate_suite(data: dict) -> None:
    """Raise ``ValueError`` unless *data* matches the bench schema."""
    if not isinstance(data, dict):
        raise ValueError("bench file must contain a JSON object")
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unsupported bench schema {data.get('schema')!r}")
    for key in ("suite", "benchmarks"):
        if key not in data:
            raise ValueError(f"bench file missing {key!r}")
    if not isinstance(data["benchmarks"], dict):
        raise ValueError("'benchmarks' must be an object")
    required = {"median_ns", "p95_ns", "units", "unit", "units_per_s", "layer"}
    for name, entry in data["benchmarks"].items():
        missing = required - set(entry)
        if missing:
            raise ValueError(f"benchmark {name!r} missing fields {sorted(missing)}")
        if entry["median_ns"] <= 0:
            raise ValueError(f"benchmark {name!r} has non-positive median_ns")


@dataclass
class Comparison:
    """Per-benchmark verdict of a --compare run."""

    name: str
    baseline_median_ns: int
    current_median_ns: int
    #: current / baseline median -- above 1.0 means slower.
    ratio: float
    regressed: bool


@dataclass
class CompareReport:
    """Outcome of comparing a fresh run against a baseline file."""

    suite: str
    threshold: float
    comparisons: List[Comparison] = field(default_factory=list)
    #: Benchmarks in the baseline that the current run did not produce.
    missing: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.missing and not any(c.regressed for c in self.comparisons)

    def render(self) -> str:
        lines = [
            f"{'benchmark':32s} {'baseline':>12s} {'current':>12s} "
            f"{'ratio':>7s}  verdict"
        ]
        for c in sorted(self.comparisons, key=lambda c: c.name):
            verdict = "REGRESSED" if c.regressed else "ok"
            lines.append(
                f"{c.name:32s} {c.baseline_median_ns/1e6:>10.3f}ms "
                f"{c.current_median_ns/1e6:>10.3f}ms {c.ratio:>6.2f}x  {verdict}"
            )
        for name in self.missing:
            lines.append(f"{name:32s} {'-':>12s} {'-':>12s} {'-':>7s}  MISSING")
        lines.append(
            f"compare ({self.suite}, threshold +{self.threshold:.0%}): "
            f"{'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join(lines)


def compare_suites(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareReport:
    """Compare a fresh suite against a baseline; flag >threshold slowdowns.

    Benchmarks present only in the current run are ignored (new benches
    must not fail old baselines); benchmarks present only in the
    baseline are reported as missing and fail the comparison.
    """
    validate_suite(current)
    validate_suite(baseline)
    report = CompareReport(
        suite=str(current.get("suite", "?")), threshold=threshold
    )
    current_benchmarks: Dict[str, dict] = current["benchmarks"]
    for name, base in sorted(baseline["benchmarks"].items()):
        entry = current_benchmarks.get(name)
        if entry is None:
            report.missing.append(name)
            continue
        ratio = entry["median_ns"] / base["median_ns"]
        report.comparisons.append(
            Comparison(
                name=name,
                baseline_median_ns=int(base["median_ns"]),
                current_median_ns=int(entry["median_ns"]),
                ratio=ratio,
                regressed=ratio > 1.0 + threshold,
            )
        )
    return report


@dataclass
class FloorCheck:
    """One relative-throughput-floor verdict."""

    name: str
    reference: str
    ratio: Optional[float]  # None: one side missing from the run
    required: float
    ok: bool


@dataclass
class FloorReport:
    """Outcome of checking a suite run against THROUGHPUT_FLOORS."""

    checks: List[FloorCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        lines = []
        for c in self.checks:
            shown = "?" if c.ratio is None else f"{c.ratio:.2f}x"
            verdict = "ok" if c.ok else "BELOW FLOOR"
            lines.append(
                f"floor {c.name} >= {c.required:.1f}x {c.reference}: "
                f"{shown}  {verdict}"
            )
        return "\n".join(lines)


def check_throughput_floors(
    data: dict, floors: Optional[Dict[str, tuple]] = None
) -> FloorReport:
    """Check a suite document's designed relative speedups.

    A floored bench absent from the run is skipped (old baselines stay
    valid); a floored bench whose *reference* is absent fails -- the
    ratio it exists to prove can no longer be measured."""
    validate_suite(data)
    floors = THROUGHPUT_FLOORS if floors is None else floors
    benchmarks: Dict[str, dict] = data["benchmarks"]
    report = FloorReport()
    for name, (reference, required) in sorted(floors.items()):
        entry = benchmarks.get(name)
        if entry is None:
            continue
        base = benchmarks.get(reference)
        if base is None or not base.get("units_per_s"):
            report.checks.append(FloorCheck(
                name=name, reference=reference, ratio=None,
                required=required, ok=False,
            ))
            continue
        ratio = entry["units_per_s"] / base["units_per_s"]
        report.checks.append(FloorCheck(
            name=name, reference=reference, ratio=ratio,
            required=required, ok=ratio >= required,
        ))
    return report


def render_suite(results: List[BenchResult]) -> str:
    """Human-readable table of one suite run."""
    lines = [
        f"{'benchmark':32s} {'layer':>10s} {'median':>12s} {'p95':>12s} "
        f"{'throughput':>18s}"
    ]
    for r in results:
        lines.append(
            f"{r.name:32s} {r.layer:>10s} {r.median_ns/1e6:>10.3f}ms "
            f"{r.p95_ns/1e6:>10.3f}ms {r.units_per_s:>12,.0f} {r.unit}/s"
        )
    return "\n".join(lines)
