"""Domain participants and the middleware event thread.

Each participant (one per process, as in ROS2) owns a *middleware event
thread* that executes deadline-QoS timeout routines and retransmission
bookkeeping.  Its priority is deliberately *not* the highest on the ECU:
the paper observes that running middleware timers at top priority "would
not be practical anyway, as the entire network load would interfere with
all regular services" -- and measures (Fig. 12) the resulting 100 us to
2 ms exception-entry latencies.  Monitors that want bounded reaction
times must instead forward timeouts to the high-priority monitor thread
(Sec. V-B), which our remote monitor supports as a configuration.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple, TYPE_CHECKING

from repro.sim.cpu import Ecu
from repro.sim.kernel import usec
from repro.sim.sync import Semaphore
from repro.sim.threads import Compute, WaitSem

if TYPE_CHECKING:  # pragma: no cover
    from repro.dds.domain import DdsDomain
    from repro.dds.qos import QosProfile
    from repro.dds.reader import DataReader, ReaderListener
    from repro.dds.topic import Topic
    from repro.dds.writer import DataWriter

class DomainParticipant:
    """A process-level attachment point to the DDS domain.

    Parameters
    ----------
    domain:
        The :class:`~repro.dds.domain.DdsDomain` this participant joins.
    ecu:
        The ECU hosting the process.
    name:
        Process name (e.g. ``"fusion"``).
    middleware_priority:
        Scheduling priority of the middleware event thread.
    event_entry_cost:
        CPU work (ns) to enter an event routine once scheduled.
    """

    def __init__(
        self,
        domain: "DdsDomain",
        ecu: Ecu,
        name: str,
        middleware_priority: int = 30,
        event_entry_cost: int = usec(3),
    ):
        self.domain = domain
        self.ecu = ecu
        self.sim = ecu.sim
        self.name = name
        self.guid = f"{ecu.name}/{name}#{self.sim.next_entity_id('participant')}"
        self.event_entry_cost = int(event_entry_cost)
        self._event_queue: Deque[Tuple[Callable[..., None], tuple]] = deque()
        self._event_sem = Semaphore(self.sim, name=f"{self.guid}.evt")
        self.middleware_events_served = 0
        self._event_thread = ecu.spawn(
            f"{name}.dds-evt", self._event_thread_body, priority=middleware_priority
        )

    # ------------------------------------------------------------------
    # Middleware event service
    # ------------------------------------------------------------------
    def post_middleware_event(self, fn: Callable[..., None], *args: Any) -> None:
        """Queue *fn(\\*args)* for execution on the middleware event thread.

        The latency from this call to the execution of *fn* includes real
        scheduling delay -- the quantity the paper's Fig. 12 measures.
        """
        self._event_queue.append((fn, args))
        self._event_sem.post()

    def _event_thread_body(self, _thread):
        while True:
            yield WaitSem(self._event_sem)
            if not self._event_queue:
                continue
            fn, args = self._event_queue.popleft()
            if self.event_entry_cost > 0:
                yield Compute(self.event_entry_cost)
            self.middleware_events_served += 1
            fn(*args)

    # ------------------------------------------------------------------
    # Endpoint factories
    # ------------------------------------------------------------------
    def create_writer(
        self,
        topic: "Topic",
        qos: Optional["QosProfile"] = None,
        writer_id: Optional[str] = None,
    ) -> "DataWriter":
        """Create a :class:`DataWriter` for *topic* on this participant."""
        from repro.dds.writer import DataWriter

        writer = DataWriter(self, topic, qos, writer_id=writer_id)
        self.domain._register_writer(writer)
        return writer

    def create_reader(
        self,
        topic: "Topic",
        qos: Optional["QosProfile"] = None,
        listener: Optional["ReaderListener"] = None,
    ) -> "DataReader":
        """Create a :class:`DataReader` for *topic* on this participant."""
        from repro.dds.reader import DataReader

        reader = DataReader(self, topic, qos, listener)
        self.domain._register_reader(reader)
        return reader

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DomainParticipant {self.guid}>"
