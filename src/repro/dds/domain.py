"""The DDS domain: endpoint matching and transport wiring.

Routing rules:

- Writer and reader on the **same ECU**: delivered over loopback with a
  small configurable latency (+ jitter), directly in kernel context.
- Writer and reader on **different ECUs**: the sample is framed and sent
  over the registered :class:`~repro.network.link.Link`; on arrival it
  passes through the destination ECU's ksoftirq thread
  (:class:`~repro.network.stack.NetworkStack`) before reaching the
  reader.  RELIABLE endpoints retry lost frames with a delay.

Matching respects requested-vs-offered QoS compatibility.  Readers and
writers may join in any order.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.dds.qos import ReliabilityKind
from repro.dds.topic import Sample
from repro.network.link import Frame, JitterModel, Link
from repro.network.stack import NetworkStack
from repro.sim.cpu import Ecu
from repro.sim.kernel import Simulator, usec

if TYPE_CHECKING:  # pragma: no cover
    from repro.dds.participant import DomainParticipant
    from repro.dds.reader import DataReader
    from repro.dds.writer import DataWriter

#: Extra bytes added by RTPS framing on the wire.
RTPS_OVERHEAD_BYTES = 64


class DdsDomain:
    """A DDS domain spanning one or more ECUs."""

    def __init__(
        self,
        sim: Simulator,
        local_latency: int = usec(30),
        local_jitter: Optional[JitterModel] = None,
    ):
        self.sim = sim
        self.local_latency = int(local_latency)
        self.local_jitter = local_jitter or JitterModel()
        #: The "dds:local" stream generator, bound on first local delivery
        #: (avoids one dict lookup per sample on the loopback hot path).
        self._local_rng = None
        self._local_labels: Dict[str, str] = {}
        self.participants: List["DomainParticipant"] = []
        self._writers: Dict[str, List["DataWriter"]] = {}
        self._readers: Dict[str, List["DataReader"]] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._stacks: Dict[str, NetworkStack] = {}
        self.incompatible_matches = 0
        self.frames_dropped = 0

    # ------------------------------------------------------------------
    # Infrastructure wiring
    # ------------------------------------------------------------------
    def create_participant(
        self,
        ecu: Ecu,
        name: str,
        middleware_priority: int = 30,
        event_entry_cost: int = usec(3),
    ) -> "DomainParticipant":
        """Create a participant for one process on *ecu*."""
        from repro.dds.participant import DomainParticipant

        participant = DomainParticipant(
            self,
            ecu,
            name,
            middleware_priority=middleware_priority,
            event_entry_cost=event_entry_cost,
        )
        self.participants.append(participant)
        return participant

    def add_link(self, src: Ecu, dst: Ecu, link: Link) -> None:
        """Register the unidirectional link used for src -> dst samples."""
        self._links[(src.name, dst.name)] = link

    def register_stack(self, ecu: Ecu, stack: NetworkStack) -> None:
        """Register the receive-side network stack of *ecu*."""
        self._stacks[ecu.name] = stack

    def stack_for(self, ecu_name: str) -> NetworkStack:
        """Return the network stack of the named ECU."""
        return self._stacks[ecu_name]

    # ------------------------------------------------------------------
    # Endpoint registration (called by the participant factories)
    # ------------------------------------------------------------------
    def _register_writer(self, writer: "DataWriter") -> None:
        self._writers.setdefault(writer.topic.name, []).append(writer)

    def _register_reader(self, reader: "DataReader") -> None:
        self._readers.setdefault(reader.topic.name, []).append(reader)
        ecu = reader.participant.ecu
        stack = self._stacks.get(ecu.name)
        if stack is not None:
            stack.register_port(
                self._port_name(reader),
                lambda frame: self._deliver_frame(reader, frame),
            )

    @staticmethod
    def _deliver_frame(reader: "DataReader", frame: Frame) -> None:
        if frame.meta.get("kind") == "liveliness":
            reader.assert_writer_liveliness(frame.meta["writer"])
        else:
            reader._receive(frame.payload)

    @staticmethod
    def _port_name(reader: "DataReader") -> str:
        return f"dds/{reader.topic.name}/{reader.guid}"

    def readers_of(self, topic_name: str) -> List["DataReader"]:
        """All readers currently subscribed to *topic_name*."""
        return list(self._readers.get(topic_name, []))

    def writers_of(self, topic_name: str) -> List["DataWriter"]:
        """All writers currently publishing *topic_name*."""
        return list(self._writers.get(topic_name, []))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, writer: "DataWriter", sample: Sample) -> None:
        for reader in self._readers.get(writer.topic.name, []):
            if not reader.qos.compatible_with(writer.qos):
                self.incompatible_matches += 1
                continue
            src = writer.participant.ecu
            dst = reader.participant.ecu
            if src.name == dst.name:
                self._deliver_local(reader, sample)
            else:
                self._deliver_remote(writer, reader, sample)

    def _route_liveliness(self, writer: "DataWriter") -> None:
        """Deliver an explicit liveliness assertion to matched readers."""
        for reader in self._readers.get(writer.topic.name, []):
            if not reader.qos.compatible_with(writer.qos):
                continue
            src = writer.participant.ecu
            dst = reader.participant.ecu
            if src.name == dst.name:
                self.sim.schedule_after(
                    self.local_latency,
                    reader.assert_writer_liveliness,
                    writer.guid,
                    label="dds:liveliness:local",
                )
                continue
            link = self._links.get((src.name, dst.name))
            stack = self._stacks.get(dst.name)
            if link is None or stack is None:
                continue
            frame = Frame(
                payload=None,
                size_bytes=RTPS_OVERHEAD_BYTES,
                src=src.name,
                dst=dst.name,
                meta={"kind": "liveliness", "writer": writer.guid},
            )
            port = self._port_name(reader)
            link.transmit(frame, lambda f, p=port: stack.deliver(p, f))

    def _deliver_local(self, reader: "DataReader", sample: Sample) -> None:
        rng = self._local_rng
        if rng is None:
            rng = self._local_rng = self.sim.rng("dds:local")
        delay = self.local_latency + self.local_jitter.sample(rng)
        topic_name = sample.topic.name
        label = self._local_labels.get(topic_name)
        if label is None:
            label = self._local_labels[topic_name] = f"dds:local:{topic_name}"
        self.sim.schedule_after(delay, reader._receive, sample, label=label)

    def _deliver_remote(
        self,
        writer: "DataWriter",
        reader: "DataReader",
        sample: Sample,
        attempt: int = 0,
    ) -> None:
        src = writer.participant.ecu
        dst = reader.participant.ecu
        link = self._links.get((src.name, dst.name))
        if link is None:
            raise RuntimeError(
                f"no link registered from {src.name} to {dst.name} "
                f"(topic {writer.topic.name})"
            )
        stack = self._stacks.get(dst.name)
        if stack is None:
            raise RuntimeError(f"no network stack registered on {dst.name}")
        frame = Frame(
            payload=sample,
            size_bytes=sample.size_bytes + RTPS_OVERHEAD_BYTES,
            src=src.name,
            dst=dst.name,
            send_timestamp=sample.source_timestamp,
        )
        port = self._port_name(reader)
        delivered = link.transmit(frame, lambda f: stack.deliver(port, f))
        if delivered:
            return
        # Frame lost on the wire.
        reliable = (
            writer.qos.reliability is ReliabilityKind.RELIABLE
            and reader.qos.reliability is ReliabilityKind.RELIABLE
        )
        if reliable and attempt < writer.qos.max_retransmits:
            self.sim.schedule_after(
                writer.qos.retransmit_delay,
                self._deliver_remote,
                writer,
                reader,
                sample,
                attempt + 1,
                label=f"dds:retransmit:{sample.topic.name}",
            )
        else:
            self.frames_dropped += 1
            self.sim.emit_trace(
                "dds.sample_dropped",
                topic=sample.topic.name,
                seq=sample.sequence_number,
                attempts=attempt + 1,
            )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DdsDomain participants={len(self.participants)} "
            f"topics={sorted(set(self._writers) | set(self._readers))}>"
        )
