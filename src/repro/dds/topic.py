"""Topics and samples.

A :class:`Sample` carries the *source timestamp* stamped by the writer
from its ECU-local clock.  This is the timestamp that "is natively passed
up to the DDS Subscriber" and that the paper's synchronization-based
remote monitor interprets at the receiver (valid because ECU clocks are
PTP-synchronized to within epsilon).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional


def _default_size(data: Any) -> int:
    """Best-effort serialized size estimate for arbitrary payloads."""
    nbytes = getattr(data, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + 64  # CDR header overhead
    if isinstance(data, (bytes, bytearray)):
        return len(data) + 64
    return 256


class Topic:
    """A named, typed communication channel.

    Parameters
    ----------
    name:
        Topic name (e.g. ``"points_fused"``).
    type_name:
        Informational type string (e.g. ``"PointCloud2"``).
    size_fn:
        Maps a payload to its serialized size in bytes (drives link
        serialization delay and copy costs).
    keyed:
        Whether samples carry instance keys (DDS keyed topics).  With
        multiple writers on one topic, readers distinguish instances --
        the paper notes one monitor per communication partner,
        "differentiated based on delivered DDS topic keys".
    """

    def __init__(
        self,
        name: str,
        type_name: str = "bytes",
        size_fn: Optional[Callable[[Any], int]] = None,
        keyed: bool = False,
    ):
        if not name:
            raise ValueError("topic name must be non-empty")
        self.name = name
        self.type_name = type_name
        self.size_fn = size_fn or _default_size
        self.keyed = keyed

    def serialized_size(self, data: Any) -> int:
        """Serialized size of *data* in bytes."""
        return self.size_fn(data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Topic {self.name} [{self.type_name}]>"


_next_sample_id = itertools.count(1).__next__


class Sample:
    """One published datum travelling writer -> reader(s).

    A ``__slots__`` record rather than a dataclass: one instance is
    allocated per publication per matched reader path, which makes
    construction cost part of the DDS hot path.
    """

    __slots__ = (
        "topic",
        "data",
        "source_timestamp",
        "sequence_number",
        "writer_id",
        "key",
        "recovered",
        "uid",
        "ctx",
    )

    def __init__(
        self,
        topic: Topic,
        data: Any,
        source_timestamp: int,
        sequence_number: int,
        writer_id: str = "",
        key: Optional[str] = None,
        recovered: bool = False,
        uid: Optional[int] = None,
    ):
        self.topic = topic
        self.data = data
        #: Writer-local clock value at publication (the DDS source timestamp).
        self.source_timestamp = source_timestamp
        #: Per-writer monotonically increasing sequence number (activation n).
        self.sequence_number = sequence_number
        #: Identifier of the publishing writer (for keyed differentiation).
        self.writer_id = writer_id
        #: Instance key for keyed topics (None for unkeyed).
        self.key = key
        #: Marks data substituted by a recovery handler rather than published.
        self.recovered = recovered
        #: Unique id (diagnostics).
        self.uid = uid if uid is not None else _next_sample_id()
        #: Publication span context (span tracing only; set by the
        #: writer, never mutated downstream -- one sample instance is
        #: shared by every matched reader).
        self.ctx = None

    @property
    def size_bytes(self) -> int:
        """Serialized size (topic-defined)."""
        return self.topic.serialized_size(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sample(topic={self.topic!r}, data={self.data!r}, "
            f"source_timestamp={self.source_timestamp!r}, "
            f"sequence_number={self.sequence_number!r}, "
            f"writer_id={self.writer_id!r}, key={self.key!r}, "
            f"recovered={self.recovered!r}, uid={self.uid!r})"
        )
