"""Topics and samples.

A :class:`Sample` carries the *source timestamp* stamped by the writer
from its ECU-local clock.  This is the timestamp that "is natively passed
up to the DDS Subscriber" and that the paper's synchronization-based
remote monitor interprets at the receiver (valid because ECU clocks are
PTP-synchronized to within epsilon).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


def _default_size(data: Any) -> int:
    """Best-effort serialized size estimate for arbitrary payloads."""
    nbytes = getattr(data, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + 64  # CDR header overhead
    if isinstance(data, (bytes, bytearray)):
        return len(data) + 64
    return 256


class Topic:
    """A named, typed communication channel.

    Parameters
    ----------
    name:
        Topic name (e.g. ``"points_fused"``).
    type_name:
        Informational type string (e.g. ``"PointCloud2"``).
    size_fn:
        Maps a payload to its serialized size in bytes (drives link
        serialization delay and copy costs).
    keyed:
        Whether samples carry instance keys (DDS keyed topics).  With
        multiple writers on one topic, readers distinguish instances --
        the paper notes one monitor per communication partner,
        "differentiated based on delivered DDS topic keys".
    """

    def __init__(
        self,
        name: str,
        type_name: str = "bytes",
        size_fn: Optional[Callable[[Any], int]] = None,
        keyed: bool = False,
    ):
        if not name:
            raise ValueError("topic name must be non-empty")
        self.name = name
        self.type_name = type_name
        self.size_fn = size_fn or _default_size
        self.keyed = keyed

    def serialized_size(self, data: Any) -> int:
        """Serialized size of *data* in bytes."""
        return self.size_fn(data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Topic {self.name} [{self.type_name}]>"


_sample_ids = itertools.count(1)


@dataclass
class Sample:
    """One published datum travelling writer -> reader(s)."""

    topic: Topic
    data: Any
    #: Writer-local clock value at publication (the DDS source timestamp).
    source_timestamp: int
    #: Per-writer monotonically increasing sequence number (activation n).
    sequence_number: int
    #: Identifier of the publishing writer (for keyed differentiation).
    writer_id: str = ""
    #: Instance key for keyed topics (None for unkeyed).
    key: Optional[str] = None
    #: Marks data substituted by a recovery handler rather than published.
    recovered: bool = False
    #: Unique id (diagnostics).
    uid: int = field(default_factory=lambda: next(_sample_ids))

    @property
    def size_bytes(self) -> int:
        """Serialized size (topic-defined)."""
        return self.topic.serialized_size(self.data)
