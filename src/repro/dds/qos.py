"""DDS Quality-of-Service policies.

Only the policies the paper touches are modelled:

- ``DEADLINE`` -- the reader expects consecutive samples (per instance)
  no further apart than the deadline period; a miss fires
  ``on_requested_deadline_missed``.  This *is* the inter-arrival
  monitoring baseline whose limitations the paper's Fig. 6 discusses.
- ``LIFESPAN`` -- samples older than the lifespan (by source timestamp)
  are dropped instead of delivered.
- ``RELIABILITY`` -- BEST_EFFORT drops lost frames; RELIABLE retries
  them, trading latency for delivery (the paper notes its monitor is
  transparent to DDS retransmissions).
- ``HISTORY`` -- KEEP_LAST(depth) bounds the reader queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ReliabilityKind(enum.Enum):
    """Delivery guarantee for a writer/reader pair."""

    BEST_EFFORT = "best_effort"
    RELIABLE = "reliable"


class HistoryKind(enum.Enum):
    """Sample retention discipline on the reader side."""

    KEEP_LAST = "keep_last"
    KEEP_ALL = "keep_all"


@dataclass(frozen=True)
class QosProfile:
    """A bundle of QoS policies for an endpoint.

    Parameters
    ----------
    reliability:
        BEST_EFFORT (default, sensor-style) or RELIABLE.
    history:
        KEEP_LAST with ``history_depth`` or KEEP_ALL.
    history_depth:
        Queue bound for KEEP_LAST.
    deadline:
        Requested maximum inter-arrival time in ns (None disables the
        deadline QoS / inter-arrival monitor).
    lifespan:
        Maximum sample age in ns at delivery (None disables).
    liveliness_lease:
        Lease duration in ns: a reader considers a matched writer alive
        while assertions (data or explicit) arrive within the lease;
        expiry fires ``on_liveliness_changed``.  This is the "liveliness
        rather than latency" supervision the paper deems the proper use
        of inter-arrival-style mechanisms.  None disables.
    max_retransmits:
        For RELIABLE: how many times a lost frame is retried.
    retransmit_delay:
        For RELIABLE: delay in ns before a retry (models the
        heartbeat/NACK round trip).
    """

    reliability: ReliabilityKind = ReliabilityKind.BEST_EFFORT
    history: HistoryKind = HistoryKind.KEEP_LAST
    history_depth: int = 10
    deadline: Optional[int] = None
    lifespan: Optional[int] = None
    liveliness_lease: Optional[int] = None
    max_retransmits: int = 3
    retransmit_delay: int = 500_000  # 0.5 ms

    def __post_init__(self) -> None:
        if self.history_depth < 1:
            raise ValueError("history_depth must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.lifespan is not None and self.lifespan <= 0:
            raise ValueError("lifespan must be positive")
        if self.liveliness_lease is not None and self.liveliness_lease <= 0:
            raise ValueError("liveliness lease must be positive")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        if self.retransmit_delay < 0:
            raise ValueError("retransmit_delay must be >= 0")

    def compatible_with(self, offered: "QosProfile") -> bool:
        """Requested-vs-offered check (reader requests, writer offers).

        Follows the DDS rule that a RELIABLE reader cannot match a
        BEST_EFFORT writer; everything else modelled here matches.
        """
        if (
            self.reliability is ReliabilityKind.RELIABLE
            and offered.reliability is ReliabilityKind.BEST_EFFORT
        ):
            return False
        return True


#: Sensible default profile (sensor data, like ROS2's "SensorDataQoS").
DEFAULT_QOS = QosProfile()
