"""DataReader: the subscription side of a topic.

``_receive()`` is the *receive event* of the paper's system model.  The
instrumentation surfaces mirror the writer's:

- ``receive_filters`` may discard a sample before it reaches the
  application -- the remote monitor uses this to drop "messages that
  arrive too late, i.e. after the corresponding exception" so the
  constant-rate assumption and (m,k) bookkeeping stay sound.
- ``on_receive_hooks`` see every accepted sample (tracer, monitors).

Deadline QoS (the inter-arrival baseline) is implemented here: a timer
re-armed on every arrival; expiry posts the ``on_requested_deadline_missed``
routine onto the *middleware event thread*, so its entry latency is the
scheduling-dependent quantity of the paper's Fig. 12.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, TYPE_CHECKING

from repro.dds.qos import DEFAULT_QOS, HistoryKind, QosProfile
from repro.dds.topic import Sample, Topic
from repro.sim.timers import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.dds.participant import DomainParticipant

ReceiveHook = Callable[[Sample], None]
ReceiveFilter = Callable[[Sample], bool]


class ReaderListener:
    """Application-facing callbacks (subclass and override)."""

    def on_data_available(self, reader: "DataReader", sample: Sample) -> None:
        """A sample was delivered to the reader."""

    def on_requested_deadline_missed(
        self, reader: "DataReader", key: Optional[str], total_count: int
    ) -> None:
        """The deadline QoS detected a missed inter-arrival deadline."""

    def on_sample_lifespan_expired(self, reader: "DataReader", sample: Sample) -> None:
        """A sample was dropped because it outlived its lifespan."""

    def on_liveliness_changed(
        self, reader: "DataReader", writer_id: str, alive: bool
    ) -> None:
        """A matched writer's liveliness was gained (True) or lost."""


class DataReader:
    """Receives samples of one topic from the domain."""

    def __init__(
        self,
        participant: "DomainParticipant",
        topic: Topic,
        qos: Optional[QosProfile] = None,
        listener: Optional[ReaderListener] = None,
    ):
        self.participant = participant
        self.topic = topic
        self.qos = qos or DEFAULT_QOS
        self.listener = listener or ReaderListener()
        self.guid = f"{participant.guid}/r{participant.sim.next_entity_id('reader')}"
        #: Return False to discard the sample before delivery.
        self.receive_filters: List[ReceiveFilter] = []
        #: Called for every accepted sample, before the listener.
        self.on_receive_hooks: List[ReceiveHook] = []
        self.history: Deque[Sample] = deque()
        self.received = 0
        self.filtered = 0
        self.lifespan_expired = 0
        self.deadline_missed_total = 0
        self._deadline_timers: Dict[Optional[str], Timer] = {}
        self._liveliness_timers: Dict[str, Timer] = {}
        #: writer_id -> currently-considered-alive flag.
        self.writer_alive: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Delivery path (called by the domain / network stack / recovery)
    # ------------------------------------------------------------------
    def _receive(self, sample: Sample) -> None:
        sim = self.participant.sim
        now_local = self.participant.ecu.now()
        if self.qos.lifespan is not None:
            age = now_local - sample.source_timestamp
            if age > self.qos.lifespan:
                self.lifespan_expired += 1
                if sim._trace_hooks:
                    sim.emit_trace(
                        "dds.lifespan_expired",
                        topic=self.topic.name,
                        reader=self.guid,
                        seq=sample.sequence_number,
                    )
                self.listener.on_sample_lifespan_expired(self, sample)
                return
        if self.qos.deadline is not None:
            self._arm_deadline(sample.key)
        if self.qos.liveliness_lease is not None and sample.writer_id:
            # Data counts as a liveliness assertion, even if later
            # filtered: the writer is evidently alive.
            self.assert_writer_liveliness(sample.writer_id)
        for receive_filter in self.receive_filters:
            if not receive_filter(sample):
                self.filtered += 1
                if sim._trace_hooks:
                    sim.emit_trace(
                        "dds.receive_filtered",
                        topic=self.topic.name,
                        reader=self.guid,
                        seq=sample.sequence_number,
                    )
                return
        self.received += 1
        if sim._trace_hooks:
            sim.emit_trace(
                "dds.receive",
                topic=self.topic.name,
                reader=self.guid,
                seq=sample.sequence_number,
                ts=sample.source_timestamp,
            )
        spans = sim.spans
        if spans is not None:
            # One transport span per accepted delivery, covering
            # publication instant -> this receive (sim time on both
            # ends, so the duration is the true wire+stack latency).
            # Recovered data injected via issue_receive has no
            # publication span: it parents to the ambient context,
            # i.e. the exception span that issued it.
            parent = sample.ctx
            start = None
            if parent is not None:
                origin = spans.get(parent.span_id)
                if origin is not None:
                    start = origin.end
            else:
                parent = spans.current
            tspan = spans.begin(
                "dds.transport",
                "network",
                parent=parent,
                start=start,
                topic=self.topic.name,
                reader=self.guid,
                seq=sample.sequence_number,
            )
            frame = getattr(sample.data, "frame_index", None)
            if frame is not None:
                tspan.attrs["frame"] = frame
            if sample.recovered:
                tspan.attrs["recovered"] = True
            spans.end(tspan)
            # Hooks, monitors and the executor enqueue all run inside
            # this delivery: hand them the transport context.
            spans.current = tspan.context
        self._store(sample)
        for hook in self.on_receive_hooks:
            hook(sample)
        self.listener.on_data_available(self, sample)

    def issue_receive(self, sample: Sample) -> None:
        """Inject *sample* into the delivery path (recovery handlers).

        This is the ``issue_receive(data)`` of the paper's Algorithm 1:
        a remote-segment recovery provides substitute data to the
        subsequent local segment as if it had arrived.
        """
        self._receive(sample)

    def _store(self, sample: Sample) -> None:
        self.history.append(sample)
        if self.qos.history is HistoryKind.KEEP_LAST:
            while len(self.history) > self.qos.history_depth:
                self.history.popleft()

    def take(self) -> Optional[Sample]:
        """Pop the oldest sample from the reader cache (polling access)."""
        if self.history:
            return self.history.popleft()
        return None

    # ------------------------------------------------------------------
    # Deadline QoS (inter-arrival monitoring)
    # ------------------------------------------------------------------
    def _arm_deadline(self, key: Optional[str]) -> None:
        timer = self._deadline_timers.get(key)
        if timer is None:
            timer = Timer(
                self.participant.sim,
                lambda key=key: self._deadline_expired(key),
                name=f"deadline:{self.guid}:{key}",
            )
            self._deadline_timers[key] = timer
        timer.start(self.qos.deadline)

    def _deadline_expired(self, key: Optional[str]) -> None:
        # Entry into the timeout routine happens on the middleware event
        # thread -- its scheduling latency is what Fig. 12 measures.
        self.deadline_missed_total += 1
        self.participant.sim.emit_trace(
            "dds.deadline_expired",
            topic=self.topic.name,
            reader=self.guid,
            key=key,
        )
        self.participant.post_middleware_event(
            self.listener.on_requested_deadline_missed,
            self,
            key,
            self.deadline_missed_total,
        )
        # DDS semantics: the deadline keeps firing every period until a
        # new sample arrives.
        self._arm_deadline(key)

    def cancel_deadline(self, key: Optional[str] = None) -> None:
        """Disarm the deadline timer (e.g. at shutdown)."""
        timer = self._deadline_timers.get(key)
        if timer is not None:
            timer.cancel()

    # ------------------------------------------------------------------
    # Liveliness QoS
    # ------------------------------------------------------------------
    def assert_writer_liveliness(self, writer_id: str) -> None:
        """Refresh the lease of *writer_id* (data or explicit assertion).

        Fires ``on_liveliness_changed(alive=True)`` when the writer was
        previously unknown or considered dead.
        """
        if self.qos.liveliness_lease is None:
            return
        was_alive = self.writer_alive.get(writer_id)
        self.writer_alive[writer_id] = True
        timer = self._liveliness_timers.get(writer_id)
        if timer is None:
            timer = Timer(
                self.participant.sim,
                lambda w=writer_id: self._liveliness_lost(w),
                name=f"liveliness:{self.guid}:{writer_id}",
            )
            self._liveliness_timers[writer_id] = timer
        timer.start(self.qos.liveliness_lease)
        if was_alive is not True:
            self.participant.post_middleware_event(
                self.listener.on_liveliness_changed, self, writer_id, True
            )

    def _liveliness_lost(self, writer_id: str) -> None:
        self.writer_alive[writer_id] = False
        self.participant.sim.emit_trace(
            "dds.liveliness_lost", reader=self.guid, writer=writer_id
        )
        self.participant.post_middleware_event(
            self.listener.on_liveliness_changed, self, writer_id, False
        )

    def cancel_liveliness(self) -> None:
        """Disarm all liveliness lease timers (shutdown)."""
        for timer in self._liveliness_timers.values():
            timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DataReader {self.guid} topic={self.topic.name}>"
