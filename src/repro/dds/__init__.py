"""A DDS-like publish/subscribe middleware over the simulated platform.

This is the stand-in for eProsima Fast-RTPS underneath ROS2:

- :mod:`repro.dds.qos` -- QoS policies.  DEADLINE is the *inter-arrival
  monitoring* the paper uses as its baseline (Sec. III/IV: "a basic
  concept in DDS"); RELIABILITY adds retransmission over lossy links;
  LIFESPAN expires stale samples.
- :mod:`repro.dds.topic` -- topics, samples (carrying the *source
  timestamp* that synchronization-based monitoring interprets), keys.
- :mod:`repro.dds.participant` -- per-process domain participants with a
  middleware event thread: deadline timers and retransmissions execute
  at middleware priority, which is what the paper's Fig. 12 measures.
- :mod:`repro.dds.writer` / :mod:`repro.dds.reader` -- endpoints with
  publication/receive instrumentation hooks (the paper's communication
  events) for monitors and tracers to attach to.
- :mod:`repro.dds.domain` -- endpoint matching and transport wiring
  (same-ECU loopback vs. inter-ECU links + ksoftirq receive path).
"""

from repro.dds.qos import HistoryKind, QosProfile, ReliabilityKind
from repro.dds.topic import Sample, Topic
from repro.dds.participant import DomainParticipant
from repro.dds.writer import DataWriter
from repro.dds.reader import DataReader, ReaderListener
from repro.dds.domain import DdsDomain

__all__ = [
    "HistoryKind",
    "QosProfile",
    "ReliabilityKind",
    "Sample",
    "Topic",
    "DomainParticipant",
    "DataWriter",
    "DataReader",
    "ReaderListener",
    "DdsDomain",
]
