"""DataWriter: the publication side of a topic.

``write()`` is the *publication event* of the paper's system model.  Two
instrumentation surfaces are exposed:

- ``publish_filters`` run first and may *suppress* the publication --
  this is how the local-segment monitor implements "after an exception
  has been handled, the next publication event will be skipped" (the
  shared skip counter evaluated by the publisher).
- ``on_publish_hooks`` run for publications that actually happen; the
  tracer and the local monitor's end-event posting attach here.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.dds.qos import DEFAULT_QOS, QosProfile
from repro.dds.topic import Sample, Topic

if TYPE_CHECKING:  # pragma: no cover
    from repro.dds.participant import DomainParticipant

PublishHook = Callable[[Sample], None]
PublishFilter = Callable[[Sample], bool]


class DataWriter:
    """Publishes samples of one topic into the domain."""

    def __init__(
        self,
        participant: "DomainParticipant",
        topic: Topic,
        qos: Optional[QosProfile] = None,
        writer_id: Optional[str] = None,
    ):
        self.participant = participant
        self.topic = topic
        self.qos = qos or DEFAULT_QOS
        self.guid = writer_id or (
            f"{participant.guid}/w{participant.sim.next_entity_id('writer')}"
        )
        self._seq = itertools.count()
        #: Return False to suppress the publication (monitor skip logic).
        self.publish_filters: List[PublishFilter] = []
        #: Called for every sample that is actually published.
        self.on_publish_hooks: List[PublishHook] = []
        self.published = 0
        self.suppressed = 0

    def write(
        self,
        data: Any,
        source_timestamp: Optional[int] = None,
        key: Optional[str] = None,
        recovered: bool = False,
    ) -> Optional[Sample]:
        """Publish *data*; return the sample, or None if suppressed.

        The source timestamp defaults to the *local clock* of the hosting
        ECU -- under PTP it is globally meaningful to within epsilon.
        """
        if source_timestamp is None:
            source_timestamp = self.participant.ecu.now()
        sim = self.participant.sim
        sample = Sample(
            topic=self.topic,
            data=data,
            source_timestamp=source_timestamp,
            sequence_number=next(self._seq),
            writer_id=self.guid,
            key=key,
            recovered=recovered,
        )
        for publish_filter in self.publish_filters:
            if not publish_filter(sample):
                self.suppressed += 1
                if sim._trace_hooks:
                    sim.emit_trace(
                        "dds.publish_suppressed",
                        topic=self.topic.name,
                        writer=self.guid,
                        seq=sample.sequence_number,
                    )
                return None
        self.published += 1
        if sim._trace_hooks:
            sim.emit_trace(
                "dds.publish",
                topic=self.topic.name,
                writer=self.guid,
                seq=sample.sequence_number,
                ts=sample.source_timestamp,
            )
        spans = sim.spans
        if spans is not None:
            # The publication instant: chains are anchored at these, and
            # downstream transport spans parent to them via sample.ctx.
            pub = spans.instant(
                "dds.publish",
                "publish",
                topic=self.topic.name,
                writer=self.guid,
                seq=sample.sequence_number,
            )
            frame = getattr(data, "frame_index", None)
            if frame is not None:
                pub.attrs["frame"] = frame
            if recovered:
                pub.attrs["recovered"] = True
            sample.ctx = pub.context
        for hook in self.on_publish_hooks:
            hook(sample)
        self.participant.domain._route(self, sample)
        return sample

    def assert_liveliness(self) -> None:
        """Explicitly assert this writer's liveliness to matched readers
        (MANUAL_BY_TOPIC-style assertion; writing data also asserts)."""
        self.participant.domain._route_liveliness(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DataWriter {self.guid} topic={self.topic.name}>"
