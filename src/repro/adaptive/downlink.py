"""Server-side epoch distribution over the (unreliable) downlink.

The distributor mirrors the uplink client's discipline, flipped: the
*server* retries and the *vehicle* acknowledges only what it has made
durable.  Per vehicle there is exactly one target epoch -- the newest
published one -- and it is resent on a fixed cadence until a covering
ack arrives.  Monotonic epoch ids make every retry safe: a stale or
duplicated frame is recognized and re-acked (idempotent) vehicle-side,
and a stale ack is recognized and dropped here.

Durability ordering is append-before-publish: the
:class:`~repro.adaptive.epochs.EpochLedger` records the publication
*before* the first frame is offered to the channel, and records every
vehicle ack as it arrives -- so a recovered server knows exactly which
vehicles still need the current epoch and re-targets only those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Set

from repro.adaptive.epochs import BudgetEpoch, EpochLedger
from repro.telemetry.uplink.transport import (
    EPOCH_ACK_SCHEMA,
    encode_epoch_frame,
)


@dataclass
class DistributorConfig:
    """Retry cadence, in virtual steps."""

    resend_every: int = 8

    def __post_init__(self) -> None:
        if self.resend_every < 1:
            raise ValueError("resend_every must be >= 1")


class EpochDistributor:
    """Retrying exactly-once epoch rollout to a vehicle cohort."""

    def __init__(
        self,
        send: Callable[[str, str, int], object],
        ledger: EpochLedger,
        config: Optional[DistributorConfig] = None,
    ):
        #: ``send(payload, vehicle, now)`` hands a frame to the channel.
        self._send = send
        self.ledger = ledger
        self.config = config or DistributorConfig()
        #: vehicle -> epoch it still owes an ack for.
        self._outstanding: Dict[str, BudgetEpoch] = {}
        self._next_send: Dict[str, int] = {}
        #: vehicle -> (epoch_id, status) of the newest ack seen.
        self.acked: Dict[str, tuple] = dict(ledger.acks)
        # Counters.
        self.frames_sent = 0
        self.resends = 0
        self.acks = 0
        self.stale_acks = 0

    # ------------------------------------------------------------------
    def publish(
        self, epoch: BudgetEpoch, cohort: Sequence[str], stage: str
    ) -> None:
        """Target *cohort* with *epoch*; ledger first, frames later.

        Raises :class:`~repro.adaptive.epochs.EpochLedgerError` when
        the epoch has no validation on record -- the invariant gate.
        """
        self.ledger.record_published(
            epoch.epoch_id, stage, tuple(cohort)
        )
        for vehicle in sorted(cohort):
            held = self.acked.get(vehicle)
            if held is not None and held[0] >= epoch.epoch_id \
                    and held[1] == "applied":
                continue  # already on (or past) this epoch
            self._outstanding[vehicle] = epoch
            self._next_send[vehicle] = 0  # due immediately

    def retarget(self, epoch: BudgetEpoch, cohort: Sequence[str]) -> None:
        """Re-arm deliveries after a server recovery (no ledger entry:
        the publication is already on record)."""
        for vehicle in sorted(cohort):
            held = self.acked.get(vehicle)
            if held is not None and held[0] >= epoch.epoch_id \
                    and held[1] == "applied":
                continue
            self._outstanding[vehicle] = epoch
            self._next_send[vehicle] = 0

    # ------------------------------------------------------------------
    def tick(self, now: int) -> int:
        """Send / resend due frames; returns how many went out."""
        sent = 0
        for vehicle in sorted(self._outstanding):
            due = self._next_send.get(vehicle)
            if due is None or now < due:
                continue
            epoch = self._outstanding[vehicle]
            self._send(
                encode_epoch_frame(vehicle, epoch.to_json()), vehicle, now
            )
            self.frames_sent += 1
            if due > 0:
                self.resends += 1
            sent += 1
            # A zero-latency channel may deliver the ack from inside
            # the send itself; re-arming then would resurrect a retry
            # for a vehicle that has already settled.
            if vehicle in self._outstanding:
                self._next_send[vehicle] = now + self.config.resend_every
        return sent

    # ------------------------------------------------------------------
    def on_ack(self, doc: dict, now: int) -> bool:
        """Fold one decoded epoch-ack envelope; True on progress."""
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != EPOCH_ACK_SCHEMA
            or not isinstance(doc.get("vehicle"), str)
            or not isinstance(doc.get("epoch_id"), int)
            or doc.get("status") not in ("applied", "deferred")
        ):
            return False
        vehicle = doc["vehicle"]
        epoch_id = doc["epoch_id"]
        status = doc["status"]
        held = self.acked.get(vehicle)
        if held is not None and (
            held[0] > epoch_id
            or (held[0] == epoch_id and held == (epoch_id, "applied"))
        ):
            self.stale_acks += 1
            return False
        self.acks += 1
        self.acked[vehicle] = (epoch_id, status)
        self.ledger.record_ack(vehicle, epoch_id, status)
        target = self._outstanding.get(vehicle)
        if target is not None and epoch_id >= target.epoch_id:
            # Durable vehicle-side (applied or deferred): stop resending.
            # A deferred vehicle re-acks "applied" on its own once the
            # degradation ladder clears; nothing further to deliver.
            del self._outstanding[vehicle]
            del self._next_send[vehicle]
        return True

    # ------------------------------------------------------------------
    def outstanding(self) -> Dict[str, int]:
        return {
            vehicle: epoch.epoch_id
            for vehicle, epoch in sorted(self._outstanding.items())
        }

    def applied_by(self, epoch_id: int) -> Set[str]:
        """Vehicles whose newest ack applies *epoch_id* (or newer)."""
        return {
            vehicle
            for vehicle, (acked_id, status) in self.acked.items()
            if acked_id >= epoch_id and status == "applied"
        }

    def settled(self, epoch_id: int, cohort: Sequence[str]) -> bool:
        """Every cohort vehicle has applied *epoch_id* (or newer)."""
        return set(cohort) <= self.applied_by(epoch_id)

    def idle(self) -> bool:
        return not self._outstanding

    def stats(self) -> dict:
        return {
            "frames_sent": self.frames_sent,
            "resends": self.resends,
            "acks": self.acks,
            "stale_acks": self.stale_acks,
            "outstanding": self.outstanding(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<EpochDistributor outstanding={len(self._outstanding)} "
            f"acks={self.acks}>"
        )
