"""Budget epochs and the durable epoch ledger.

A **budget epoch** is one immutable, monotonically versioned ``d_mon``
assignment for every chain the control plane manages.  Identity is the
*content digest* of the budgets (sha256 over canonical JSON), so two
epochs with the same budgets -- e.g. a rollback re-publishing the
last-good assignment under a fresh id -- are recognizably "the same
budgets" everywhere convergence is checked.

The **epoch ledger** is the control plane's write-ahead source of
truth: an append-only, CRC-framed JSONL file (the WAL line framing of
:mod:`repro.telemetry.uplink.wal`) recording every epoch's life-cycle
transition.  Its append order *is* the state machine::

    epoch -> validated -> published(canary) -> published(fleet)
          \\-> rejected                     \\-> rollback -> ...

and :meth:`EpochLedger.record_published` refuses -- live and on replay
-- to publish an epoch id that has no ``validated`` entry.  That makes
the control plane's core invariant ("a fleet NEVER runs an epoch that
failed shadow validation") a durability property rather than a code
path: a server crash between validate and publish recovers to a ledger
whose tail says *validated, not published*, and recovery either
re-decides or abandons -- it cannot invent a publication.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.telemetry.records import SchemaVersionError
from repro.telemetry.uplink.wal import decode_entry, encode_entry

#: Schema identifier of one serialized budget epoch.
EPOCH_SCHEMA = "repro-adaptive-epoch/1"
#: Schema identifier of the epoch ledger file (header line).
LEDGER_SCHEMA = "repro-adaptive-ledger/1"


class EpochStatus(enum.Enum):
    """Life-cycle of one epoch, as reconstructed from the ledger."""

    DRAFT = "draft"
    VALIDATED = "validated"
    REJECTED = "rejected"
    CANARY = "canary"
    FLEET = "fleet"
    ROLLED_BACK = "rolled_back"


class EpochLedgerError(RuntimeError):
    """An append that would violate the epoch state machine."""


@dataclass(frozen=True)
class BudgetEpoch:
    """One immutable per-chain ``d_mon`` assignment.

    ``budgets`` maps chain name -> segment name -> ``d_mon`` (ns);
    ``basis`` is free-form provenance (window size, percentiles, the
    solver used) carried for auditability, excluded from identity.
    """

    epoch_id: int
    budgets: Mapping[str, Mapping[str, int]]
    basis: Mapping[str, object] = field(default_factory=dict)
    parent_id: int = -1
    rollback_of: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epoch_id < 0:
            raise ValueError("epoch_id must be >= 0")
        if not self.budgets:
            raise ValueError("an epoch needs at least one chain budget")
        for chain, segments in self.budgets.items():
            if not segments:
                raise ValueError(f"chain {chain}: empty budget map")
            for segment, d_mon in segments.items():
                if not isinstance(d_mon, int) or d_mon <= 0:
                    raise ValueError(
                        f"{chain}/{segment}: d_mon must be a positive "
                        f"int, got {d_mon!r}"
                    )

    # ------------------------------------------------------------------
    def flat_budgets(self) -> Dict[str, int]:
        """Per-segment budgets across chains (min wins on shared
        segments -- the conservative monitor threshold)."""
        flat: Dict[str, int] = {}
        for chain in sorted(self.budgets):
            for segment, d_mon in self.budgets[chain].items():
                held = flat.get(segment)
                if held is None or d_mon < held:
                    flat[segment] = d_mon
        return flat

    def chain_budget(self, chain: str) -> Dict[str, int]:
        return dict(self.budgets[chain])

    def digest(self) -> str:
        """Content identity: sha256 over the canonical budget map."""
        body = json.dumps(
            {c: dict(sorted(s.items())) for c, s in sorted(self.budgets.items())},
            separators=(",", ":"), sort_keys=True,
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": EPOCH_SCHEMA,
            "epoch_id": self.epoch_id,
            "budgets": {
                chain: dict(sorted(segments.items()))
                for chain, segments in sorted(self.budgets.items())
            },
            "basis": dict(self.basis),
            "parent_id": self.parent_id,
            "rollback_of": self.rollback_of,
        }

    @classmethod
    def from_json(cls, data: dict) -> "BudgetEpoch":
        if not isinstance(data, dict) or data.get("schema") != EPOCH_SCHEMA:
            raise SchemaVersionError(
                "budget epoch",
                data.get("schema") if isinstance(data, dict) else type(data).__name__,
                EPOCH_SCHEMA,
            )
        return cls(
            epoch_id=int(data["epoch_id"]),
            budgets={
                chain: {seg: int(d) for seg, d in segments.items()}
                for chain, segments in data["budgets"].items()
            },
            basis=dict(data.get("basis", {})),
            parent_id=int(data.get("parent_id", -1)),
            rollback_of=data.get("rollback_of"),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<BudgetEpoch #{self.epoch_id} chains={len(self.budgets)} "
            f"digest={self.digest()[:8]}>"
        )


@dataclass
class LedgerRecoveryReport:
    """What :meth:`EpochLedger.recover` rebuilt from disk."""

    entries: int = 0
    truncated_tail: bool = False


class EpochLedger:
    """Append-only durable record of every epoch life-cycle event.

    Entries are CRC-framed JSON lists.  Tags:

    - ``["epoch", epoch_doc]`` -- candidate recorded (DRAFT);
    - ``["validated", id, summary]`` -- shadow validation accepted;
    - ``["rejected", id, reason]`` -- shadow validation refused;
    - ``["published", id, stage, [cohort...]]`` -- rolled out
      (``stage`` in ``canary|fleet``), **only for validated ids**;
    - ``["rollback", from_id, to_id]`` -- canary regressed;
    - ``["ack", vehicle, id, status]`` -- a vehicle's durable ack.

    Appends are flushed (and fsynced per policy) before the method
    returns: the ledger is written *before* any frame leaves the
    server, the epoch-side mirror of append-before-ack.
    """

    def __init__(self, path: Path, fsync: str = "never"):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        self._file = open(self.path, "a", encoding="utf-8")
        self.epochs: Dict[int, BudgetEpoch] = {}
        self.validated: Set[int] = set()
        self.rejected: Dict[int, str] = {}
        #: Publication history, append order: (epoch_id, stage, cohort).
        self.published: List[Tuple[int, str, Tuple[str, ...]]] = []
        self.rollbacks: List[Tuple[int, int]] = []
        #: vehicle -> (epoch_id, status) of its newest ack.
        self.acks: Dict[str, Tuple[int, str]] = {}
        self.entries = 0
        if fresh:
            self._append(["header", LEDGER_SCHEMA])

    # ------------------------------------------------------------------
    def _append(self, fields: list) -> None:
        body = json.dumps(fields, separators=(",", ":"), sort_keys=False)
        self._file.write(encode_entry(body) + "\n")
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        self.entries += 1

    # ------------------------------------------------------------------
    def record_epoch(self, epoch: BudgetEpoch) -> None:
        if epoch.epoch_id in self.epochs:
            raise EpochLedgerError(
                f"epoch {epoch.epoch_id} already recorded"
            )
        self._append(["epoch", epoch.to_json()])
        self.epochs[epoch.epoch_id] = epoch

    def record_validated(self, epoch_id: int, summary: dict) -> None:
        if epoch_id not in self.epochs:
            raise EpochLedgerError(f"validated unknown epoch {epoch_id}")
        if epoch_id in self.rejected:
            raise EpochLedgerError(
                f"epoch {epoch_id} was rejected; cannot validate"
            )
        self._append(["validated", epoch_id, summary])
        self.validated.add(epoch_id)

    def record_rejected(self, epoch_id: int, reason: str) -> None:
        if epoch_id not in self.epochs:
            raise EpochLedgerError(f"rejected unknown epoch {epoch_id}")
        if epoch_id in self.validated:
            raise EpochLedgerError(
                f"epoch {epoch_id} was validated; cannot reject"
            )
        self._append(["rejected", epoch_id, reason])
        self.rejected[epoch_id] = reason

    def record_published(
        self, epoch_id: int, stage: str, cohort: Tuple[str, ...]
    ) -> None:
        """THE invariant lives here: publishing an unvalidated epoch is
        impossible, live and (via :meth:`recover`) after any crash."""
        if stage not in ("canary", "fleet"):
            raise EpochLedgerError(f"unknown publish stage {stage!r}")
        if epoch_id not in self.validated:
            raise EpochLedgerError(
                f"refusing to publish epoch {epoch_id}: no shadow "
                f"validation on record"
            )
        self._append(["published", epoch_id, stage, sorted(cohort)])
        self.published.append((epoch_id, stage, tuple(sorted(cohort))))

    def record_rollback(self, from_id: int, to_id: int) -> None:
        self._append(["rollback", from_id, to_id])
        self.rollbacks.append((from_id, to_id))

    def record_ack(self, vehicle: str, epoch_id: int, status: str) -> None:
        self._append(["ack", vehicle, epoch_id, status])
        held = self.acks.get(vehicle)
        if held is None or epoch_id >= held[0]:
            self.acks[vehicle] = (epoch_id, status)

    # ------------------------------------------------------------------
    def status_of(self, epoch_id: int) -> EpochStatus:
        if epoch_id in self.rejected:
            return EpochStatus.REJECTED
        if any(src == epoch_id for src, _ in self.rollbacks):
            return EpochStatus.ROLLED_BACK
        stages = [s for eid, s, _ in self.published if eid == epoch_id]
        if "fleet" in stages:
            return EpochStatus.FLEET
        if "canary" in stages:
            return EpochStatus.CANARY
        if epoch_id in self.validated:
            return EpochStatus.VALIDATED
        return EpochStatus.DRAFT

    @property
    def next_epoch_id(self) -> int:
        return max(self.epochs) + 1 if self.epochs else 0

    def last_published(self, stage: str = "fleet") -> Optional[int]:
        for epoch_id, entry_stage, _ in reversed(self.published):
            if entry_stage == stage:
                return epoch_id
        return None

    def to_json(self) -> dict:
        return {
            "schema": LEDGER_SCHEMA,
            "entries": self.entries,
            "epochs": sorted(self.epochs),
            "validated": sorted(self.validated),
            "rejected": {str(k): v for k, v in sorted(self.rejected.items())},
            "published": [
                {"epoch_id": eid, "stage": stage, "cohort": list(cohort)}
                for eid, stage, cohort in self.published
            ],
            "rollbacks": [list(pair) for pair in self.rollbacks],
            "acks": {
                vehicle: {"epoch_id": eid, "status": status}
                for vehicle, (eid, status) in sorted(self.acks.items())
            },
        }

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls, path: Path, fsync: str = "never"
    ) -> Tuple["EpochLedger", LedgerRecoveryReport]:
        """Replay the ledger through the same state machine used live.

        A torn final line (crash mid-append) is dropped -- that event
        "never happened".  A decodable entry that violates the state
        machine (e.g. a published-but-never-validated id) raises
        :class:`EpochLedgerError`: that is corruption, not a crash."""
        path = Path(path)
        report = LedgerRecoveryReport()
        lines: List[str] = []
        if path.exists():
            lines = path.read_text(encoding="utf-8").splitlines()
        ledger = cls.__new__(cls)
        ledger.path = path
        ledger.fsync = fsync
        ledger.epochs = {}
        ledger.validated = set()
        ledger.rejected = {}
        ledger.published = []
        ledger.rollbacks = []
        ledger.acks = {}
        ledger.entries = 0
        path.parent.mkdir(parents=True, exist_ok=True)
        kept: List[str] = []
        for index, line in enumerate(lines):
            fields = decode_entry(line)
            if fields is None:
                if index == len(lines) - 1:
                    report.truncated_tail = True
                    break
                raise EpochLedgerError(
                    f"{path}: corrupt ledger entry mid-file (line {index})"
                )
            kept.append(line)
            tag = fields[0]
            if tag == "header":
                if fields[1] != LEDGER_SCHEMA:
                    raise SchemaVersionError(
                        "epoch ledger", fields[1], LEDGER_SCHEMA
                    )
            elif tag == "epoch":
                epoch = BudgetEpoch.from_json(fields[1])
                if epoch.epoch_id in ledger.epochs:
                    raise EpochLedgerError(
                        f"duplicate epoch {epoch.epoch_id} in ledger"
                    )
                ledger.epochs[epoch.epoch_id] = epoch
            elif tag == "validated":
                ledger.validated.add(int(fields[1]))
            elif tag == "rejected":
                ledger.rejected[int(fields[1])] = str(fields[2])
            elif tag == "published":
                epoch_id, stage = int(fields[1]), str(fields[2])
                if epoch_id not in ledger.validated:
                    raise EpochLedgerError(
                        f"ledger publishes unvalidated epoch {epoch_id}"
                    )
                ledger.published.append(
                    (epoch_id, stage, tuple(fields[3]))
                )
            elif tag == "rollback":
                ledger.rollbacks.append((int(fields[1]), int(fields[2])))
            elif tag == "ack":
                vehicle, epoch_id, status = (
                    str(fields[1]), int(fields[2]), str(fields[3])
                )
                held = ledger.acks.get(vehicle)
                if held is None or epoch_id >= held[0]:
                    ledger.acks[vehicle] = (epoch_id, status)
            # Unknown tags are skipped (forward compatibility).
            report.entries += 1
        if report.truncated_tail:
            # Repair in place so the next append starts a clean line.
            path.write_text(
                "\n".join(kept) + ("\n" if kept else ""), encoding="utf-8"
            )
        ledger._file = open(path, "a", encoding="utf-8")
        ledger.entries = report.entries
        if not kept:
            ledger._append(["header", LEDGER_SCHEMA])
        return ledger, report

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<EpochLedger epochs={len(self.epochs)} "
            f"validated={len(self.validated)} rejected={len(self.rejected)} "
            f"published={len(self.published)}>"
        )
