"""Deterministic chaos harness for the adaptive budget control plane.

This is the closed-loop sibling of the uplink chaos sweep
(:mod:`repro.telemetry.uplink.chaos`): a small fleet drives one event
chain, each vehicle computes its per-segment verdicts against the
budgets of its **currently active epoch**, telemetry flows up through
the store-and-forward uplink, and the control plane re-derives,
shadow-validates, canaries, promotes and -- when a canary regresses --
rolls back budget epochs over the downlink.  Faults hit both channel
directions and both endpoints, exactly on schedule, from seeded
streams; no wall clock is read, so a failing schedule replays
byte-identically.

End-of-run conservation laws, per scenario:

- **epoch invariant** -- the union of every budget map any vehicle ever
  installed is a subset of the ledger's ``validated`` set and disjoint
  from ``rejected``: a fleet NEVER runs an epoch that failed shadow
  validation, not even transiently, not even mid-crash;
- **epoch convergence** -- after the dust settles every vehicle's
  active epoch carries the *content digest* of the plane's last-good
  epoch (mixed-epoch fleets heal);
- **vehicle epoch ledger** -- per vehicle,
  ``received == applied + parked + superseded`` as a disjoint union;
- **uplink ledger** -- the store-and-forward law,
  ``offered == acked + spooled + evicted``, still holds underneath;
- **recovery equivalence** -- both the fleet store and the epoch
  ledger, recovered cold from disk, match their live counterparts.

Run it: ``python -m repro adapt`` (``--quick`` in CI, ``-j N`` for a
parallel sweep whose report is byte-identical to the serial one).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.adaptive.controlplane import (
    BudgetControlPlane,
    ControlPlaneConfig,
    ControlPlaneState,
)
from repro.adaptive.epochs import BudgetEpoch, EpochLedger
from repro.adaptive.resolver import ResolverConfig
from repro.adaptive.shadow import ShadowConfig
from repro.adaptive.vehicle import SimulatedApplyCrash, VehicleEpochAgent
from repro.core.chains import EventChain
from repro.core.segments import local_segment, remote_segment
from repro.core.weakly_hard import MKConstraint
from repro.faults.degradation import DegradationMode
from repro.telemetry.records import RecordKind, TelemetryRecord, segment_record
from repro.telemetry.service import ServiceConfig, TelemetryService
from repro.telemetry.store import StoreConfig
from repro.telemetry.uplink.chaos import CrashEvent
from repro.telemetry.uplink.client import (
    RetryingUplinkClient,
    UplinkClientConfig,
)
from repro.telemetry.uplink.ingest import UplinkIngestor, store_digest
from repro.telemetry.uplink.transport import (
    ACK_SCHEMA,
    EPOCH_ACK_SCHEMA,
    EPOCH_FRAME_SCHEMA,
    AdversarialChannel,
    ChannelFaultPlan,
    decode_envelope,
)
from repro.telemetry.uplink.wal import WalConfig, WalSpooler

_MS = 1_000_000


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class AdaptConfig:
    """Fleet shape and driver knobs shared by every scenario."""

    vehicles: int = 3
    #: Chain activations each vehicle emits (one per step while alive).
    frames: int = 120
    seed: int = 2025
    max_steps: int = 4000
    fsync: str = "never"
    segment_max_records: int = 64
    checkpoint_every: Optional[int] = 8
    #: Lognormal sigma of every segment's latency stream.
    sigma: float = 0.18

    def __post_init__(self) -> None:
        if self.vehicles < 2:
            raise ValueError("need >= 2 vehicles (canary + control)")
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")

    def vehicle_ids(self) -> List[str]:
        return [f"vehicle-{i:03d}" for i in range(self.vehicles)]

    def client_config(self) -> UplinkClientConfig:
        return UplinkClientConfig(
            batch_records=16, ack_timeout=6, backoff_base=2,
            backoff_max=32, failure_threshold=4, cooldown=10,
            seed=self.seed,
        )

    def service_config(self, epoch0: BudgetEpoch) -> ServiceConfig:
        chain = fleet_chain()
        return ServiceConfig(
            queue_capacity=1 << 16,
            store=StoreConfig(
                mk_by_chain={chain.name: (chain.mk.m, chain.mk.k)},
                budget_by_segment=epoch0.flat_budgets(),
            ),
        )


def fleet_chain() -> EventChain:
    """The monitored chain every scenario drives: sensor -> fusion ->
    planner across three ECUs, (3,8)-weakly-hard, B_e2e well above the
    factory deadline sum so the resolver has slack to redistribute."""
    return EventChain(
        name="pipeline",
        segments=[
            remote_segment("seg0", "/sensor", "ecu0", "ecu1",
                           d_mon=8 * _MS),
            local_segment("seg1", "ecu1", "/sensor", "/fused",
                          d_mon=10 * _MS),
            remote_segment("seg2", "/fused", "ecu1", "ecu2",
                           d_mon=12 * _MS),
        ],
        period=50 * _MS,
        budget_e2e=40 * _MS,
        budget_seg=16 * _MS,
        mk=MKConstraint(3, 8),
    )


#: Calm per-segment latency medians (ns); drift multiplies these.
_BASE_NS = {"seg0": 4 * _MS, "seg1": 6 * _MS, "seg2": 8 * _MS}


@dataclass
class AdaptScenario:
    """One named fault x crash x control-plane schedule."""

    name: str
    description: str = ""
    up: ChannelFaultPlan = field(default_factory=ChannelFaultPlan)
    down: ChannelFaultPlan = field(default_factory=ChannelFaultPlan)
    crashes: Tuple[CrashEvent, ...] = ()
    #: ``(step, vehicle_index, mode)`` degradation-ladder transitions.
    mode_events: Tuple[Tuple[int, int, str], ...] = ()
    #: ``(first_frame, last_frame, factor, segment)`` latency-drift
    #: windows, in per-vehicle activation indices (crash-resumable);
    #: ``segment == ""`` drifts the whole chain.
    drift: Tuple[Tuple[int, int, float, str], ...] = ()
    #: Inject a doctored (over-tight) candidate at this step: shadow
    #: validation must reject it and it must never reach a vehicle.
    inject_bad_at: Optional[int] = None
    #: Force one ordinary resolve+validate pass at this step (used with
    #: ``rederive_every=0`` for scenarios that need exact timing).
    force_rederive_at: Optional[int] = None
    #: Stage a candidate through resolve+shadow+``validated`` ledger
    #: entries, then kill the server *before* it can publish.
    validate_then_crash_at: Optional[int] = None
    #: Kill this vehicle inside the recv->apply window of its next
    #: fresh epoch frame (torn-apply recovery path).
    crash_on_recv: Optional[int] = None
    crash_down_for: int = 8
    #: Control-plane / resolver overrides (None: scenario defaults).
    control: Optional[ControlPlaneConfig] = None
    resolver: Optional[ResolverConfig] = None
    # Expectations checked at the end of the run.
    expect_promotion: bool = False
    expect_reject: bool = False
    expect_rollback: bool = False
    expect_deferral: bool = False
    expect_pending_recovery: bool = False
    expect_abandoned: bool = False


def _control(rederive_every: int = 48) -> ControlPlaneConfig:
    return ControlPlaneConfig(
        rederive_every=rederive_every, window_records=4096,
        canary_count=1, probation_steps=24, regression_margin=0.5,
        resend_every=6,
    )


def default_scenarios() -> List[AdaptScenario]:
    """The sweep ``python -m repro adapt`` runs: the happy closed loop,
    every control-frame fault class, crashes on both ends at the nasty
    points of the epoch state machine, a partition that leaves the
    fleet mixed-epoch, a seeded bad candidate, and a canary that
    genuinely regresses."""
    drift = ((40, 10 ** 9, 1.5, ""),)
    return [
        AdaptScenario(
            name="adapt_baseline",
            description="drift -> re-derive -> canary -> promote, "
                        "clean channels",
            drift=drift,
            expect_promotion=True,
        ),
        AdaptScenario(
            name="epoch_frame_lost",
            description="25% downlink loss: epoch frames resend until "
                        "acked",
            up=ChannelFaultPlan(drop_prob=0.15),
            down=ChannelFaultPlan(drop_prob=0.25),
            drift=drift,
            expect_promotion=True,
        ),
        AdaptScenario(
            name="epoch_frame_dup_reorder",
            description="heavy duplication + reordering both ways: "
                        "stale frames re-acked, monotonicity holds",
            up=ChannelFaultPlan(dup_prob=0.2, reorder_prob=0.2,
                                jitter_steps=2),
            down=ChannelFaultPlan(dup_prob=0.3, reorder_prob=0.3,
                                  reorder_extra=5, jitter_steps=2),
            drift=drift,
            expect_promotion=True,
        ),
        AdaptScenario(
            name="partition_mixed_epoch",
            description="partition mid-rollout leaves a mixed-epoch "
                        "fleet; heal must reconverge to one digest",
            up=ChannelFaultPlan(partitions=((82, 112),)),
            down=ChannelFaultPlan(partitions=((82, 112),)),
            drift=drift,
            expect_promotion=True,
        ),
        AdaptScenario(
            name="vehicle_crash_mid_apply",
            description="canary dies between durable recv and apply; "
                        "recovery applies exactly once",
            drift=drift,
            crash_on_recv=0,
            crashes=(
                CrashEvent(step=30, side="vehicle", vehicle=1,
                           torn_tail=True),
            ),
            expect_promotion=True,
            expect_pending_recovery=True,
        ),
        AdaptScenario(
            name="server_crash_validate_publish",
            description="server dies between shadow-validate and "
                        "publish; recovery abandons the draft",
            drift=((20, 10 ** 9, 1.5, ""),),
            control=_control(rederive_every=0),
            validate_then_crash_at=60,
            crash_down_for=10,
            expect_abandoned=True,
        ),
        AdaptScenario(
            name="server_crash_mid_canary",
            description="server dies during canary probation; recovery "
                        "walks the canary back to last-good",
            drift=drift,
            crashes=(
                CrashEvent(step=58, side="server", down_for=10),
            ),
            expect_rollback=True,
        ),
        AdaptScenario(
            name="shadow_reject",
            description="seeded over-tight candidate: shadow validation "
                        "rejects, no vehicle ever sees it",
            control=_control(rederive_every=0),
            inject_bad_at=50,
            expect_reject=True,
        ),
        AdaptScenario(
            name="canary_rollback",
            description="tight epoch derived from a calm window, then a "
                        "latency burst in probation: automatic rollback",
            control=_control(rederive_every=0),
            resolver=ResolverConfig(min_activations=12, solver="greedy",
                                    slack_share=0.0),
            force_rederive_at=60,
            # The burst hits only seg0, where the minimal epoch sits
            # far tighter than the factory budgets the control cohort
            # still runs: the canary regresses, the controls barely do.
            drift=((64, 10 ** 9, 1.6, "seg0"),),
            expect_rollback=True,
        ),
        AdaptScenario(
            name="deferred_apply",
            description="canary DEGRADED when its epoch lands: ack "
                        "deferred, applied exactly once on recovery",
            drift=drift,
            mode_events=((44, 0, "degraded"), (74, 0, "normal")),
            expect_promotion=True,
            expect_deferral=True,
        ),
    ]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class AdaptResult:
    """Outcome of one scenario run (JSON-friendly)."""

    name: str
    ok: bool = True
    converged_at: Optional[int] = None
    checks: List[dict] = field(default_factory=list)
    epochs: dict = field(default_factory=dict)
    vehicles: dict = field(default_factory=dict)
    uplink_ledger: dict = field(default_factory=dict)
    channels: dict = field(default_factory=dict)
    recoveries: dict = field(default_factory=dict)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append({"name": name, "ok": bool(ok), "detail": detail})
        if not ok:
            self.ok = False

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "converged_at": self.converged_at,
            "checks": self.checks,
            "epochs": self.epochs,
            "vehicles": self.vehicles,
            "uplink_ledger": self.uplink_ledger,
            "channels": self.channels,
            "recoveries": self.recoveries,
        }

    def render(self) -> str:
        flags = " ".join(
            f"{c['name']}={'OK' if c['ok'] else 'FAIL'}" for c in self.checks
        )
        status = "PASS" if self.ok else "FAIL"
        at = self.converged_at if self.converged_at is not None else "-"
        return f"{status:4s} {self.name:<26s} converged@{at!s:<6} {flags}"


# ----------------------------------------------------------------------
# Driver internals
# ----------------------------------------------------------------------
class _AdaptiveVehicle:
    """One vehicle: seeded latency stream scored against its *active*
    epoch's budgets, uplink spool + client, epoch agent + ledger."""

    def __init__(
        self,
        source: str,
        chain: EventChain,
        config: AdaptConfig,
        scenario: AdaptScenario,
        workdir: Path,
        epoch0: BudgetEpoch,
        send_batch,
        send_epoch_ack,
    ):
        self.source = source
        self.chain = chain
        self.config = config
        self.scenario = scenario
        self._send_batch = send_batch
        self._send_epoch_ack = send_epoch_ack
        self.wal_config = WalConfig(
            directory=workdir / source / "spool",
            fsync=config.fsync,
            segment_max_records=config.segment_max_records,
        )
        self.epoch_dir = workdir / source / "epochs"
        self.rng = np.random.default_rng(
            (config.seed * 0x9E3779B1 + zlib.crc32(source.encode()))
            & 0xFFFFFFFF
        )
        #: Budgets the onboard monitors compare against right now.
        self.active_budgets: Dict[str, int] = {}
        #: Every epoch id the install hook ever handed us (any life).
        self.installed_ids: Set[int] = set()
        self.alive = True
        self.lives = 0
        self.recoveries = 0
        self.pending_recoveries = 0
        self.deferred_acks = 0
        self.activation = 0  # next activation index to generate
        self.seq = 0
        self.records: List[TelemetryRecord] = []
        self.cursor = 0  # next record index to spool
        # Ground-truth uplink ledger sets (survive crashes).
        self.offered: Set[int] = set()
        self.acked: Set[int] = set()
        self.evicted: Set[int] = set()
        self.spooler = WalSpooler.open_fresh(self.wal_config, source)
        self.client = self._make_client()
        self.agent = VehicleEpochAgent(
            source, self.epoch_dir, fsync=config.fsync,
            install=self._install, initial=epoch0,
        )
        self._wire()

    # ------------------------------------------------------------------
    def _make_client(self) -> RetryingUplinkClient:
        return RetryingUplinkClient(
            self.spooler, self._send_batch, self.config.client_config(),
            life=self.lives,
        )

    def _wire(self) -> None:
        self.spooler.on_evict = lambda lost: self.evicted.update(
            record.seq for record in lost
        )
        self.client.on_acked = lambda released: self.acked.update(
            record.seq for record in released
        )

    def _install(self, epoch: BudgetEpoch) -> None:
        self.installed_ids.add(epoch.epoch_id)
        self.active_budgets = epoch.chain_budget(self.chain.name)

    # ------------------------------------------------------------------
    def _drift_factor(self, activation: int, segment: str) -> float:
        factor = 1.0
        for first, last, value, target in self.scenario.drift:
            if first <= activation <= last and target in ("", segment):
                factor = max(factor, value)
        return factor

    def generate_and_spool(self) -> None:
        """Emit one chain activation: three SEGMENT records scored
        against the active epoch's budgets, plus the CHAIN record whose
        verdict feeds the fleet's (m,k) automata."""
        if self.activation >= self.config.frames:
            return
        activation = self.activation
        self.activation += 1
        timestamp = (activation + 1) * self.chain.period
        latencies: Dict[str, int] = {}
        for segment in self.chain.segments:
            base = _BASE_NS[segment.name] * self._drift_factor(
                activation, segment.name
            )
            latencies[segment.name] = int(
                base * self.rng.lognormal(0.0, self.config.sigma)
            )
        missed = False
        for segment in self.chain.segments:
            latency = latencies[segment.name]
            budget = self.active_budgets.get(segment.name)
            miss = budget is not None and latency > budget
            missed = missed or miss
            self.records.append(segment_record(
                source=self.source, chain=self.chain.name,
                segment=segment.name, activation=activation,
                latency_ns=latency, verdict="miss" if miss else "ok",
                timestamp_ns=timestamp, seq=self.seq,
            ))
            self.seq += 1
        self.records.append(TelemetryRecord(
            kind=RecordKind.CHAIN, source=self.source,
            chain=self.chain.name, segment="", activation=activation,
            latency_ns=sum(latencies.values()),
            verdict="miss" if missed else "ok",
            timestamp_ns=timestamp, seq=self.seq,
        ))
        self.seq += 1
        while self.cursor < len(self.records):
            record = self.records[self.cursor]
            self.spooler.append(record)
            self.offered.add(record.seq)
            self.cursor += 1

    @property
    def drained(self) -> bool:
        return (
            self.activation >= self.config.frames
            and self.cursor >= len(self.records)
        )

    # ------------------------------------------------------------------
    def handle_epoch_frame(self, payload: str, now: int) -> None:
        """May raise :class:`SimulatedApplyCrash` (armed by scenario)."""
        ack = self.agent.handle_frame(payload, now)
        if ack is not None:
            if self.agent.pending is not None:
                self.deferred_acks += 1
            self._send_epoch_ack(ack, now)

    def set_mode(self, mode: DegradationMode, now: int) -> None:
        ack = self.agent.set_mode(mode, now)
        if ack is not None:
            self._send_epoch_ack(ack, now)

    # ------------------------------------------------------------------
    def kill(self, torn_tail: bool) -> None:
        self.alive = False
        handle = self.spooler._file
        if handle is not None and not handle.closed:
            handle.flush()
            handle.close()
        if torn_tail:
            self._tear_tail()
        self.agent.close()

    def _tear_tail(self) -> None:
        active = self.spooler.segments[-1]
        if not active.records:
            return
        raw = active.path.read_bytes()
        lines = raw.split(b"\n")
        if len(lines) < 3:
            return
        last = lines[-2]
        kept = raw[: len(raw) - len(last) - 1]
        active.path.write_bytes(kept + last[: len(last) // 2])
        torn_seq = self.spooler.last_seq
        self.offered.discard(torn_seq)
        self.cursor -= 1

    def recover(self, now: int) -> None:
        self.spooler, _ = WalSpooler.recover(self.wal_config, self.source)
        self.lives += 1
        self.recoveries += 1
        self.client = self._make_client()
        self.agent, report = VehicleEpochAgent.recover(
            self.source, self.epoch_dir, fsync=self.config.fsync,
            install=self._install,
        )
        if report.pending_apply:
            self.pending_recoveries += 1
        self._wire()
        self.alive = True
        # The torn-apply window closes here: exactly one apply, acked.
        ack = self.agent.apply_pending_if_normal(now)
        if ack is not None:
            self._send_epoch_ack(ack, now)

    # ------------------------------------------------------------------
    def uplink_ledger_json(self) -> dict:
        spooled = set(self.spooler.pending_seqs())
        union = self.acked | spooled | self.evicted
        disjoint = (
            len(self.acked) + len(spooled) + len(self.evicted) == len(union)
        )
        return {
            "offered": len(self.offered),
            "acked": len(self.acked),
            "spooled": len(spooled),
            "evicted": len(self.evicted),
            "balanced": self.offered == union and disjoint,
        }


class AdaptDriver:
    """Runs one scenario to convergence and verifies its invariants."""

    def __init__(
        self, scenario: AdaptScenario, config: AdaptConfig, workdir: Path
    ):
        self.scenario = scenario
        self.config = config
        self.workdir = Path(workdir) / scenario.name
        self.chain = fleet_chain()
        self.chains = {self.chain.name: self.chain}
        self.epoch0 = BudgetEpoch(
            epoch_id=0,
            budgets={self.chain.name: {
                segment.name: int(segment.d_mon)  # type: ignore[arg-type]
                for segment in self.chain.segments
            }},
            basis={"bootstrap": True},
        )
        self.up = AdversarialChannel(
            "uplink", self._deliver_up, scenario.up, seed=config.seed
        )
        self.down = AdversarialChannel(
            "downlink", self._deliver_down, scenario.down, seed=config.seed
        )
        self.vehicles: List[_AdaptiveVehicle] = [
            _AdaptiveVehicle(
                source, self.chain, config, scenario, self.workdir,
                self.epoch0, self._make_batch_send(source),
                self._make_epoch_ack_send(source),
            )
            for source in config.vehicle_ids()
        ]
        self.server_dir = self.workdir / "fleet"
        self.server_up = True
        self.server_recoveries = 0
        self.server_recovery_info: List[dict] = []
        self.dead_up = 0
        self.dead_down = 0
        self.deferred_acks_seen = 0
        self.staged_abandon_id: Optional[int] = None
        self.ingestor = UplinkIngestor(
            TelemetryService(config.service_config(self.epoch0)),
            self.server_dir,
            fsync=config.fsync,
            checkpoint_every=config.checkpoint_every,
        )
        self.ingestor.on_fresh = self._observe
        self.plane = BudgetControlPlane(
            self.chains, config.vehicle_ids(), self.server_dir,
            self._down_send,
            config=scenario.control or _control(),
            resolver_config=scenario.resolver or ResolverConfig(),
            shadow_config=ShadowConfig(),
            fsync=config.fsync,
            baseline=self.epoch0,
        )
        self.plane.percentile_provider = (
            lambda: self.ingestor.service.store.segment_percentiles()
        )
        self._pending_recoveries: Dict[int, List[CrashEvent]] = {}
        if scenario.crash_on_recv is not None:
            index = scenario.crash_on_recv % len(self.vehicles)
            self.vehicles[index].agent.fail_after_recv = True

    # ------------------------------------------------------------------
    # Channel plumbing
    # ------------------------------------------------------------------
    def _make_batch_send(self, source: str):
        return lambda payload, now: self.up.send(
            payload, src=source, dst="fleet", now=now
        )

    def _make_epoch_ack_send(self, source: str):
        return lambda payload, now: self.up.send(
            payload, src=source, dst="fleet", now=now
        )

    def _down_send(self, payload: str, vehicle: str, now: int) -> None:
        self.down.send(payload, src="fleet", dst=vehicle, now=now)

    def _observe(self, records: List[TelemetryRecord]) -> None:
        self.plane.observe_many(records)

    def _violation_counts(self) -> Dict[str, int]:
        return self.ingestor.service.store.violations_by_source()

    def _deliver_up(self, frame, now: int) -> None:
        if not self.server_up:
            self.up.stats.dead_letter += 1
            self.dead_up += 1
            return
        doc = decode_envelope(frame.payload)
        if doc is not None and doc.get("schema") == EPOCH_ACK_SCHEMA:
            if doc.get("status") == "deferred":
                self.deferred_acks_seen += 1
            self.plane.on_ack(doc, now)
            return
        ack = self.ingestor.handle_payload(frame.payload, now)
        if ack is not None:
            self.down.send(ack, src="fleet", dst=frame.src, now=now)

    def _deliver_down(self, frame, now: int) -> None:
        vehicle = next(
            (v for v in self.vehicles if v.source == frame.dst), None
        )
        if vehicle is None or not vehicle.alive:
            self.down.stats.dead_letter += 1
            self.dead_down += 1
            return
        doc = decode_envelope(frame.payload)
        if doc is None:
            return  # corrupt: CRC already counted by the channel user
        if doc.get("schema") == ACK_SCHEMA:
            vehicle.client.on_ack(doc, now)
        elif doc.get("schema") == EPOCH_FRAME_SCHEMA:
            try:
                vehicle.handle_epoch_frame(frame.payload, now)
            except SimulatedApplyCrash:
                vehicle.kill(torn_tail=False)
                self._pending_recoveries.setdefault(
                    now + self.scenario.crash_down_for, []
                ).append(CrashEvent(
                    step=now, side="vehicle",
                    vehicle=self.vehicles.index(vehicle),
                    down_for=self.scenario.crash_down_for,
                ))

    # ------------------------------------------------------------------
    # Crash machinery
    # ------------------------------------------------------------------
    def _kill(self, event: CrashEvent) -> bool:
        if event.side == "server":
            return self._kill_server()
        vehicle = self.vehicles[event.vehicle % len(self.vehicles)]
        if not vehicle.alive:
            return False
        vehicle.kill(event.torn_tail)
        return True

    def _kill_server(self) -> bool:
        if not self.server_up:
            return False
        self.server_up = False
        self.ingestor.close()
        self.plane.close()
        return True

    def _recover(self, event: CrashEvent, now: int) -> None:
        if event.side == "server":
            self._recover_server(now)
        else:
            self.vehicles[event.vehicle % len(self.vehicles)].recover(now)

    def _recover_server(self, now: int) -> None:
        self.ingestor, _ = UplinkIngestor.recover(
            self.server_dir,
            self.config.service_config(self.epoch0),
            fsync=self.config.fsync,
            checkpoint_every=self.config.checkpoint_every,
        )
        self.ingestor.on_fresh = self._observe
        self.plane, recovery = BudgetControlPlane.recover(
            self.chains, self.config.vehicle_ids(), self.server_dir,
            self._down_send,
            config=self.scenario.control or _control(),
            resolver_config=self.scenario.resolver or ResolverConfig(),
            shadow_config=ShadowConfig(),
            fsync=self.config.fsync,
        )
        self.plane.percentile_provider = (
            lambda: self.ingestor.service.store.segment_percentiles()
        )
        self.server_up = True
        self.server_recoveries += 1
        self.server_recovery_info.append(recovery)

    # ------------------------------------------------------------------
    # Scenario interventions
    # ------------------------------------------------------------------
    def _doctored_candidate(self, now: int) -> BudgetEpoch:
        last = self.plane.last_good
        return BudgetEpoch(
            epoch_id=self.plane.ledger.next_epoch_id,
            budgets={
                chain: {
                    segment: max(1, int(d_mon * 0.45))
                    for segment, d_mon in segments.items()
                }
                for chain, segments in last.budgets.items()
            },
            basis={"injected": True, "step": now},
            parent_id=last.epoch_id,
        )

    def _stage_validate_then_crash(self, now: int) -> None:
        """Mimic a crash in the validate->publish window at the ledger
        level: the candidate is recorded and validated, the publication
        never happens, and the server goes down."""
        if not self.server_up or self.plane.state is not ControlPlaneState.IDLE:
            return
        outcome = self.plane.resolver.resolve(list(self.plane.window))
        if outcome.ok:
            candidate = outcome.epoch(
                epoch_id=self.plane.ledger.next_epoch_id,
                parent_id=self.plane.last_good.epoch_id,
                basis={"staged": True},
            )
            if candidate.digest() != self.plane.last_good.digest():
                self.plane.ledger.record_epoch(candidate)
                verdict = self.plane.shadow.validate(
                    list(self.plane.window), candidate, self.plane.last_good
                )
                if verdict.accepted:
                    self.plane.ledger.record_validated(
                        candidate.epoch_id, verdict.to_json()
                    )
                    self.staged_abandon_id = candidate.epoch_id
        if self._kill_server():
            self._pending_recoveries.setdefault(
                now + self.scenario.crash_down_for, []
            ).append(CrashEvent(step=now, side="server",
                                down_for=self.scenario.crash_down_for))

    # ------------------------------------------------------------------
    def run(self) -> AdaptResult:
        result = AdaptResult(name=self.scenario.name)
        pending_kills = sorted(self.scenario.crashes, key=lambda e: e.step)
        pending_modes = sorted(self.scenario.mode_events)

        for now in range(self.config.max_steps):
            for event in self._pending_recoveries.pop(now, []):
                self._recover(event, now)
            while pending_modes and pending_modes[0][0] == now:
                _, index, mode = pending_modes.pop(0)
                vehicle = self.vehicles[index % len(self.vehicles)]
                if vehicle.alive:
                    vehicle.set_mode(DegradationMode(mode), now)
            while pending_kills and pending_kills[0].step == now:
                event = pending_kills.pop(0)
                if self._kill(event):
                    self._pending_recoveries.setdefault(
                        now + event.down_for, []
                    ).append(event)
            if self.scenario.validate_then_crash_at == now:
                self._stage_validate_then_crash(now)
            if self.server_up:
                if self.scenario.inject_bad_at == now:
                    self.plane.consider(
                        now, candidate=self._doctored_candidate(now)
                    )
                if self.scenario.force_rederive_at == now:
                    self.plane.consider(now)
            for vehicle in self.vehicles:
                if vehicle.alive:
                    vehicle.generate_and_spool()
            self.up.step(now)
            self.down.step(now)
            for vehicle in self.vehicles:
                if vehicle.alive:
                    vehicle.client.tick(now)
            if self.server_up:
                self.plane.tick(now, self._violation_counts)
            if (
                not pending_kills and not self._pending_recoveries
                and not pending_modes
                and self.server_up
                and all(v.alive and v.drained for v in self.vehicles)
                and all(v.client.idle() for v in self.vehicles)
                and self.up.pending() == 0 and self.down.pending() == 0
                and self.plane.state is ControlPlaneState.IDLE
                and self.plane.distributor.idle()
                and all(v.agent.pending is None for v in self.vehicles)
                and all(
                    v.agent.active is not None
                    and v.agent.active.digest()
                    == self.plane.last_good.digest()
                    for v in self.vehicles
                )
            ):
                result.converged_at = now
                break

        self._finish(result)
        return result

    # ------------------------------------------------------------------
    def _finish(self, result: AdaptResult) -> None:
        scenario = self.scenario
        result.check(
            "converged", result.converged_at is not None,
            f"not converged within {self.config.max_steps} steps"
            if result.converged_at is None else "",
        )

        # --- epoch invariant: nothing unvalidated ever ran anywhere.
        ledger = self.plane.ledger
        ran: Set[int] = set()
        for vehicle in self.vehicles:
            ran |= vehicle.installed_ids
            ran |= vehicle.agent.applied
        unvalidated = ran - ledger.validated
        poisoned = ran & set(ledger.rejected)
        result.check(
            "epoch_invariant", not unvalidated and not poisoned,
            f"ran unvalidated={sorted(unvalidated)} "
            f"rejected={sorted(poisoned)}"
            if unvalidated or poisoned else "",
        )
        received_rejected = {
            vehicle.source: sorted(
                vehicle.agent.received & set(ledger.rejected)
            )
            for vehicle in self.vehicles
            if vehicle.agent.received & set(ledger.rejected)
        }
        result.check(
            "rejected_never_distributed", not received_rejected,
            f"rejected epochs reached vehicles: {received_rejected}"
            if received_rejected else "",
        )

        # --- convergence: one fleet, one digest.
        target = self.plane.last_good.digest()
        stragglers = [
            vehicle.source for vehicle in self.vehicles
            if vehicle.agent.active is None
            or vehicle.agent.active.digest() != target
        ]
        result.check(
            "epoch_convergence", not stragglers,
            f"vehicles not on last-good budgets: {stragglers}"
            if stragglers else "",
        )

        # --- conservation laws.
        result.vehicles = {
            vehicle.source: vehicle.agent.ledger_json()
            for vehicle in self.vehicles
        }
        balanced = all(
            entry["balanced"] for entry in result.vehicles.values()
        )
        result.check(
            "epoch_ledger", balanced,
            "received != applied + pending + superseded (disjoint)"
            if not balanced else "",
        )
        result.uplink_ledger = {
            vehicle.source: vehicle.uplink_ledger_json()
            for vehicle in self.vehicles
        }
        up_balanced = all(
            entry["balanced"] for entry in result.uplink_ledger.values()
        )
        result.check(
            "uplink_ledger", up_balanced,
            "offered != acked + spooled + evicted (disjoint) somewhere"
            if not up_balanced else "",
        )
        result.check(
            "accounting", self.ingestor.service.accounting_ok(),
            "fleet service accounting law violated",
        )

        # --- recovery equivalence (store and epoch ledger).
        live_digest = store_digest(self.ingestor.service)
        self.ingestor.close()
        recovered, _ = UplinkIngestor.recover(
            self.server_dir,
            self.config.service_config(self.epoch0),
            fsync=self.config.fsync,
            checkpoint_every=self.config.checkpoint_every,
        )
        recovered_digest = store_digest(recovered.service)
        recovered.close()
        result.check(
            "store_recovery", recovered_digest == live_digest,
            "cold store recovery != live store",
        )
        live_ledger = ledger.to_json()
        self.plane.close()
        cold_ledger, _ = EpochLedger.recover(
            self.server_dir / "epochs.log", fsync=self.config.fsync
        )
        cold_json = cold_ledger.to_json()
        cold_ledger.close()
        result.check(
            "ledger_recovery", cold_json == live_ledger,
            "cold epoch-ledger replay != live ledger",
        )
        for vehicle in self.vehicles:
            vehicle.spooler.close()
            vehicle.agent.close()

        # --- scenario expectations, all derived from the durable ledger
        # (crash-proof, unlike in-memory counters).
        promoted = [
            eid for eid, stage, _ in ledger.published
            if stage == "fleet" and eid > 0
            and ledger.epochs[eid].rollback_of is None
        ]
        if scenario.expect_promotion:
            result.check(
                "promotion", bool(promoted),
                "no re-derived epoch reached a fleet rollout",
            )
        if scenario.expect_reject:
            result.check(
                "rejected", bool(ledger.rejected),
                "scenario expected a shadow-validation rejection",
            )
        if scenario.expect_rollback:
            result.check(
                "rollback", bool(ledger.rollbacks),
                "scenario expected an automatic rollback",
            )
        if scenario.expect_deferral:
            result.check(
                "deferral", self.deferred_acks_seen > 0,
                "scenario expected a deferred epoch ack",
            )
        if scenario.expect_pending_recovery:
            result.check(
                "pending_recovery",
                any(v.pending_recoveries > 0 for v in self.vehicles),
                "no vehicle recovered through the torn-apply window",
            )
        if scenario.expect_abandoned:
            abandoned = [
                eid
                for info in self.server_recovery_info
                for eid in info.get("abandoned", [])
            ]
            result.check(
                "abandoned",
                self.staged_abandon_id is not None
                and self.staged_abandon_id in abandoned,
                f"staged draft {self.staged_abandon_id} not abandoned "
                f"on recovery (abandoned={abandoned})",
            )

        result.epochs = {
            "last_good": self.plane.last_good.epoch_id,
            "last_good_digest": target,
            "ledger": live_ledger,
            "promoted": promoted,
            "staged_abandoned": self.staged_abandon_id,
        }
        result.channels = {
            "up": self.up.stats.to_json(),
            "down": self.down.stats.to_json(),
        }
        result.recoveries = {
            "server": self.server_recoveries,
            "server_info": self.server_recovery_info,
            "vehicles": {
                vehicle.source: {
                    "recoveries": vehicle.recoveries,
                    "pending_applies": vehicle.pending_recoveries,
                }
                for vehicle in self.vehicles if vehicle.recoveries
            },
        }


# ----------------------------------------------------------------------
# Sweep + CLI
# ----------------------------------------------------------------------
def _run_one(
    scenario: AdaptScenario, config: AdaptConfig, workdir: Optional[Path]
) -> AdaptResult:
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-adapt-") as tmp:
            return AdaptDriver(scenario, config, Path(tmp)).run()
    return AdaptDriver(scenario, config, Path(workdir)).run()


def _worker_init(package_root: str) -> None:  # pragma: no cover
    if package_root not in sys.path:
        sys.path.insert(0, package_root)


def _run_scenario_by_name(payload: Tuple[str, dict]) -> dict:
    """Worker task: rebuild one named default scenario and run it in an
    isolated tempdir.  Names cross the process boundary, results come
    back as JSON -- merged in input order, the parallel report is
    byte-identical to the serial one."""
    name, config_fields = payload
    matching = [s for s in default_scenarios() if s.name == name]
    if not matching:
        raise KeyError(f"unknown adapt scenario {name!r}")
    config = AdaptConfig(**config_fields)
    return _run_one(matching[0], config, None).to_json()


def run_adapt(
    config: Optional[AdaptConfig] = None,
    scenarios: Optional[List[AdaptScenario]] = None,
    workdir: Optional[Path] = None,
    jobs: int = 1,
) -> dict:
    """Run a scenario sweep; returns the JSON report document."""
    config = config or AdaptConfig()
    scenarios = scenarios if scenarios is not None else default_scenarios()
    if jobs > 1 and workdir is None:
        import multiprocessing
        import os

        package_root = str(Path(__file__).resolve().parents[2])
        config_fields = {
            "vehicles": config.vehicles, "frames": config.frames,
            "seed": config.seed, "max_steps": config.max_steps,
            "fsync": config.fsync,
            "segment_max_records": config.segment_max_records,
            "checkpoint_every": config.checkpoint_every,
            "sigma": config.sigma,
        }
        context = multiprocessing.get_context("spawn")
        with context.Pool(
            processes=min(jobs, len(scenarios), os.cpu_count() or 1),
            initializer=_worker_init, initargs=(package_root,),
        ) as pool:
            docs = pool.map(
                _run_scenario_by_name,
                [(s.name, config_fields) for s in scenarios],
            )
    else:
        docs = [
            _run_one(scenario, config, workdir).to_json()
            for scenario in scenarios
        ]
    return {
        "schema": "repro-adapt-report/1",
        "config": {
            "vehicles": config.vehicles,
            "frames": config.frames,
            "seed": config.seed,
            "fsync": config.fsync,
        },
        "ok": all(doc["ok"] for doc in docs),
        "scenarios": docs,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro adapt",
        description="closed-loop budget control plane chaos sweep "
                    "(epochs, shadow validation, canary, rollback)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="shorter run (CI smoke)")
    parser.add_argument("--vehicles", type=int, default=None)
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", help="run only NAME (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    parser.add_argument("--report", type=Path, default=None,
                        metavar="PATH", help="write the JSON report here")
    parser.add_argument("--dir", type=Path, default=None,
                        metavar="PATH", help="work under PATH (kept)")
    parser.add_argument("--fsync", choices=("always", "rotate", "never"),
                        default="never")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="scenarios run in N worker processes")
    args = parser.parse_args(argv)

    scenarios = default_scenarios()
    if args.list:
        for scenario in scenarios:
            print(f"{scenario.name:<26s} {scenario.description}")
        return 0
    if args.scenario:
        known = {scenario.name for scenario in scenarios}
        unknown = [name for name in args.scenario if name not in known]
        if unknown:
            parser.error(f"unknown scenario(s): {', '.join(unknown)}")
        scenarios = [s for s in scenarios if s.name in set(args.scenario)]

    config = AdaptConfig(
        vehicles=args.vehicles or 3,
        frames=args.frames or (96 if args.quick else 120),
        seed=args.seed,
        fsync=args.fsync,
    )
    report = run_adapt(config, scenarios, workdir=args.dir, jobs=args.jobs)
    for entry in report["scenarios"]:
        result = AdaptResult(
            name=entry["name"], ok=entry["ok"],
            converged_at=entry["converged_at"], checks=entry["checks"],
        )
        print(result.render())
    print(
        f"adapt: {'ALL PASS' if report['ok'] else 'FAILURES'} "
        f"({len(report['scenarios'])} scenarios, "
        f"vehicles={config.vehicles}, frames={config.frames}, "
        f"seed={config.seed})"
    )
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report -> {args.report}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
