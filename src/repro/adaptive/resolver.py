"""Online re-derivation of ``d_mon`` from the telemetry window.

The offline workflow records a dedicated unmonitored trace; online we
already have one -- the recent window of fleet SEGMENT records held by
the control plane.  The resolver turns that window back into the
paper's CSP:

1. **Alignment** -- per chain, group SEGMENT records by
   ``(source, activation)`` and keep only complete rows (every segment
   of the chain observed).  Rows are sorted by ``(source, activation)``
   so the derived trace -- and therefore the whole epoch -- is
   invariant under delivery interleavings.
2. **Solve** -- pose :class:`~repro.budgeting.csp.BudgetingProblem`
   over the aligned trace and solve with the configured solver.  The
   solution is the *minimal* feasible assignment.
3. **Slack redistribution** -- minimal deadlines are brittle under
   drift, so the leftover end-to-end slack ``B_e2e - sum(d)`` is
   handed back to the segments.  The split is weighted by the tracing
   layer's critical-path attribution (or the store's streaming
   histogram p95 shares as a fallback): segments that dominate the
   observed critical path get the most headroom.  Raising deadlines
   never adds misses, so feasibility is preserved by construction --
   and re-checked anyway.

:func:`significant_drift` is the trigger half of the loop: it compares
two fleet-wide percentile maps (the store's
``segment_percentiles()``) and reports whether any segment moved
enough to justify re-deriving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.adaptive.epochs import BudgetEpoch
from repro.budgeting.csp import BudgetingProblem
from repro.budgeting.solvers import (
    SolverResult,
    solve_branch_and_bound,
    solve_greedy_propagated,
    solve_independent,
)
from repro.budgeting.traces import ChainTrace, SegmentTrace
from repro.core.chains import EventChain
from repro.telemetry.records import RecordKind, TelemetryRecord

_SOLVERS = {
    "independent": solve_independent,
    "greedy": solve_greedy_propagated,
    "bnb": solve_branch_and_bound,
}


@dataclass
class ResolverConfig:
    """Knobs of one resolver instance."""

    #: Complete activations a chain needs before re-deriving.
    min_activations: int = 12
    #: Which CSP solver re-derives the minimal assignment.
    solver: str = "greedy"
    #: Fraction of the leftover e2e slack redistributed as headroom.
    slack_share: float = 0.5

    def __post_init__(self) -> None:
        if self.min_activations < 2:
            raise ValueError("min_activations must be >= 2")
        if self.solver not in _SOLVERS:
            raise ValueError(
                f"unknown solver {self.solver!r} (have {sorted(_SOLVERS)})"
            )
        if not (0.0 <= self.slack_share <= 1.0):
            raise ValueError("slack_share must be in [0, 1]")


@dataclass
class ChainResolution:
    """One chain's outcome within a resolve pass."""

    chain: str
    schedulable: bool
    d_mon: Dict[str, int] = field(default_factory=dict)
    minimal_total: int = 0
    padded_total: int = 0
    activations: int = 0
    reason: str = ""


@dataclass
class ResolveOutcome:
    """A full resolve pass over every managed chain."""

    ok: bool
    resolutions: Dict[str, ChainResolution] = field(default_factory=dict)
    reasons: List[str] = field(default_factory=list)

    def budgets(self) -> Dict[str, Dict[str, int]]:
        return {
            name: dict(resolution.d_mon)
            for name, resolution in sorted(self.resolutions.items())
            if resolution.schedulable
        }

    def epoch(
        self,
        epoch_id: int,
        parent_id: int = -1,
        basis: Optional[Mapping[str, object]] = None,
    ) -> BudgetEpoch:
        if not self.ok:
            raise ValueError(
                f"cannot mint an epoch from a failed resolve: "
                f"{'; '.join(self.reasons)}"
            )
        return BudgetEpoch(
            epoch_id=epoch_id,
            budgets=self.budgets(),
            basis=dict(basis or {}),
            parent_id=parent_id,
        )


def align_window(
    window: Sequence[TelemetryRecord], chain: EventChain
) -> List[Tuple[str, int, Dict[str, int]]]:
    """Complete ``(source, activation, {segment: latency})`` rows of
    *chain* in the window, sorted -- the deterministic spine shared by
    the resolver and the shadow validator."""
    wanted = {segment.name for segment in chain.segments}
    rows: Dict[Tuple[str, int], Dict[str, int]] = {}
    for record in window:
        if (
            record.kind is RecordKind.SEGMENT
            and record.chain == chain.name
            and record.segment in wanted
            and record.latency_ns is not None
            and record.activation >= 0
        ):
            row = rows.setdefault((record.source, record.activation), {})
            # Last write wins within a key; per-source seq order makes
            # that deterministic, and duplicates carry equal payloads.
            row[record.segment] = int(record.latency_ns)
    return [
        (source, activation, rows[(source, activation)])
        for source, activation in sorted(rows)
        if wanted <= set(rows[(source, activation)])
    ]


def significant_drift(
    baseline: Mapping[str, Mapping[str, float]],
    current: Mapping[str, Mapping[str, float]],
    threshold: float = 0.2,
    quantile: str = "p95",
) -> bool:
    """True when any segment's *quantile* moved by more than
    *threshold* (relative) between two percentile maps."""
    for segment, stats in current.items():
        held = baseline.get(segment)
        if held is None:
            return True
        old = float(held.get(quantile, 0.0))
        new = float(stats.get(quantile, 0.0))
        if old <= 0.0:
            if new > 0.0:
                return True
            continue
        if abs(new - old) / old > threshold:
            return True
    return False


class BudgetResolver:
    """Re-derives one :class:`BudgetEpoch` from an observation window."""

    def __init__(
        self,
        chains: Mapping[str, EventChain],
        config: Optional[ResolverConfig] = None,
    ):
        if not chains:
            raise ValueError("need at least one chain to manage")
        self.chains = dict(chains)
        self.config = config or ResolverConfig()

    # ------------------------------------------------------------------
    def resolve(
        self,
        window: Sequence[TelemetryRecord],
        attribution: Optional[Mapping[str, float]] = None,
        percentiles: Optional[Mapping[str, Mapping[str, float]]] = None,
    ) -> ResolveOutcome:
        """One resolve pass.

        *attribution* carries per-segment critical-path weights (e.g.
        p95 burn shares from
        :class:`~repro.tracing.critical_path.ChainAttribution`);
        *percentiles* is the store's fleet-wide sketch summary, used as
        the weight fallback and recorded in the epoch basis.
        """
        outcome = ResolveOutcome(ok=True)
        solver = _SOLVERS[self.config.solver]
        for name in sorted(self.chains):
            resolution = self._resolve_chain(
                self.chains[name], window, solver, attribution, percentiles
            )
            outcome.resolutions[name] = resolution
            if not resolution.schedulable:
                outcome.ok = False
                outcome.reasons.append(f"{name}: {resolution.reason}")
        return outcome

    # ------------------------------------------------------------------
    def _resolve_chain(
        self,
        chain: EventChain,
        window: Sequence[TelemetryRecord],
        solver,
        attribution: Optional[Mapping[str, float]],
        percentiles: Optional[Mapping[str, Mapping[str, float]]],
    ) -> ChainResolution:
        rows = align_window(window, chain)
        if len(rows) < self.config.min_activations:
            return ChainResolution(
                chain=chain.name, schedulable=False, activations=len(rows),
                reason=(
                    f"only {len(rows)} complete activations in window "
                    f"(need {self.config.min_activations})"
                ),
            )
        trace = ChainTrace(chain.name)
        for segment in chain.segments:
            trace.add(SegmentTrace(
                segment.name,
                [latencies[segment.name] for _, _, latencies in rows],
                d_ex=segment.d_ex,
            ))
        problem = BudgetingProblem(chain, trace)
        result: SolverResult = solver(problem)
        if not result.schedulable:
            return ChainResolution(
                chain=chain.name, schedulable=False, activations=len(rows),
                reason=result.reason or "CSP unschedulable on window",
            )
        deadlines = self._pad(chain, problem, result, attribution,
                              percentiles)
        d_mon = problem.monitored_deadlines(deadlines)
        return ChainResolution(
            chain=chain.name,
            schedulable=True,
            d_mon=d_mon,
            minimal_total=result.total,
            padded_total=int(sum(deadlines)),
            activations=len(rows),
        )

    def _pad(
        self,
        chain: EventChain,
        problem: BudgetingProblem,
        result: SolverResult,
        attribution: Optional[Mapping[str, float]],
        percentiles: Optional[Mapping[str, Mapping[str, float]]],
    ) -> List[int]:
        """Redistribute leftover e2e slack as attribution-weighted
        headroom (larger deadlines never add misses)."""
        deadlines = list(result.deadlines)
        slack = int(
            (chain.budget_e2e - result.total) * self.config.slack_share
        )
        if slack <= 0:
            return deadlines
        weights: List[float] = []
        for name in problem.order:
            weight = 0.0
            if attribution is not None:
                weight = float(attribution.get(name, 0.0))
            if weight <= 0.0 and percentiles is not None:
                stats = percentiles.get(name)
                if stats:
                    weight = float(stats.get("p95", 0.0))
            if weight <= 0.0:
                weight = 1.0
            weights.append(weight)
        total_weight = sum(weights)
        assert chain.budget_seg is not None
        padded = list(deadlines)
        for index, weight in enumerate(weights):
            extra = int(slack * weight / total_weight)
            padded[index] = min(
                deadlines[index] + extra, chain.budget_seg
            )
        # Headroom must keep the telescoped sum within B_e2e and can
        # only relax per-segment deadlines; re-check defensively and
        # fall back to the minimal assignment on any surprise.
        if sum(padded) > chain.budget_e2e:
            return deadlines
        report = problem.check(padded)
        return padded if report.feasible else deadlines
