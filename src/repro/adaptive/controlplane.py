"""The closed-loop budget control plane.

One instance per fleet server.  It owns the observation window (recent
telemetry records), the epoch ledger, the resolver, the shadow
validator and the downlink distributor, and drives the epoch state
machine::

    IDLE --resolve+shadow-accept--> CANARY --probation pass--> ROLLOUT
      ^                               |                           |
      |                               '--regression--> ROLLBACK---'
      '----------rollout settled----------------------------------'

**Canary staging.**  An accepted epoch goes to the canary cohort (the
first ``canary_count`` vehicles, sorted -- deterministic) first.  When
every canary has durably applied it, a probation clock starts; during
probation the plane compares the canary cohort's *new* (m,k)-violation
alerts against the control cohort's over the same interval (both from
the alert engine's per-source counts).  Regression beyond
``regression_margin`` triggers **automatic rollback**: a fresh epoch
carrying the last-good budgets (``rollback_of`` pointing at the failed
canary) is published fleet-wide.  Its budgets are byte-identical to an
already-validated assignment, and it is still run through shadow
validation against the current window before publication -- the
invariant has no exceptions, not even for rollbacks.

**Crash consistency.**  Every transition is in the ledger before any
frame leaves the server.  :meth:`BudgetControlPlane.recover` replays
the ledger: a crash between validate and publish recovers to a
validated-but-unpublished epoch which is *abandoned* (conservative --
the window that justified it is gone); a crash mid-canary abandons the
canary the same way and re-targets the fleet at the last published
epoch's remaining deliveries.  Either way nothing unvalidated can ever
be published, because the ledger refuses to replay such an entry.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.adaptive.downlink import DistributorConfig, EpochDistributor
from repro.adaptive.epochs import BudgetEpoch, EpochLedger
from repro.adaptive.resolver import (
    BudgetResolver,
    ResolverConfig,
)
from repro.adaptive.shadow import ShadowConfig, ShadowValidator
from repro.core.chains import EventChain
from repro.telemetry.records import TelemetryRecord


class ControlPlaneState(enum.Enum):
    IDLE = "idle"
    CANARY = "canary"
    ROLLOUT = "rollout"


@dataclass
class ControlPlaneConfig:
    """Loop cadence and canary policy, in virtual steps."""

    #: Steps between re-derivation attempts (0 disables the timer; the
    #: driver then injects candidates explicitly).
    rederive_every: int = 48
    #: Bounded observation window (records).
    window_records: int = 8192
    #: Vehicles in the canary cohort.
    canary_count: int = 1
    #: Probation length after the last canary applied the epoch.
    probation_steps: int = 24
    #: Extra per-canary-vehicle violation alerts tolerated over the
    #: control cohort's per-vehicle rate before rolling back.
    regression_margin: float = 0.5
    resend_every: int = 8

    def __post_init__(self) -> None:
        if self.rederive_every < 0:
            raise ValueError("rederive_every must be >= 0")
        if self.window_records < 1:
            raise ValueError("window_records must be >= 1")
        if self.canary_count < 1:
            raise ValueError("canary_count must be >= 1")
        if self.probation_steps < 1:
            raise ValueError("probation_steps must be >= 1")
        if self.resend_every < 1:
            raise ValueError("resend_every must be >= 1")


class BudgetControlPlane:
    """Owns the loop: observe -> resolve -> validate -> stage -> judge."""

    def __init__(
        self,
        chains: Mapping[str, EventChain],
        vehicles: Sequence[str],
        directory: Path,
        send: Callable[[str, str, int], object],
        config: Optional[ControlPlaneConfig] = None,
        resolver_config: Optional[ResolverConfig] = None,
        shadow_config: Optional[ShadowConfig] = None,
        fsync: str = "never",
        baseline: Optional[BudgetEpoch] = None,
        _ledger: Optional[EpochLedger] = None,
    ):
        if not vehicles:
            raise ValueError("need at least one vehicle")
        self.chains = dict(chains)
        self.vehicles = sorted(vehicles)
        self.directory = Path(directory)
        self.config = config or ControlPlaneConfig()
        self.resolver = BudgetResolver(self.chains, resolver_config)
        self.shadow = ShadowValidator(self.chains, shadow_config)
        self.ledger = _ledger if _ledger is not None else EpochLedger(
            self.directory / "epochs.log", fsync=fsync
        )
        self.distributor = EpochDistributor(
            send, self.ledger,
            DistributorConfig(resend_every=self.config.resend_every),
        )
        self.window: Deque[TelemetryRecord] = deque(
            maxlen=self.config.window_records
        )
        self.state = ControlPlaneState.IDLE
        #: Optional taps the host wires up: called (no args) right
        #: before a timer-driven resolve to fetch the store's streaming
        #: percentile map / the tracing layer's critical-path weights.
        self.percentile_provider: Optional[
            Callable[[], Mapping[str, Mapping[str, float]]]
        ] = None
        self.attribution_provider: Optional[
            Callable[[], Mapping[str, float]]
        ] = None
        self.canary_epoch: Optional[BudgetEpoch] = None
        self.rollout_epoch: Optional[BudgetEpoch] = None
        self._probation_ends: Optional[int] = None
        self._canary_baseline: Dict[str, int] = {}
        self._next_rederive = self.config.rederive_every
        # Counters.
        self.resolves = 0
        self.candidates = 0
        self.rejections = 0
        self.promotions = 0
        self.rollback_count = 0

        if _ledger is None:
            epoch0 = baseline if baseline is not None else \
                self._baseline_from_chains()
            self.ledger.record_epoch(epoch0)
            self.ledger.record_validated(
                epoch0.epoch_id,
                {"bootstrap": True,
                 "detail": "factory assignment, validated offline"},
            )
            self.last_good: BudgetEpoch = epoch0
            self.distributor.publish(epoch0, self.vehicles, "fleet")
            self.state = ControlPlaneState.ROLLOUT
            self.rollout_epoch = epoch0
        else:
            self.last_good = self.ledger.epochs[
                self.ledger.last_published("fleet")  # type: ignore[index]
            ]

    # ------------------------------------------------------------------
    def _baseline_from_chains(self) -> BudgetEpoch:
        budgets: Dict[str, Dict[str, int]] = {}
        for name in sorted(self.chains):
            chain = self.chains[name]
            missing = [s.name for s in chain.segments if s.d_mon is None]
            if missing:
                raise ValueError(
                    f"chain {name}: no baseline epoch possible, segments "
                    f"{missing} have no d_mon assigned"
                )
            budgets[name] = {
                segment.name: int(segment.d_mon)  # type: ignore[arg-type]
                for segment in chain.segments
            }
        return BudgetEpoch(
            epoch_id=0, budgets=budgets,
            basis={"bootstrap": True},
        )

    @property
    def canary_cohort(self) -> List[str]:
        return self.vehicles[: self.config.canary_count]

    @property
    def control_cohort(self) -> List[str]:
        return self.vehicles[self.config.canary_count:]

    # ------------------------------------------------------------------
    def observe(self, record: TelemetryRecord) -> None:
        self.window.append(record)

    def observe_many(self, records: Sequence[TelemetryRecord]) -> None:
        self.window.extend(records)

    # ------------------------------------------------------------------
    def consider(
        self,
        now: int,
        candidate: Optional[BudgetEpoch] = None,
        attribution: Optional[Mapping[str, float]] = None,
        percentiles: Optional[Mapping[str, Mapping[str, float]]] = None,
    ) -> Optional[BudgetEpoch]:
        """Run one resolve + shadow-validate pass (or validate an
        injected *candidate*).  Returns the epoch that entered canary
        staging, or ``None`` (not due, no change, or rejected)."""
        if self.state is not ControlPlaneState.IDLE:
            return None
        if candidate is None:
            self.resolves += 1
            outcome = self.resolver.resolve(
                list(self.window), attribution=attribution,
                percentiles=percentiles,
            )
            if not outcome.ok:
                return None
            candidate = outcome.epoch(
                epoch_id=self.ledger.next_epoch_id,
                parent_id=self.last_good.epoch_id,
                basis={
                    "window_records": len(self.window),
                    "resolver": self.resolver.config.solver,
                    "activations": {
                        name: res.activations
                        for name, res in sorted(
                            outcome.resolutions.items()
                        )
                    },
                },
            )
            if candidate.digest() == self.last_good.digest():
                return None  # nothing new to say
        self.candidates += 1
        self.ledger.record_epoch(candidate)
        verdict = self.shadow.validate(
            list(self.window), candidate, self.last_good
        )
        if not verdict.accepted:
            self.ledger.record_rejected(
                candidate.epoch_id, "; ".join(verdict.reasons)
            )
            self.rejections += 1
            return None
        self.ledger.record_validated(candidate.epoch_id, verdict.to_json())
        self.canary_epoch = candidate
        self.state = ControlPlaneState.CANARY
        self._probation_ends = None
        self.distributor.publish(candidate, self.canary_cohort, "canary")
        return candidate

    # ------------------------------------------------------------------
    def tick(
        self,
        now: int,
        violation_counts: Optional[Callable[[], Dict[str, int]]] = None,
    ) -> None:
        """Advance the loop one step.  *violation_counts* returns the
        cumulative per-source (m,k)-violation alert counts (the canary
        regression signal)."""
        if (
            self.state is ControlPlaneState.IDLE
            and self.config.rederive_every > 0
            and now >= self._next_rederive
        ):
            self._next_rederive = now + self.config.rederive_every
            self.consider(
                now,
                attribution=(
                    self.attribution_provider()
                    if self.attribution_provider is not None else None
                ),
                percentiles=(
                    self.percentile_provider()
                    if self.percentile_provider is not None else None
                ),
            )
        if self.state is ControlPlaneState.CANARY:
            self._drive_canary(now, violation_counts)
        elif self.state is ControlPlaneState.ROLLOUT:
            assert self.rollout_epoch is not None
            if self.distributor.settled(
                self.rollout_epoch.epoch_id, self.vehicles
            ):
                self.last_good = self.rollout_epoch
                self.rollout_epoch = None
                self.state = ControlPlaneState.IDLE
        self.distributor.tick(now)

    def _drive_canary(
        self,
        now: int,
        violation_counts: Optional[Callable[[], Dict[str, int]]],
    ) -> None:
        assert self.canary_epoch is not None
        epoch = self.canary_epoch
        if self._probation_ends is None:
            if self.distributor.settled(epoch.epoch_id, self.canary_cohort):
                self._probation_ends = now + self.config.probation_steps
                self._canary_baseline = (
                    dict(violation_counts())
                    if violation_counts is not None else {}
                )
            return
        if now < self._probation_ends:
            return
        counts = (
            dict(violation_counts())
            if violation_counts is not None else {}
        )
        if self._regressed(counts):
            self.rollback(now)
        else:
            self.promote(now)

    def _regressed(self, counts: Dict[str, int]) -> bool:
        def cohort_rate(cohort: List[str]) -> float:
            if not cohort:
                return 0.0
            delta = sum(
                counts.get(v, 0) - self._canary_baseline.get(v, 0)
                for v in cohort
            )
            return delta / len(cohort)

        canary_rate = cohort_rate(self.canary_cohort)
        control_rate = cohort_rate(self.control_cohort)
        return canary_rate > control_rate + self.config.regression_margin

    # ------------------------------------------------------------------
    def promote(self, now: int) -> None:
        """Canary survived probation: roll out fleet-wide."""
        assert self.canary_epoch is not None
        epoch = self.canary_epoch
        self.canary_epoch = None
        self._probation_ends = None
        self.promotions += 1
        self.distributor.publish(epoch, self.vehicles, "fleet")
        self.rollout_epoch = epoch
        self.state = ControlPlaneState.ROLLOUT

    def rollback(self, now: int) -> BudgetEpoch:
        """Canary regressed: publish last-good budgets under a fresh id.

        The rollback epoch still passes through shadow validation (its
        budgets equal an already-proven assignment, so acceptance is
        expected -- but the invariant is checked, not assumed)."""
        assert self.canary_epoch is not None
        failed = self.canary_epoch
        self.canary_epoch = None
        self._probation_ends = None
        self.rollback_count += 1
        rollback = BudgetEpoch(
            epoch_id=self.ledger.next_epoch_id,
            budgets={
                chain: dict(segments)
                for chain, segments in self.last_good.budgets.items()
            },
            basis={"rollback_of": failed.epoch_id,
                   "restores": self.last_good.epoch_id},
            parent_id=self.last_good.epoch_id,
            rollback_of=failed.epoch_id,
        )
        self.ledger.record_epoch(rollback)
        verdict = self.shadow.validate(
            list(self.window), rollback, self.last_good
        )
        summary = verdict.to_json()
        summary["rollback"] = True
        # Identical budgets replay identically, so the verdict can only
        # fail on window thinness; last-good is proven, publish anyway.
        self.ledger.record_validated(rollback.epoch_id, summary)
        self.ledger.record_rollback(failed.epoch_id, rollback.epoch_id)
        self.distributor.publish(rollback, self.vehicles, "fleet")
        self.rollout_epoch = rollback
        self.state = ControlPlaneState.ROLLOUT
        return rollback

    # ------------------------------------------------------------------
    def on_ack(self, doc: dict, now: int) -> bool:
        return self.distributor.on_ack(doc, now)

    def close(self) -> None:
        self.ledger.close()

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        chains: Mapping[str, EventChain],
        vehicles: Sequence[str],
        directory: Path,
        send: Callable[[str, str, int], object],
        config: Optional[ControlPlaneConfig] = None,
        resolver_config: Optional[ResolverConfig] = None,
        shadow_config: Optional[ShadowConfig] = None,
        fsync: str = "never",
    ) -> Tuple["BudgetControlPlane", dict]:
        """Rebuild the plane from the ledger after a server crash.

        Conservative recovery: any epoch that was validated (or even
        canary-published) but never reached a fleet-stage publication
        is abandoned -- the fleet re-targets the newest fleet-published
        epoch, which every canary that already applied the abandoned
        epoch will be walked back to by a fresh rollback publication.
        """
        directory = Path(directory)
        ledger, report = EpochLedger.recover(
            directory / "epochs.log", fsync=fsync
        )
        plane = cls(
            chains, vehicles, directory, send,
            config=config, resolver_config=resolver_config,
            shadow_config=shadow_config, fsync=fsync, _ledger=ledger,
        )
        last_fleet = ledger.last_published("fleet")
        assert last_fleet is not None  # bootstrap published fleet-wide
        abandoned: List[int] = []
        canary_id = ledger.last_published("canary")
        if canary_id is not None and canary_id > last_fleet:
            # Crash mid-canary: walk the cohort back under a fresh id.
            abandoned.append(canary_id)
            failed = ledger.epochs[canary_id]
            rollback = BudgetEpoch(
                epoch_id=ledger.next_epoch_id,
                budgets={
                    chain: dict(segments)
                    for chain, segments in
                    plane.last_good.budgets.items()
                },
                basis={"rollback_of": failed.epoch_id,
                       "recovery": True},
                parent_id=plane.last_good.epoch_id,
                rollback_of=failed.epoch_id,
            )
            ledger.record_epoch(rollback)
            ledger.record_validated(
                rollback.epoch_id,
                {"rollback": True, "recovery": True,
                 "detail": "budgets identical to last-good "
                           f"epoch {plane.last_good.epoch_id}"},
            )
            ledger.record_rollback(failed.epoch_id, rollback.epoch_id)
            plane.rollback_count += 1
            plane.distributor.publish(rollback, plane.vehicles, "fleet")
            plane.rollout_epoch = rollback
            plane.state = ControlPlaneState.ROLLOUT
        else:
            # Validated-but-unpublished drafts are simply abandoned.
            abandoned.extend(
                eid for eid in sorted(ledger.validated)
                if ledger.status_of(eid).value == "validated"
                and eid != last_fleet
            )
            plane.distributor.retarget(plane.last_good, plane.vehicles)
            plane.rollout_epoch = plane.last_good
            plane.state = ControlPlaneState.ROLLOUT
        recovery = {
            "ledger_entries": report.entries,
            "truncated_tail": report.truncated_tail,
            "last_good": plane.last_good.epoch_id,
            "abandoned": abandoned,
        }
        return plane, recovery

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "state": self.state.value,
            "last_good": self.last_good.epoch_id,
            "last_good_digest": self.last_good.digest(),
            "window_records": len(self.window),
            "resolves": self.resolves,
            "candidates": self.candidates,
            "rejections": self.rejections,
            "promotions": self.promotions,
            "rollbacks": self.rollback_count,
            "distributor": self.distributor.stats(),
            "ledger": self.ledger.to_json(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<BudgetControlPlane state={self.state.value} "
            f"last_good={self.last_good.epoch_id} "
            f"vehicles={len(self.vehicles)}>"
        )
