"""Shadow-replica validation of candidate budget epochs.

Before a candidate epoch may touch a vehicle it must survive a replay
of the recent observation window against its budgets, compared with
the same replay under the incumbent (last-good) budgets.  The replica
re-derives every verdict from the *raw segment latencies* -- it does
not trust the verdicts vehicles computed under the old budgets -- so
the comparison is exactly "what would the fleet's monitors have said
had this epoch been live".

Two rejection oracles:

- **(m,k) regression** -- per ``(source, chain)``, feed the re-derived
  propagated miss series through a fresh
  :class:`~repro.core.weakly_hard.MissWindow`; reject when the
  candidate's total violation count exceeds the baseline's.
- **silent chain violation** -- ground truth the monitors cannot see
  directly: an activation whose end-to-end latency exceeds ``B_e2e``
  while *no* per-segment deadline fires under the candidate budgets.
  A single silent violation rejects: budgets that blind the monitor
  are worse than budgets that merely miss.

Determinism: the replay consumes :func:`~repro.adaptive.resolver.align_window`
rows (sorted by source then activation), so any shuffle of the window
that preserves record content produces the identical verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.adaptive.epochs import BudgetEpoch
from repro.adaptive.resolver import align_window
from repro.core.chains import EventChain
from repro.core.weakly_hard import MissWindow
from repro.telemetry.records import TelemetryRecord


@dataclass
class ShadowConfig:
    """Validation thresholds."""

    #: Complete activations (summed over chains) required to judge; a
    #: thinner window rejects -- conservatively -- rather than guesses.
    min_activations: int = 8

    def __post_init__(self) -> None:
        if self.min_activations < 1:
            raise ValueError("min_activations must be >= 1")


@dataclass
class ShadowVerdict:
    """Outcome of validating one candidate against one baseline."""

    accepted: bool
    candidate_id: int
    baseline_id: int
    activations: int = 0
    candidate_violations: int = 0
    baseline_violations: int = 0
    candidate_silent: int = 0
    baseline_silent: int = 0
    reasons: List[str] = field(default_factory=list)
    per_chain: Dict[str, dict] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "accepted": self.accepted,
            "candidate_id": self.candidate_id,
            "baseline_id": self.baseline_id,
            "activations": self.activations,
            "candidate_violations": self.candidate_violations,
            "baseline_violations": self.baseline_violations,
            "candidate_silent": self.candidate_silent,
            "baseline_silent": self.baseline_silent,
            "reasons": list(self.reasons),
            "per_chain": dict(sorted(self.per_chain.items())),
        }


def _replay(
    chain: EventChain,
    rows: Sequence[Tuple[str, int, Dict[str, int]]],
    budgets: Mapping[str, int],
) -> Tuple[int, int]:
    """Replay aligned rows under one budget map.

    Returns ``(mk_violations, silent_violations)``: per-source
    :class:`MissWindow` totals over the propagated miss series, and
    the count of true e2e violations no segment deadline caught.
    """
    windows: Dict[str, MissWindow] = {}
    violations = 0
    silent = 0
    for source, _activation, latencies in rows:
        detected = any(
            latencies[segment.name] > budgets[segment.name]
            for segment in chain.segments
        )
        window = windows.get(source)
        if window is None:
            window = windows[source] = MissWindow((chain.mk.m, chain.mk.k))
        if window.record(detected):
            violations += 1
        e2e = sum(latencies[segment.name] for segment in chain.segments)
        if e2e > chain.budget_e2e and not detected:
            silent += 1
    return violations, silent


class ShadowValidator:
    """Replays the window on a shadow replica; accepts or rejects."""

    def __init__(
        self,
        chains: Mapping[str, EventChain],
        config: Optional[ShadowConfig] = None,
    ):
        if not chains:
            raise ValueError("need at least one chain to validate against")
        self.chains = dict(chains)
        self.config = config or ShadowConfig()
        self.validations = 0
        self.accepted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def validate(
        self,
        window: Sequence[TelemetryRecord],
        candidate: BudgetEpoch,
        baseline: BudgetEpoch,
    ) -> ShadowVerdict:
        verdict = ShadowVerdict(
            accepted=True,
            candidate_id=candidate.epoch_id,
            baseline_id=baseline.epoch_id,
        )
        for name in sorted(self.chains):
            chain = self.chains[name]
            missing = [
                seg.name for seg in chain.segments
                if name not in candidate.budgets
                or seg.name not in candidate.budgets[name]
            ]
            if missing:
                verdict.accepted = False
                verdict.reasons.append(
                    f"{name}: candidate misses budgets for {missing}"
                )
                continue
            rows = align_window(window, chain)
            cand_violations, cand_silent = _replay(
                chain, rows, candidate.budgets[name]
            )
            base_budgets = baseline.budgets.get(name)
            base_violations, base_silent = (
                _replay(chain, rows, base_budgets)
                if base_budgets is not None else (0, 0)
            )
            verdict.activations += len(rows)
            verdict.candidate_violations += cand_violations
            verdict.baseline_violations += base_violations
            verdict.candidate_silent += cand_silent
            verdict.baseline_silent += base_silent
            verdict.per_chain[name] = {
                "activations": len(rows),
                "candidate_violations": cand_violations,
                "baseline_violations": base_violations,
                "candidate_silent": cand_silent,
                "baseline_silent": base_silent,
            }
            if cand_violations > base_violations:
                verdict.accepted = False
                verdict.reasons.append(
                    f"{name}: (m,k) regression -- {cand_violations} "
                    f"violations vs {base_violations} under baseline"
                )
            if cand_silent > 0:
                verdict.accepted = False
                verdict.reasons.append(
                    f"{name}: {cand_silent} silent chain violations "
                    f"(e2e > B_e2e with no deadline fired)"
                )
        if verdict.activations < self.config.min_activations:
            verdict.accepted = False
            verdict.reasons.append(
                f"window too thin to judge: {verdict.activations} "
                f"activations < {self.config.min_activations}"
            )
        self.validations += 1
        if verdict.accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        return verdict

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ShadowValidator chains={len(self.chains)} "
            f"accepted={self.accepted} rejected={self.rejected}>"
        )
