"""Vehicle-side epoch reception: durable, monotonic, exactly-once.

The agent mirrors the uplink's append-before-ack rule for the reverse
direction: an epoch frame is appended to the vehicle's epoch WAL (CRC
line framing) and flushed *before* any acknowledgment is produced, so
a crash after the ack can always rebuild the acknowledged state.

Application is **atomic and exactly-once**: ``install`` receives the
whole :class:`~repro.adaptive.epochs.BudgetEpoch` (never a partial
budget map), an ``applied`` marker is appended first, and replay
deduplicates by epoch id -- a crash *between* the ``recv`` append and
the ``applied`` marker recovers to "durably received, not yet applied"
and applies exactly once on recovery, never half.

The degradation ladder gates application: while the vehicle is
DEGRADED or SAFE a received epoch is acked ``deferred`` (it is durable,
so the server stops resending) and parked; the transition back to
NORMAL applies the newest parked epoch exactly once and emits the
``applied`` ack.  Monotonicity: epoch ids only move forward -- a stale
or duplicate frame is re-acked with its recorded status and changes
nothing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Set, Tuple

from repro.adaptive.epochs import BudgetEpoch
from repro.faults.degradation import DegradationMode
from repro.telemetry.uplink.transport import (
    decode_envelope,
    decode_epoch_frame,
    encode_epoch_ack,
)
from repro.telemetry.uplink.wal import decode_entry, encode_entry


class SimulatedApplyCrash(RuntimeError):
    """Chaos-harness signal: the process died *after* durably receiving
    an epoch but *before* applying it (the torn-apply window)."""


@dataclass
class VehicleRecoveryReport:
    """What :meth:`VehicleEpochAgent.recover` rebuilt from disk."""

    entries: int = 0
    truncated_tail: bool = False
    #: An epoch was durably received but not applied before the crash.
    pending_apply: bool = False


class VehicleEpochAgent:
    """Receives, defers, applies and acknowledges budget epochs."""

    def __init__(
        self,
        source: str,
        directory: Path,
        fsync: str = "never",
        install: Optional[Callable[[BudgetEpoch], None]] = None,
        initial: Optional[BudgetEpoch] = None,
    ):
        self.source = source
        self.directory = Path(directory)
        self.fsync = fsync
        self.install = install
        self.directory.mkdir(parents=True, exist_ok=True)
        self._file = open(self._wal_path(), "a", encoding="utf-8")
        self.mode = DegradationMode.NORMAL
        #: The epoch whose budgets the vehicle's monitors run right now.
        self.active: Optional[BudgetEpoch] = None
        #: Durably received, waiting for the ladder to clear.
        self.pending: Optional[BudgetEpoch] = None
        # Ground-truth ledger sets (ids; disjoint classification).
        self.received: Set[int] = set()
        self.applied: Set[int] = set()
        self.superseded: Set[int] = set()
        # Counters.
        self.frames = 0
        self.foreign_frames = 0
        self.stale_frames = 0
        self.applies = 0
        self.deferrals = 0
        #: Chaos hook: die (once) in the window between the durable
        #: ``recv`` append and the ``applied`` marker.
        self.fail_after_recv = False
        if initial is not None:
            # The factory baseline: installed directly, not via wire.
            self.active = initial
            if self.install is not None:
                self.install(initial)

    # ------------------------------------------------------------------
    def _wal_path(self) -> Path:
        return self.directory / "epochs.log"

    def _append(self, fields: list) -> None:
        body = json.dumps(fields, separators=(",", ":"))
        self._file.write(encode_entry(body) + "\n")
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    @property
    def highest_seen(self) -> int:
        candidates = [eid for eid in self.received]
        if self.active is not None:
            candidates.append(self.active.epoch_id)
        return max(candidates) if candidates else -1

    def handle_frame(self, payload: str, now: int = 0) -> Optional[str]:
        """Process one downlink datagram; returns the ack payload (to
        go back up the uplink) or ``None`` for frames that are not a
        well-formed epoch frame for this vehicle."""
        doc = decode_envelope(payload)
        frame = decode_epoch_frame(doc) if doc is not None else None
        if frame is None:
            return None
        vehicle, epoch_doc = frame
        if vehicle != self.source:
            self.foreign_frames += 1
            return None
        try:
            epoch = BudgetEpoch.from_json(epoch_doc)
        except (ValueError, KeyError, TypeError):
            self.foreign_frames += 1
            return None
        self.frames += 1
        if epoch.epoch_id <= self.highest_seen:
            # Duplicate or stale: idempotent re-ack with recorded
            # status; nothing is re-applied, nothing re-logged.
            self.stale_frames += 1
            return encode_epoch_ack(
                self.source, epoch.epoch_id, self._status_of(epoch.epoch_id)
            )
        # Fresh: durable before any acknowledgment.
        self._append(["recv", epoch.to_json()])
        self.received.add(epoch.epoch_id)
        if self.fail_after_recv:
            self.fail_after_recv = False
            raise SimulatedApplyCrash(self.source)
        if self.pending is not None:
            # A newer epoch supersedes a parked one that never ran.
            self.superseded.add(self.pending.epoch_id)
            self.pending = None
        if self.mode is DegradationMode.NORMAL:
            self._apply(epoch)
            return encode_epoch_ack(self.source, epoch.epoch_id, "applied")
        self.pending = epoch
        self.deferrals += 1
        return encode_epoch_ack(self.source, epoch.epoch_id, "deferred")

    def _status_of(self, epoch_id: int) -> str:
        if epoch_id in self.applied or (
            self.active is not None and epoch_id <= self.active.epoch_id
        ):
            return "applied"
        if self.pending is not None and self.pending.epoch_id == epoch_id:
            return "deferred"
        return "applied" if epoch_id in self.applied else "deferred"

    def _apply(self, epoch: BudgetEpoch) -> None:
        # Marker first: if install side effects ever crashed the
        # process, replay would re-run the (atomic, whole-epoch)
        # install rather than leave half-applied budgets behind.
        self._append(["applied", epoch.epoch_id])
        self.active = epoch
        self.applied.add(epoch.epoch_id)
        self.applies += 1
        if self.install is not None:
            self.install(epoch)

    # ------------------------------------------------------------------
    def set_mode(self, mode: DegradationMode, now: int = 0) -> Optional[str]:
        """Move along the degradation ladder.  Returning to NORMAL
        applies the parked epoch exactly once; the returned ack payload
        (if any) must be sent up so the server sees ``applied``."""
        self.mode = mode
        if mode is not DegradationMode.NORMAL or self.pending is None:
            return None
        epoch = self.pending
        self.pending = None
        self._apply(epoch)
        return encode_epoch_ack(self.source, epoch.epoch_id, "applied")

    # ------------------------------------------------------------------
    def kill(self, torn_tail: bool = False) -> None:
        """Simulate process death; *torn_tail* half-writes the newest
        WAL line (crash mid-append)."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        if torn_tail:
            path = self._wal_path()
            raw = path.read_bytes()
            lines = raw.split(b"\n")
            if len(lines) >= 2 and lines[-2]:
                last = lines[-2]
                kept = raw[: len(raw) - len(last) - 1]
                path.write_bytes(kept + last[: len(last) // 2])

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        source: str,
        directory: Path,
        fsync: str = "never",
        install: Optional[Callable[[BudgetEpoch], None]] = None,
        initial: Optional[BudgetEpoch] = None,
    ) -> Tuple["VehicleEpochAgent", VehicleRecoveryReport]:
        """Rebuild the agent from its epoch WAL.

        Replay classifies every durably received epoch: the newest
        ``applied`` marker wins the active slot; a newer ``recv``
        without a marker is the torn-apply case and comes back as
        ``pending`` -- :meth:`apply_pending_if_normal` (or the next
        :meth:`set_mode` to NORMAL) applies it exactly once.  A torn
        final line is truncated: that receive never happened and the
        server's retry machinery will offer it again.
        """
        directory = Path(directory)
        path = directory / "epochs.log"
        report = VehicleRecoveryReport()
        epochs: List[BudgetEpoch] = []
        applied_ids: List[int] = []
        kept: List[str] = []
        lines = (
            path.read_text(encoding="utf-8").splitlines()
            if path.exists() else []
        )
        for index, line in enumerate(lines):
            fields = decode_entry(line)
            if fields is None:
                if index == len(lines) - 1:
                    report.truncated_tail = True
                    break
                raise ValueError(
                    f"{path}: corrupt epoch WAL entry mid-file "
                    f"(line {index})"
                )
            kept.append(line)
            report.entries += 1
            if fields[0] == "recv":
                epochs.append(BudgetEpoch.from_json(fields[1]))
            elif fields[0] == "applied":
                applied_ids.append(int(fields[1]))
        if report.truncated_tail:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                "\n".join(kept) + ("\n" if kept else ""), encoding="utf-8"
            )
        agent = cls(source, directory, fsync=fsync, install=None,
                    initial=None)
        agent.install = install
        agent.received = {epoch.epoch_id for epoch in epochs}
        agent.applied = set(applied_ids)
        by_id = {epoch.epoch_id: epoch for epoch in epochs}
        active_id = max(applied_ids) if applied_ids else -1
        if active_id >= 0 and active_id in by_id:
            agent.active = by_id[active_id]
        elif initial is not None:
            agent.active = initial
        newer = [eid for eid in sorted(by_id) if eid > active_id]
        if newer:
            # Everything but the newest unapplied epoch is superseded.
            for eid in newer[:-1]:
                agent.superseded.add(eid)
            agent.pending = by_id[newer[-1]]
            report.pending_apply = True
        if agent.active is not None and agent.install is not None:
            agent.install(agent.active)
        return agent, report

    def apply_pending_if_normal(self, now: int = 0) -> Optional[str]:
        """Apply a recovery-parked epoch when the ladder allows it."""
        if self.mode is DegradationMode.NORMAL and self.pending is not None:
            return self.set_mode(DegradationMode.NORMAL, now)
        return None

    # ------------------------------------------------------------------
    def ledger_json(self) -> dict:
        """Per-vehicle epoch conservation: every received id is applied,
        parked (pending) or superseded -- disjointly."""
        pending_ids = (
            {self.pending.epoch_id} if self.pending is not None else set()
        )
        union = self.applied | self.superseded | pending_ids
        disjoint = (
            len(self.applied) + len(self.superseded) + len(pending_ids)
            == len(union)
        )
        return {
            "received": len(self.received),
            "applied": len(self.applied),
            "pending": len(pending_ids),
            "superseded": len(self.superseded),
            "balanced": self.received == union and disjoint,
            "active": (
                self.active.epoch_id if self.active is not None else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover
        active = self.active.epoch_id if self.active is not None else None
        return (
            f"<VehicleEpochAgent {self.source} mode={self.mode.value} "
            f"active={active} pending={self.pending is not None}>"
        )
