"""Closed-loop adaptive budget control plane.

The offline workflow (trace -> CSP -> deploy, :mod:`repro.budgeting`)
assumes the fleet's latency distributions stand still.  They do not:
load, degradation and fault bursts shift them, and a ``d_mon``
assignment derived last week silently loses its meaning.  This package
closes the loop -- and does it robustness-first, because an online
controller in a safety-critical system must be unable to make things
worse:

- :mod:`repro.adaptive.epochs` -- versioned, content-addressed budget
  epochs and the durable append-only epoch ledger whose replay enforces
  the control plane's core invariant (publish only what validated);
- :mod:`repro.adaptive.resolver` -- re-derives ``d_mon`` online from
  the telemetry window, the store's streaming histograms and the
  tracing layer's critical-path attribution weights;
- :mod:`repro.adaptive.shadow` -- validates every candidate epoch on a
  shadow replica before it can touch a vehicle;
- :mod:`repro.adaptive.downlink` / :mod:`repro.adaptive.vehicle` --
  exactly-once epoch distribution over the existing uplink channel
  (epoch-versioned, monotonic, append-before-ack);
- :mod:`repro.adaptive.controlplane` -- canary-cohort staging,
  regression detection and automatic rollback to last-good;
- :mod:`repro.adaptive.chaos` -- the ``python -m repro adapt`` chaos
  sweep that proves the invariants under frame loss, duplication,
  reordering, crashes and partitions.
"""

from repro.adaptive.epochs import (
    EPOCH_SCHEMA,
    LEDGER_SCHEMA,
    BudgetEpoch,
    EpochLedger,
    EpochLedgerError,
    EpochStatus,
)
from repro.adaptive.resolver import (
    BudgetResolver,
    ChainResolution,
    ResolveOutcome,
    ResolverConfig,
    significant_drift,
)
from repro.adaptive.shadow import ShadowConfig, ShadowValidator, ShadowVerdict
from repro.adaptive.downlink import DistributorConfig, EpochDistributor
from repro.adaptive.vehicle import (
    SimulatedApplyCrash,
    VehicleEpochAgent,
    VehicleRecoveryReport,
)
from repro.adaptive.controlplane import (
    BudgetControlPlane,
    ControlPlaneConfig,
    ControlPlaneState,
)

__all__ = [
    "EPOCH_SCHEMA",
    "LEDGER_SCHEMA",
    "BudgetEpoch",
    "EpochLedger",
    "EpochLedgerError",
    "EpochStatus",
    "BudgetResolver",
    "ChainResolution",
    "ResolveOutcome",
    "ResolverConfig",
    "significant_drift",
    "ShadowConfig",
    "ShadowValidator",
    "ShadowVerdict",
    "DistributorConfig",
    "EpochDistributor",
    "SimulatedApplyCrash",
    "VehicleEpochAgent",
    "VehicleRecoveryReport",
    "BudgetControlPlane",
    "ControlPlaneConfig",
    "ControlPlaneState",
]
