"""Wait-free single-producer/single-consumer event ring buffer.

Layout (little-endian)::

    [0:8)    head  -- total records ever written (producer-owned)
    [8:16)   tail  -- total records ever consumed (consumer-owned)
    [16:...) capacity * RECORD_SIZE record slots

A record is ``(kind: u8, activation: u64, timestamp_ns: u64)`` padded to
24 bytes.  The producer writes the slot *before* publishing it by
bumping ``head`` (store-release semantics are provided by the GIL /
process memory model for our purposes); the consumer only advances
``tail``.  With exactly one producer and one consumer per buffer -- the
paper's design, one buffer per (segment, event type) -- no locks are
needed, and a full buffer rejects the write (counted by the caller).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

_HEADER = struct.Struct("<QQ")
_RECORD = struct.Struct("<BQQ")
#: Slot size: one record padded for alignment.
RECORD_SIZE = 24
_HEADER_SIZE = 16

#: Record kinds.
KIND_START = 1
KIND_END = 2


@dataclass(frozen=True)
class EventRecord:
    """One event in the buffer."""

    kind: int
    activation: int
    timestamp_ns: int


class SpscRingBuffer:
    """SPSC ring buffer of :class:`EventRecord` over a buffer object."""

    def __init__(self, buf, capacity: int, initialize: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        needed = _HEADER_SIZE + capacity * RECORD_SIZE
        if len(buf) < needed:
            raise ValueError(
                f"buffer too small: need {needed} bytes, have {len(buf)}"
            )
        self._buf = memoryview(buf)
        self.capacity = capacity
        if initialize:
            _HEADER.pack_into(self._buf, 0, 0, 0)

    @staticmethod
    def required_size(capacity: int) -> int:
        """Bytes needed for a buffer of *capacity* records."""
        return _HEADER_SIZE + capacity * RECORD_SIZE

    # -- producer side ---------------------------------------------------
    def push(self, kind: int, activation: int, timestamp_ns: int) -> bool:
        """Append a record; returns False if the buffer is full."""
        head, tail = _HEADER.unpack_from(self._buf, 0)
        if head - tail >= self.capacity:
            return False
        slot = _HEADER_SIZE + (head % self.capacity) * RECORD_SIZE
        _RECORD.pack_into(self._buf, slot, kind, activation, timestamp_ns)
        # Publish: bump head after the slot is fully written.
        struct.pack_into("<Q", self._buf, 0, head + 1)
        return True

    # -- consumer side ---------------------------------------------------
    def pop(self) -> Optional[EventRecord]:
        """Remove and return the oldest record, or None when empty."""
        head, tail = _HEADER.unpack_from(self._buf, 0)
        if tail >= head:
            return None
        slot = _HEADER_SIZE + (tail % self.capacity) * RECORD_SIZE
        kind, activation, timestamp_ns = _RECORD.unpack_from(self._buf, slot)
        struct.pack_into("<Q", self._buf, 8, tail + 1)
        return EventRecord(kind, activation, timestamp_ns)

    def drain(self) -> List[EventRecord]:
        """Pop everything currently buffered."""
        out = []
        while True:
            record = self.pop()
            if record is None:
                return out
            out.append(record)

    def __len__(self) -> int:
        head, tail = _HEADER.unpack_from(self._buf, 0)
        return head - tail

    def release(self) -> None:
        """Release the underlying memoryview.

        Required before closing a shared-memory region the buffer was
        built over (mmap refuses to close while exported views exist).
        """
        self._buf.release()
