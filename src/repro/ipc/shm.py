"""Shared-memory region lifecycle management."""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional


class SharedMemoryRegion:
    """A named shared-memory block usable across processes.

    The creating side calls ``SharedMemoryRegion(name, size, create=True)``
    and eventually :meth:`unlink`; attachers use ``create=False``.
    Supports the context-manager protocol (closes, and unlinks if owner).
    """

    def __init__(self, name: Optional[str], size: int = 0, create: bool = False):
        if create and size <= 0:
            raise ValueError("creating a region requires a positive size")
        self._owner = create
        if create:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        else:
            if name is None:
                raise ValueError("attaching requires a name")
            self._shm = shared_memory.SharedMemory(name=name, create=False)

    @property
    def name(self) -> str:
        """The region's system-wide name."""
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        """The raw memory."""
        return self._shm.buf

    @property
    def size(self) -> int:
        """Region size in bytes."""
        return self._shm.size

    def close(self) -> None:
        """Detach from the region (does not destroy it)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the region (owner side, after all closes)."""
        self._shm.unlink()

    def __enter__(self) -> "SharedMemoryRegion":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        if self._owner:
            try:
                self.unlink()
            except FileNotFoundError:  # already unlinked
                pass
