"""A real monitor thread over shared-memory ring buffers.

Faithful to the paper's Sec. IV-A design:

- one monitor thread per process, one semaphore;
- per segment, two SPSC ring buffers (start events, end events);
- instrumented code posts the current ``monotonic_ns`` timestamp into
  the start buffer and raises the semaphore; end events are posted
  without notification;
- the monitor blocks in a timed wait until the earliest pending
  deadline, drains buffers in fixed segment order, arms timeouts,
  matches end events, and invokes the exception callback for expired
  activations.

All Fig. 11 measurements (posting overheads, monitor latency, monitor
execution time) instrument this implementation with real clocks.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ipc.ring_buffer import (
    KIND_END,
    KIND_START,
    EventRecord,
    SpscRingBuffer,
)
from repro.ipc.semaphore import TimedSemaphore

ExceptionCallback = Callable[[str, int, int], None]  # (segment, activation, late_ns)


@dataclass
class MonitorStats:
    """Measured behaviour of the real monitor (Fig. 11 quantities)."""

    #: ns from posting a start event to the monitor processing it.
    monitor_latencies: List[int] = field(default_factory=list)
    #: ns the monitor spent processing per wake-up.
    execution_times: List[int] = field(default_factory=list)
    wakeups: int = 0
    exceptions: int = 0
    completions: int = 0
    stale_end_events: int = 0


class IpcSegment:
    """Monitoring state of one segment (buffers + pending deadlines)."""

    def __init__(
        self,
        name: str,
        deadline_ns: int,
        start_buffer: SpscRingBuffer,
        end_buffer: SpscRingBuffer,
    ):
        if deadline_ns <= 0:
            raise ValueError("deadline must be positive")
        self.name = name
        self.deadline_ns = deadline_ns
        self.start_buffer = start_buffer
        self.end_buffer = end_buffer
        self.pending: Dict[int, int] = {}  # activation -> absolute deadline
        self.dropped_events = 0

    # -- producer-side instrumentation (any thread/process) --------------
    def post_start(self, activation: int, semaphore: TimedSemaphore) -> int:
        """Post a start event + notify; returns the posting cost in ns."""
        t0 = time.perf_counter_ns()
        ok = self.start_buffer.push(KIND_START, activation, time.monotonic_ns())
        if ok:
            semaphore.post()
        else:
            self.dropped_events += 1
        return time.perf_counter_ns() - t0

    def post_end(self, activation: int) -> int:
        """Post an end event (no notification); returns cost in ns."""
        t0 = time.perf_counter_ns()
        if not self.end_buffer.push(KIND_END, activation, time.monotonic_ns()):
            self.dropped_events += 1
        return time.perf_counter_ns() - t0


class IpcMonitor:
    """The real high-priority monitor thread."""

    def __init__(
        self,
        segments: List[IpcSegment],
        on_exception: Optional[ExceptionCallback] = None,
        poll_cap_s: float = 0.2,
    ):
        self.segments = list(segments)
        self.semaphore = TimedSemaphore()
        self.on_exception = on_exception or (lambda *_args: None)
        self.poll_cap_s = poll_cap_s
        self.stats = MonitorStats()
        self._timeouts: List[Tuple[int, int, IpcSegment, int]] = []
        self._seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the monitor thread."""
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="ipc-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the monitor thread."""
        self._stop.set()
        self.semaphore.post()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "IpcMonitor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _next_deadline(self) -> Optional[int]:
        while self._timeouts:
            deadline, _seq, segment, activation = self._timeouts[0]
            if segment.pending.get(activation) == deadline:
                return deadline
            heapq.heappop(self._timeouts)
        return None

    def _run(self) -> None:
        while not self._stop.is_set():
            deadline = self._next_deadline()
            if deadline is None:
                timeout = self.poll_cap_s
            else:
                timeout = min(
                    self.poll_cap_s,
                    max(0.0, (deadline - time.monotonic_ns()) / 1e9),
                )
            self.semaphore.wait(timeout_s=timeout)
            if self._stop.is_set():
                return
            t_wake = time.perf_counter_ns()
            now = time.monotonic_ns()
            self.stats.wakeups += 1
            # Fixed segment order, starts before ends.
            for segment in self.segments:
                for record in segment.start_buffer.drain():
                    segment.pending[record.activation] = (
                        record.timestamp_ns + segment.deadline_ns
                    )
                    heapq.heappush(
                        self._timeouts,
                        (
                            record.timestamp_ns + segment.deadline_ns,
                            self._seq,
                            segment,
                            record.activation,
                        ),
                    )
                    self._seq += 1
                    self.stats.monitor_latencies.append(
                        now - record.timestamp_ns
                    )
                for record in segment.end_buffer.drain():
                    if record.activation in segment.pending:
                        del segment.pending[record.activation]
                        self.stats.completions += 1
                    else:
                        self.stats.stale_end_events += 1
            # Expired timeouts.
            while True:
                deadline = self._next_deadline()
                now = time.monotonic_ns()
                if deadline is None or deadline > now:
                    break
                _d, _s, segment, activation = heapq.heappop(self._timeouts)
                # Re-check the end buffer right before raising.
                for record in segment.end_buffer.drain():
                    if record.activation in segment.pending:
                        del segment.pending[record.activation]
                        self.stats.completions += 1
                    else:
                        self.stats.stale_end_events += 1
                if activation not in segment.pending:
                    continue
                del segment.pending[activation]
                self.stats.exceptions += 1
                self.on_exception(segment.name, activation, now - _d)
            self.stats.execution_times.append(time.perf_counter_ns() - t_wake)
