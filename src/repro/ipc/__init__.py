"""Real (non-simulated) shared-memory monitoring primitives.

The paper's local monitor is built from POSIX shared memory, wait-free
ring buffers and semaphores (``sem_timedwait``); its Fig. 11 measures
the *actual* overheads of that machinery (posting a start/end event,
monitor wake-up latency, monitor execution time).  This package
implements the same machinery for real on this machine:

- :mod:`repro.ipc.shm` -- shared-memory region lifecycle,
- :mod:`repro.ipc.ring_buffer` -- a wait-free SPSC ring buffer of fixed
  event records over any buffer (shared memory or local bytearray),
- :mod:`repro.ipc.semaphore` -- a timed-wait semaphore,
- :mod:`repro.ipc.monitor` -- a real monitor thread with a timeout
  queue, start/end event matching and exception callbacks.

The Fig. 11 benchmark measures these with ``time.perf_counter_ns`` /
``time.monotonic_ns``; the cross-process example in
``examples/real_ipc_monitor.py`` runs producer processes against the
monitor through actual shared memory.
"""

from repro.ipc.shm import SharedMemoryRegion
from repro.ipc.ring_buffer import EventRecord, SpscRingBuffer, RECORD_SIZE
from repro.ipc.semaphore import TimedSemaphore
from repro.ipc.monitor import IpcMonitor, IpcSegment, MonitorStats

__all__ = [
    "SharedMemoryRegion",
    "EventRecord",
    "SpscRingBuffer",
    "RECORD_SIZE",
    "TimedSemaphore",
    "IpcMonitor",
    "IpcSegment",
    "MonitorStats",
]
