"""A timed-wait semaphore (the ``sem_timedwait`` of the paper).

Wraps ``multiprocessing.Semaphore`` so the same object serves both
thread-based measurements and the cross-process example (children
inherit it through fork).
"""

from __future__ import annotations

import multiprocessing
from typing import Optional


class TimedSemaphore:
    """Counting semaphore with microsecond-granularity timed waits."""

    def __init__(self, initial: int = 0):
        if initial < 0:
            raise ValueError("initial count must be non-negative")
        self._sem = multiprocessing.Semaphore(initial)

    def post(self) -> None:
        """Release the semaphore (wakes one waiter)."""
        self._sem.release()

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Acquire; returns False when *timeout_s* elapses first.

        ``timeout_s=None`` blocks indefinitely -- mirroring
        ``sem_wait`` vs ``sem_timedwait``.
        """
        return self._sem.acquire(timeout=timeout_s)

    def try_wait(self) -> bool:
        """Non-blocking acquire."""
        return self._sem.acquire(block=False)
