"""Point-to-point link model with latency, jitter, bandwidth and loss.

A frame's delivery time is::

    t_deliver = t_send + serialization(size) + base_latency + jitter

with ``serialization(size) = size_bytes * 8 / bandwidth_bps``.  Deliveries
on one link never reorder (FIFO), matching the in-order delivery the
paper's system model assumes for middleware messages.  Loss is i.i.d.
per frame; the DDS layer decides whether lost frames are retransmitted
(RELIABLE) or dropped (BEST_EFFORT).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.kernel import Simulator, usec


@dataclass
class Frame:
    """A unit of transmission between ECUs."""

    payload: Any
    size_bytes: int
    src: str
    dst: str
    seq: int = 0
    #: Sender-side local timestamp (sender clock), set by the transport.
    send_timestamp: int = 0
    #: Extra metadata slots for transports (e.g. RTPS submessage kind).
    meta: dict = field(default_factory=dict)


class JitterModel:
    """Random per-frame extra delay.

    ``kind`` selects the distribution:

    - ``"none"`` -- always zero,
    - ``"uniform"`` -- uniform on ``[0, amplitude]``,
    - ``"lognormal"`` -- lognormal with median ``amplitude/4``, clipped
      to ``[0, 20 * amplitude]`` (rare large spikes).
    """

    def __init__(self, kind: str = "none", amplitude: int = 0):
        if kind not in ("none", "uniform", "lognormal"):
            raise ValueError(f"unknown jitter kind {kind!r}")
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        self.kind = kind
        self.amplitude = int(amplitude)

    def sample(self, rng: np.random.Generator) -> int:
        if self.kind == "none" or self.amplitude == 0:
            return 0
        if self.kind == "uniform":
            return int(rng.integers(0, self.amplitude + 1))
        # lognormal
        value = (self.amplitude / 4.0) * float(rng.lognormal(0.0, 1.0))
        return int(min(value, 20.0 * self.amplitude))


@dataclass
class LinkStats:
    """Cumulative link counters."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    bytes_sent: int = 0


class Link:
    """A unidirectional link between two ECUs.

    Parameters
    ----------
    sim:
        Simulation kernel.
    name:
        Identifier (used for the RNG stream and traces).
    base_latency:
        Fixed propagation + switching delay in ns.
    jitter:
        Random extra delay model.
    bandwidth_bps:
        Serialization rate; 1 Gbit/s by default.
    loss_prob:
        Per-frame i.i.d. loss probability.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        base_latency: int = usec(100),
        jitter: Optional[JitterModel] = None,
        bandwidth_bps: float = 1e9,
        loss_prob: float = 0.0,
    ):
        if base_latency < 0:
            raise ValueError("base latency must be non-negative")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not (0.0 <= loss_prob < 1.0):
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.base_latency = int(base_latency)
        self.jitter = jitter or JitterModel()
        self.bandwidth_bps = float(bandwidth_bps)
        self.loss_prob = float(loss_prob)
        self.stats = LinkStats()
        self._seq = itertools.count()
        self._last_delivery = 0
        self._rng = None
        self._deliver_label = f"link:{name}:deliver"
        #: Optional hook called as ``fn(frame)`` when a frame is lost.
        self.on_loss: Optional[Callable[[Frame], None]] = None
        #: Optional targeted-loss predicate for fault injection: return
        #: True to drop this frame regardless of ``loss_prob``.
        self.loss_filter: Optional[Callable[[Frame], bool]] = None

    def serialization_delay(self, size_bytes: int) -> int:
        """Time to clock *size_bytes* onto the wire, in ns."""
        return int(size_bytes * 8 / self.bandwidth_bps * 1e9)

    def transmit(self, frame: Frame, deliver: Callable[[Frame], None]) -> bool:
        """Send *frame*; call *deliver(frame)* at the arrival instant.

        Returns ``False`` if the frame was lost (deliver is then never
        called; the loss hook fires instead).
        """
        rng = self._rng
        if rng is None:
            rng = self._rng = self.sim.rng(f"link:{self.name}")
        frame.seq = next(self._seq)
        self.stats.sent += 1
        self.stats.bytes_sent += frame.size_bytes
        forced_loss = self.loss_filter is not None and self.loss_filter(frame)
        if forced_loss or (self.loss_prob > 0 and rng.random() < self.loss_prob):
            self.stats.lost += 1
            if self.sim._trace_hooks:
                self.sim.emit_trace(
                    "link.loss", link=self.name, seq=frame.seq, dst=frame.dst
                )
            if self.on_loss is not None:
                self.on_loss(frame)
            return False
        delay = (
            self.serialization_delay(frame.size_bytes)
            + self.base_latency
            + self.jitter.sample(rng)
        )
        arrival = self.sim.now + delay
        # FIFO guarantee: never deliver before an earlier frame.
        if arrival <= self._last_delivery:
            arrival = self._last_delivery + 1
        self._last_delivery = arrival
        self.sim.schedule_at(
            arrival,
            self._deliver,
            frame,
            deliver,
            label=self._deliver_label,
        )
        return True

    def _deliver(self, frame: Frame, deliver: Callable[[Frame], None]) -> None:
        self.stats.delivered += 1
        if self.sim._trace_hooks:
            self.sim.emit_trace(
                "link.deliver", link=self.name, seq=frame.seq, dst=frame.dst
            )
        deliver(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} base={self.base_latency}ns loss={self.loss_prob}>"
