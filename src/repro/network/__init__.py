"""Inter-ECU communication substrate.

Models the Ethernet fabric between ECUs and the PTP (IEEE 1588) time
synchronization the paper's synchronization-based remote monitoring
relies on:

- :mod:`repro.network.link` -- point-to-point links with base latency,
  jitter, bandwidth-dependent serialization and loss; deliveries are
  in-order per link (the paper assumes in-order middleware delivery).
- :mod:`repro.network.ptp` -- drifting per-ECU clocks with periodic sync
  rounds bounding the offset error to the paper's epsilon.
- :mod:`repro.network.stack` -- the receive path: frames arrive at a NIC
  and are processed by a ksoftirq-like thread whose scheduling priority
  sits just below the monitor thread, exactly as configured in the
  paper's evaluation.
"""

from repro.network.link import Frame, JitterModel, Link, LinkStats
from repro.network.ptp import DriftingClock, PtpService
from repro.network.stack import NetworkStack
from repro.network.switch import (
    BackgroundTraffic,
    EthernetSwitch,
    SwitchedLink,
)

__all__ = [
    "Frame",
    "JitterModel",
    "Link",
    "LinkStats",
    "DriftingClock",
    "PtpService",
    "NetworkStack",
    "BackgroundTraffic",
    "EthernetSwitch",
    "SwitchedLink",
]
