"""Drifting clocks and PTP-style time synchronization.

The paper's synchronization-based remote monitoring interprets the sender
timestamp carried in each DDS sample against the *receiver's* clock,
which is valid only because modern vehicle networks synchronize ECU
clocks via PTP (IEEE 1588) with a bounded error epsilon.  This module
provides exactly that abstraction:

- :class:`DriftingClock` -- a local clock with an offset that drifts at a
  constant rate (ppm) between corrections.
- :class:`PtpService` -- periodic sync rounds that snap each slave's
  offset back to within ``residual_error`` of the master.

Between syncs the offset error grows by ``drift_ppm * sync_period``;
the effective bound used by monitors is therefore
``epsilon = residual_error + drift_ppm * 1e-6 * sync_period``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.kernel import Simulator


class DriftingClock:
    """A local clock: ``local = global + offset0 + drift * (global - t_sync)``.

    ``drift_ppm`` is the frequency error in parts-per-million; 10 ppm
    accumulates 10 microseconds of error per second.
    """

    def __init__(
        self,
        sim: Simulator,
        offset_ns: int = 0,
        drift_ppm: float = 0.0,
        name: str = "clock",
    ):
        self.sim = sim
        self.name = name
        self.drift_ppm = float(drift_ppm)
        self._offset0 = int(offset_ns)
        self._sync_time = 0
        self.sync_count = 0

    def now(self) -> int:
        """Current local time in ns."""
        return self.sim.now + self._current_offset()

    def _current_offset(self) -> int:
        elapsed = self.sim.now - self._sync_time
        return self._offset0 + int(elapsed * self.drift_ppm * 1e-6)

    @property
    def offset(self) -> int:
        """Current deviation from global time in ns."""
        return self._current_offset()

    def correct(self, new_offset_ns: int) -> None:
        """Snap the clock offset (called by the PTP service)."""
        self._offset0 = int(new_offset_ns)
        self._sync_time = self.sim.now
        self.sync_count += 1

    def to_global(self, local_ts: int) -> int:
        """Translate a local timestamp to global time (diagnostics only).

        Real systems cannot do this -- it is provided for test oracles.
        """
        return local_ts - self._current_offset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DriftingClock {self.name} offset={self.offset}ns drift={self.drift_ppm}ppm>"


class PtpService:
    """Periodic clock synchronization with bounded residual error.

    Every ``sync_period`` ns each slave clock's offset is corrected to a
    value drawn uniformly from ``[-residual_error, +residual_error]``
    (the master is assumed to hold global time; delay-request asymmetry
    and servo noise are folded into the residual).
    """

    def __init__(
        self,
        sim: Simulator,
        slaves: List[DriftingClock],
        sync_period: int,
        residual_error: int = 0,
        name: str = "ptp",
    ):
        if sync_period <= 0:
            raise ValueError("sync period must be positive")
        if residual_error < 0:
            raise ValueError("residual error must be non-negative")
        self.sim = sim
        self.slaves = list(slaves)
        self.sync_period = int(sync_period)
        self.residual_error = int(residual_error)
        self.name = name
        self.rounds = 0
        self._running = False

    def start(self) -> None:
        """Run the first sync immediately and then periodically."""
        if self._running:
            raise RuntimeError("PTP service already running")
        self._running = True
        self._round()

    def stop(self) -> None:
        """Stop scheduling further sync rounds."""
        self._running = False

    def error_bound(self, max_drift_ppm: Optional[float] = None) -> int:
        """Worst-case clock error between syncs (the monitors' epsilon)."""
        if max_drift_ppm is None:
            max_drift_ppm = max(
                (abs(c.drift_ppm) for c in self.slaves), default=0.0
            )
        growth = int(self.sync_period * max_drift_ppm * 1e-6)
        return self.residual_error + growth

    def _round(self) -> None:
        if not self._running:
            return
        rng = self.sim.rng(f"ptp:{self.name}")
        for clock in self.slaves:
            if self.residual_error > 0:
                residual = int(
                    rng.integers(-self.residual_error, self.residual_error + 1)
                )
            else:
                residual = 0
            clock.correct(residual)
        self.rounds += 1
        self.sim.schedule_after(self.sync_period, self._round, label="ptp:round")
