"""A store-and-forward switch with output-port queueing.

The point-to-point :class:`~repro.network.link.Link` draws its jitter
from a distribution; this switch makes the jitter *emergent*: frames
from several flows share an output port, queue behind each other, and
experience load-dependent delay -- the response-time jitter ``J_R`` the
paper's remote-deadline formula must absorb.  A background-traffic
generator loads ports with cross traffic.

Topology: ECUs attach to numbered ports; a frame entering the switch is
forwarded to its destination's port queue, serialized at the port rate,
then handed to the destination's delivery callback after the egress
propagation delay.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.network.link import Frame
from repro.sim.kernel import Simulator, usec


class _OutputPort:
    """One egress port: FIFO queue + serializer."""

    def __init__(self, switch: "EthernetSwitch", name: str):
        self.switch = switch
        self.name = name
        self.queue: Deque[Tuple[Frame, Callable[[Frame], None]]] = deque()
        self.busy = False
        self.deliver_default: Optional[Callable[[Frame], None]] = None
        # Statistics.
        self.forwarded = 0
        self.dropped = 0
        self.peak_queue = 0
        self.total_queueing_ns = 0
        self._enqueue_times: Deque[int] = deque()

    def enqueue(self, frame: Frame, deliver: Callable[[Frame], None]) -> bool:
        if len(self.queue) >= self.switch.queue_capacity:
            self.dropped += 1
            return False
        self.queue.append((frame, deliver))
        self._enqueue_times.append(self.switch.sim.now)
        if len(self.queue) > self.peak_queue:
            self.peak_queue = len(self.queue)
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        frame, deliver = self.queue[0]
        tx_time = int(frame.size_bytes * 8 / self.switch.port_rate_bps * 1e9)
        self.switch.sim.schedule_after(
            max(1, tx_time), self._finish, frame, deliver,
            label=f"switch:{self.name}:tx",
        )

    def _finish(self, frame: Frame, deliver: Callable[[Frame], None]) -> None:
        self.queue.popleft()
        entered = self._enqueue_times.popleft()
        self.total_queueing_ns += self.switch.sim.now - entered
        self.forwarded += 1
        self.switch.sim.schedule_after(
            self.switch.propagation_delay, deliver, frame,
            label=f"switch:{self.name}:deliver",
        )
        self._start_next()


class EthernetSwitch:
    """A shared switch interconnecting ECU ports.

    Parameters
    ----------
    sim:
        Simulation kernel.
    port_rate_bps:
        Serialization rate of each egress port (100 Mbit/s automotive
        Ethernet by default -- low enough that big point clouds load
        the port noticeably).
    propagation_delay:
        Cable + PHY latency after serialization.
    queue_capacity:
        Frames an egress queue holds before tail-dropping.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        port_rate_bps: float = 100e6,
        propagation_delay: int = usec(5),
        queue_capacity: int = 64,
    ):
        if port_rate_bps <= 0:
            raise ValueError("port rate must be positive")
        self.sim = sim
        self.name = name
        self.port_rate_bps = float(port_rate_bps)
        self.propagation_delay = int(propagation_delay)
        self.queue_capacity = int(queue_capacity)
        self._ports: Dict[str, _OutputPort] = {}

    def attach(self, node_name: str) -> None:
        """Create the egress port towards *node_name*."""
        if node_name in self._ports:
            raise ValueError(f"port to {node_name!r} already exists")
        self._ports[node_name] = _OutputPort(self, node_name)

    def port(self, node_name: str) -> _OutputPort:
        """The egress port towards *node_name* (statistics access)."""
        return self._ports[node_name]

    def forward(
        self, frame: Frame, deliver: Callable[[Frame], None]
    ) -> bool:
        """Send *frame* towards ``frame.dst``; False if tail-dropped."""
        port = self._ports.get(frame.dst)
        if port is None:
            raise KeyError(f"no port towards {frame.dst!r}")
        return port.enqueue(frame, deliver)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<EthernetSwitch {self.name} ports={sorted(self._ports)}>"


class SwitchedLink:
    """A Link-compatible adapter routing through an EthernetSwitch.

    Drop-in for :class:`~repro.network.link.Link` in the DDS domain:
    exposes ``transmit(frame, deliver)`` but with emergent queueing
    delay instead of drawn jitter.  An optional i.i.d. loss probability
    models wire-level corruption.
    """

    def __init__(
        self,
        switch: EthernetSwitch,
        name: str,
        loss_prob: float = 0.0,
    ):
        if not (0.0 <= loss_prob < 1.0):
            raise ValueError("loss probability must be in [0, 1)")
        self.switch = switch
        self.name = name
        self.loss_prob = float(loss_prob)
        self.loss_filter: Optional[Callable[[Frame], bool]] = None
        self.sent = 0
        self.lost = 0

    def transmit(self, frame: Frame, deliver: Callable[[Frame], None]) -> bool:
        self.sent += 1
        forced = self.loss_filter is not None and self.loss_filter(frame)
        if forced or (
            self.loss_prob > 0
            and self.switch.sim.rng(f"swlink:{self.name}").random() < self.loss_prob
        ):
            self.lost += 1
            return False
        return self.switch.forward(frame, deliver)


class BackgroundTraffic:
    """Cross traffic loading one egress port.

    Emits frames of ``frame_bytes`` towards *dst* with exponentially
    distributed gaps targeting the given utilization of the port rate.
    """

    def __init__(
        self,
        switch: EthernetSwitch,
        dst: str,
        utilization: float = 0.5,
        frame_bytes: int = 1500,
        rng_stream: str = "bgtraffic",
    ):
        if not (0.0 < utilization < 1.0):
            raise ValueError("utilization must be in (0, 1)")
        self.switch = switch
        self.dst = dst
        self.frame_bytes = int(frame_bytes)
        self.rng_stream = rng_stream
        tx_time = frame_bytes * 8 / switch.port_rate_bps * 1e9
        self.mean_gap = tx_time / utilization
        self.sent = 0
        self._running = False

    def start(self) -> None:
        """Begin emitting cross traffic."""
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop emitting."""
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        rng = self.switch.sim.rng(self.rng_stream)
        gap = max(1, int(rng.exponential(self.mean_gap)))
        self.switch.sim.schedule_after(gap, self._emit, label="bgtraffic")

    def _emit(self) -> None:
        if not self._running:
            return
        frame = Frame(
            payload=None, size_bytes=self.frame_bytes,
            src="bg", dst=self.dst,
        )
        self.switch.forward(frame, lambda f: None)
        self.sent += 1
        self._schedule_next()
