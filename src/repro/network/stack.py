"""NIC receive path: frames are handed to a ksoftirq-like thread.

In the paper's evaluation "the ksoftirq threads, which handle the
interrupts from the network controller, were executing on a priority just
below the monitor thread".  We reproduce that: a frame arriving at an
ECU's NIC is queued and the ECU's ksoftirq thread -- a normal simulated
thread with a configurable (high) priority -- dequeues it, spends a
per-frame processing cost, and invokes the registered port handler (the
DDS transport).  Receive-side latency therefore includes genuine
scheduling delay whenever higher-priority work occupies all cores.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.cpu import Ecu
from repro.sim.kernel import usec
from repro.sim.sync import Semaphore
from repro.sim.threads import Compute, WaitSem
from repro.network.link import Frame

PortHandler = Callable[[Frame], None]


class NetworkStack:
    """Per-ECU receive-side network processing.

    Parameters
    ----------
    ecu:
        The ECU whose cores process received frames.
    ksoftirq_priority:
        Scheduling priority of the receive thread (the paper places it
        just below the monitor thread's maximum priority).
    per_frame_cost:
        CPU work per received frame, ns (IRQ + protocol processing).
    per_byte_cost:
        Additional CPU work per payload byte, ns (copy cost).
    """

    def __init__(
        self,
        ecu: Ecu,
        ksoftirq_priority: int = 90,
        per_frame_cost: int = usec(15),
        per_byte_cost: float = 0.002,
    ):
        self.ecu = ecu
        self.sim = ecu.sim
        self.per_frame_cost = int(per_frame_cost)
        self.per_byte_cost = float(per_byte_cost)
        self._ports: Dict[str, PortHandler] = {}
        self._rx_queue: Deque[Tuple[str, Frame]] = deque()
        self._rx_sem = Semaphore(self.sim, name=f"{ecu.name}.rx")
        self.frames_processed = 0
        self._thread = ecu.spawn(
            "ksoftirq", self._ksoftirq_body, priority=ksoftirq_priority
        )

    def register_port(self, port: str, handler: PortHandler) -> None:
        """Bind *handler* to *port*; one handler per port."""
        if port in self._ports:
            raise ValueError(f"port {port!r} already registered on {self.ecu.name}")
        self._ports[port] = handler

    def unregister_port(self, port: str) -> None:
        """Remove the handler for *port* (unknown ports are ignored)."""
        self._ports.pop(port, None)

    def deliver(self, port: str, frame: Frame) -> None:
        """Entry point for links: enqueue *frame* for ksoftirq processing.

        Called in kernel context at the frame's wire-arrival instant.
        """
        self._rx_queue.append((port, frame))
        self._rx_sem.post()

    # ------------------------------------------------------------------
    def _ksoftirq_body(self, _thread):
        while True:
            got = yield WaitSem(self._rx_sem)
            if not got:  # pragma: no cover - no timeout is ever armed
                continue
            if not self._rx_queue:
                continue
            port, frame = self._rx_queue.popleft()
            cost = self.per_frame_cost + int(self.per_byte_cost * frame.size_bytes)
            if cost > 0:
                yield Compute(cost)
            handler = self._ports.get(port)
            self.frames_processed += 1
            if self.sim._trace_hooks:
                self.sim.emit_trace(
                    "netstack.rx",
                    ecu=self.ecu.name,
                    port=port,
                    seq=frame.seq,
                    handled=handler is not None,
                )
            if handler is not None:
                handler(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NetworkStack {self.ecu.name} ports={list(self._ports)}>"
