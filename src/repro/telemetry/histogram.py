"""Streaming latency histograms: quantiles without raw samples.

A fleet service cannot keep every latency sample -- a day of one
vehicle's segment reports is already millions of integers.  The store
therefore folds samples into a log-bucketed histogram in the DDSketch
style: bucket ``i`` covers ``(gamma^(i-1), gamma^i]`` with
``gamma = (1 + alpha) / (1 - alpha)``, which guarantees every reported
quantile is within relative error ``alpha`` of the exact sample
quantile, at O(log(max/min) / alpha) memory independent of the sample
count.

The quantile convention is the *r-th smallest sample* with
``r = max(1, ceil(q * count))``, so the accuracy bound is sharp and
testable: the returned value v and the exact r-th smallest x satisfy
``|v - x| <= alpha * x`` (``tests/test_telemetry_histogram.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: Default relative accuracy of reported quantiles (1%).
DEFAULT_ALPHA = 0.01


class StreamingHistogram:
    """Mergeable log-bucket histogram with bounded-error quantiles."""

    __slots__ = (
        "alpha", "_gamma", "_log_gamma", "_buckets", "_zero",
        "count", "total", "min", "max",
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not (0.0 < alpha < 1.0):
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> count; bucket i covers (gamma^(i-1), gamma^i].
        self._buckets: Dict[int, int] = {}
        #: Samples <= 0 (latencies can legitimately be zero on a
        #: same-tick completion; negatives are clamped here too rather
        #: than corrupting the log buckets).
        self._zero = 0
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def add(self, value: int) -> None:
        """Fold one sample into the sketch."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            self._zero += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        # Float round-off can land an exact power on the wrong side;
        # nudge back so the invariant gamma^(i-1) < value <= gamma^i holds.
        if self._gamma ** (index - 1) >= value:
            index -= 1
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def add_many(self, values: Iterable[int]) -> None:
        """Fold many samples; identical sketch state to looped :meth:`add`.

        Bucket indexing deliberately stays on scalar ``math.log``: a
        vectorized ``np.log`` may differ from libm in the last ulp,
        which could move a boundary sample into the neighbouring bucket
        and break the byte-identical-snapshot guarantee the
        differential suite enforces.  The win here is bound-once locals
        and no per-call overhead, which is most of ``add``'s cost.
        """
        log = math.log
        ceil = math.ceil
        log_gamma = self._log_gamma
        gamma = self._gamma
        buckets = self._buckets
        lo = self.min
        hi = self.max
        count = 0
        total = 0
        zero = 0
        for value in values:
            count += 1
            total += value
            if lo is None or value < lo:
                lo = value
            if hi is None or value > hi:
                hi = value
            if value <= 0:
                zero += 1
                continue
            index = ceil(log(value) / log_gamma)
            if gamma ** (index - 1) >= value:
                index -= 1
            buckets[index] = buckets.get(index, 0) + 1
        self.count += count
        self.total += total
        self._zero += zero
        self.min = lo
        self.max = hi

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (r-th smallest, r = max(1, ceil(q*count))).

        None when empty.  Zero/negative samples report as 0.0.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # Midpoint of (gamma^(i-1), gamma^i] in the relative
                # metric: within alpha of every sample in the bucket.
                return 2.0 * self._gamma ** index / (self._gamma + 1.0)
        # Unreachable when counters are consistent.
        raise AssertionError("histogram bucket counts inconsistent")

    @property
    def mean(self) -> Optional[float]:
        """Exact running mean (the sum is tracked exactly)."""
        if self.count == 0:
            return None
        return self.total / self.count

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The monitoring triple p50/p95/p99 (+ min/max/mean/count)."""
        return {
            "count": self.count,
            "min": self.min,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
            "mean": self.mean,
        }

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold *other* into this sketch (alphas must match)."""
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with alpha {self.alpha} and {other.alpha}"
            )
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def merged(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """A new sketch equal to this one folded with *other*.

        Neither input is mutated, so warehouse cohort queries can merge
        persisted per-run sketches without corrupting them.  Merging is
        exact on sketch state (bucket counts add), hence commutative and
        associative, and the ``|est - exact| <= alpha * exact`` quantile
        bound survives arbitrary merge trees
        (``tests/test_telemetry_histogram.py``).
        """
        out = StreamingHistogram.restore(self.snapshot())
        out.merge(other)
        return out

    @classmethod
    def merge_many(
        cls, sketches: Iterable["StreamingHistogram"],
        alpha: float = DEFAULT_ALPHA,
    ) -> "StreamingHistogram":
        """Fold any number of sketches into one new sketch.

        ``alpha`` seeds the result when *sketches* is empty; a first
        input overrides it (all inputs must agree, as in :meth:`merge`).
        """
        out: Optional[StreamingHistogram] = None
        for sketch in sketches:
            if out is None:
                out = cls.restore(sketch.snapshot())
            else:
                out.merge(sketch)
        return cls(alpha=alpha) if out is None else out

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able exact state.

        Bucket keys serialize as strings (JSON objects cannot have int
        keys); order is normalized so equal sketches snapshot equal.
        """
        return {
            "alpha": self.alpha,
            "zero": self._zero,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
        }

    @classmethod
    def restore(cls, data: dict) -> "StreamingHistogram":
        """Rebuild a sketch from :meth:`snapshot` output."""
        hist = cls(alpha=data["alpha"])
        hist._zero = data["zero"]
        hist.count = data["count"]
        hist.total = data["total"]
        hist.min = data["min"]
        hist.max = data["max"]
        hist._buckets = {int(i): n for i, n in data["buckets"].items()}
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StreamingHistogram n={self.count} alpha={self.alpha} "
            f"buckets={len(self._buckets)}>"
        )
