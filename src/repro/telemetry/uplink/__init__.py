"""Durable store-and-forward telemetry uplink.

Vehicle side: :class:`WalSpooler` (append-before-emit write-ahead log)
drained by :class:`RetryingUplinkClient` (timeout, exponential backoff
with deterministic jitter, circuit breaker) over an
:class:`AdversarialChannel`.  Fleet side: :class:`UplinkIngestor`
(at-least-once in, exactly-once applied via :class:`DedupWatermark`,
append-before-ack durability, checkpoint + WAL-replay recovery).
:mod:`repro.telemetry.uplink.chaos` sweeps fault x crash schedules and
asserts the ledger law ``offered == acked + spooled + evicted``.
"""

from repro.telemetry.uplink.chaos import (
    ChaosConfig,
    ChaosDriver,
    ChaosScenario,
    CrashEvent,
    default_scenarios,
    run_chaos,
)
from repro.telemetry.uplink.client import (
    CircuitState,
    RetryingUplinkClient,
    UplinkClientConfig,
)
from repro.telemetry.uplink.ingest import (
    CHECKPOINT_SCHEMA,
    DedupWatermark,
    IngestRecoveryReport,
    UplinkIngestor,
    store_digest,
)
from repro.telemetry.uplink.transport import (
    ACK_SCHEMA,
    BATCH_SCHEMA,
    FRAME_SCHEMA,
    AdversarialChannel,
    ChannelFaultPlan,
    ChannelStats,
    decode_batch,
    decode_envelope,
    decode_frame,
    encode_ack,
    encode_batch,
    encode_envelope,
    encode_frame,
)
from repro.telemetry.uplink.window import (
    WindowedClientConfig,
    WindowedUplinkClient,
)
from repro.telemetry.uplink.wal import (
    FSYNC_POLICIES,
    RecordLog,
    RecoveryReport,
    WAL_SCHEMA,
    WalConfig,
    WalCorruptionError,
    WalSpooler,
)

__all__ = [
    "ACK_SCHEMA",
    "AdversarialChannel",
    "BATCH_SCHEMA",
    "CHECKPOINT_SCHEMA",
    "ChannelFaultPlan",
    "ChannelStats",
    "ChaosConfig",
    "ChaosDriver",
    "ChaosScenario",
    "CircuitState",
    "CrashEvent",
    "DedupWatermark",
    "FRAME_SCHEMA",
    "FSYNC_POLICIES",
    "IngestRecoveryReport",
    "RecordLog",
    "RecoveryReport",
    "RetryingUplinkClient",
    "UplinkClientConfig",
    "UplinkIngestor",
    "WAL_SCHEMA",
    "WalConfig",
    "WalCorruptionError",
    "WalSpooler",
    "WindowedClientConfig",
    "WindowedUplinkClient",
    "decode_batch",
    "decode_envelope",
    "decode_frame",
    "default_scenarios",
    "encode_ack",
    "encode_batch",
    "encode_envelope",
    "encode_frame",
    "run_chaos",
    "store_digest",
]
