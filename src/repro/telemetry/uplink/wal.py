"""Durable write-ahead spooling for the vehicle-side uplink.

The cardinal rule mirrors the ingest pipeline's ("no silent drops"),
extended across process death: **append before emit**.  A telemetry
record is written to a write-ahead log -- CRC-framed line in a rotating
segment file, flushed, optionally fsynced -- *before* the transport is
allowed to see it.  A record therefore exists in exactly one of four
places at any time, which is the uplink's ledger law::

    offered == acked + spooled + evicted

- *spooled*: durable in a WAL segment, not yet acknowledged;
- *acked*: the fleet service acknowledged it, the spool released it;
- *evicted*: the bounded disk budget forced the oldest records out --
  counted and reported through :attr:`WalSpooler.on_evict`, never
  silent.

Two log flavors live here:

- :class:`WalSpooler` -- the vehicle side.  Seq-indexed (per-source
  monotone), supports cumulative acknowledgment (``ack_through``),
  segment-file rotation, a bounded disk budget with oldest-first
  eviction, and :meth:`WalSpooler.recover` crash recovery that
  tolerates a torn tail line (a mid-write crash) by truncating it --
  counted -- while any *mid-file* damage raises
  :class:`WalCorruptionError` loudly.
- :class:`RecordLog` -- the fleet side.  A plain append-only record log
  (records from many sources, plus watermark markers) that the ingestor
  appends to *before acknowledging* and truncates at each durable
  checkpoint.

Both share one line format: ``crc32(body):body`` where ``body`` is the
record's compact JSON wire line, so corruption is detected per line.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.records import (
    SchemaVersionError,
    TelemetryRecord,
    WIRE_FIELDS,
)

#: Schema identifier written into every WAL segment header.
WAL_SCHEMA = "repro-uplink-wal/1"

#: Schema of the acknowledgment-watermark sidecar file.
WAL_MARK_SCHEMA = "repro-uplink-walmark/1"

#: First element of a watermark marker entry in a :class:`RecordLog`.
MARKER_TAG = "~wm"

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "rotate", "never")


class WalCorruptionError(RuntimeError):
    """Mid-file WAL damage (not a torn tail): refuse to guess."""


# ----------------------------------------------------------------------
# Line framing
# ----------------------------------------------------------------------
def encode_entry(body: str) -> str:
    """CRC-frame one JSON body as a WAL line (no trailing newline)."""
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x}:{body}"


def decode_entry(line: str) -> Optional[list]:
    """Parse a CRC-framed line; ``None`` when torn or corrupt."""
    if len(line) < 10 or line[8] != ":":
        return None
    body = line[9:]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        fields = json.loads(body)
    except ValueError:
        return None
    return fields if isinstance(fields, list) else None


def _entry_to_record(fields: list) -> Optional[TelemetryRecord]:
    if len(fields) != WIRE_FIELDS:
        return None
    try:
        return TelemetryRecord.from_wire(tuple(fields))
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Configuration / reports
# ----------------------------------------------------------------------
@dataclass
class WalConfig:
    """Shape and durability policy of one spool directory."""

    directory: Path
    #: ``always`` -- fsync every append (safest, slowest);
    #: ``rotate`` -- fsync when a segment closes; ``never`` -- flush only.
    fsync: str = "rotate"
    #: Records per segment file before rotation.
    segment_max_records: int = 256
    #: Total disk budget in bytes (None: unbounded).  When exceeded the
    #: oldest *closed* segment is evicted -- counted, never silent.
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 or None")


@dataclass
class RecoveryReport:
    """What :meth:`WalSpooler.recover` found on disk."""

    segments: int = 0
    #: Records still pending (unacked) after replay.
    pending: int = 0
    #: Torn tail lines dropped (mid-write crash artifacts).
    truncated_lines: int = 0
    #: Highest seq ever appended (resume point: next append > this).
    last_seq: int = -1
    #: Persisted cumulative acknowledgment watermark.
    ack_through: int = -1


class _Segment:
    """In-memory mirror of one WAL segment file."""

    __slots__ = ("index", "path", "records", "lines", "nbytes", "max_seq",
                 "closed")

    def __init__(self, index: int, path: Path):
        self.index = index
        self.path = path
        #: Pending (not yet acked/evicted) records, in append order.
        self.records: List[TelemetryRecord] = []
        #: CRC-framed wire lines, aligned 1:1 with :attr:`records`.  The
        #: spooler pays the JSON encode exactly once (at append), and
        #: frame building / relay reuses the cached line verbatim.
        self.lines: List[str] = []
        self.nbytes = 0
        #: Highest seq ever written to the file (survives mirror pops).
        self.max_seq = -1
        self.closed = False


# ----------------------------------------------------------------------
# Vehicle-side spooler
# ----------------------------------------------------------------------
class WalSpooler:
    """Append-before-emit spool over rotating CRC-framed segment files.

    Create fresh with :meth:`open_fresh` (empty directory) or rebuild
    after a crash with :meth:`recover`.  Counters (``appended``,
    ``acked``, ``evicted``, ``truncated``) cover the current process
    life; cross-crash accounting is the caller's ledger, fed by the
    return value of :meth:`ack_through` and the :attr:`on_evict` hook.
    """

    def __init__(self, config: WalConfig, source: str,
                 _from_recover: bool = False):
        self.config = config
        self.source = source
        self.segments: List[_Segment] = []
        self._file = None
        self._next_index = 0
        self.last_seq = -1
        self.ack_mark = -1
        self.appended = 0
        self.acked = 0
        self.evicted = 0
        self.truncated = 0
        #: Called with the list of pending records an eviction removed.
        self.on_evict: Optional[Callable[[List[TelemetryRecord]], None]] = None
        if not _from_recover:
            config.directory.mkdir(parents=True, exist_ok=True)
            if list(config.directory.glob("wal-*.log")):
                raise FileExistsError(
                    f"{config.directory} already holds WAL segments; "
                    f"use WalSpooler.recover()"
                )
            self._open_segment()

    # ------------------------------------------------------------------
    @classmethod
    def open_fresh(cls, config: WalConfig, source: str) -> "WalSpooler":
        """A new spool in an empty (or freshly created) directory."""
        return cls(config, source)

    # ------------------------------------------------------------------
    def _segment_path(self, index: int) -> Path:
        return self.config.directory / f"wal-{index:08d}.log"

    def _mark_path(self) -> Path:
        return self.config.directory / "ackmark.json"

    def _open_segment(self) -> None:
        segment = _Segment(self._next_index, self._segment_path(self._next_index))
        self._next_index += 1
        header = json.dumps(
            {"schema": WAL_SCHEMA, "segment": segment.index,
             "source": self.source},
            separators=(",", ":"), sort_keys=True,
        )
        self._file = open(segment.path, "a", encoding="utf-8")
        self._file.write(header + "\n")
        self._file.flush()
        segment.nbytes = len(header) + 1
        self.segments.append(segment)

    def _active(self) -> _Segment:
        return self.segments[-1]

    def _fsync(self) -> None:
        os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Records appended but neither acked nor evicted."""
        return sum(len(segment.records) for segment in self.segments)

    @property
    def total_bytes(self) -> int:
        return sum(segment.nbytes for segment in self.segments)

    def pending_records(
        self, limit: Optional[int] = None
    ) -> List[TelemetryRecord]:
        """The oldest pending records, in seq order (send order)."""
        out: List[TelemetryRecord] = []
        for segment in self.segments:
            for record in segment.records:
                out.append(record)
                if limit is not None and len(out) >= limit:
                    return out
        return out

    def pending_seqs(self) -> List[int]:
        return [r.seq for s in self.segments for r in s.records]

    def pending_entries(
        self, limit: Optional[int] = None, above_seq: int = -1
    ) -> List[Tuple[TelemetryRecord, str]]:
        """Oldest pending ``(record, wire line)`` pairs above ``above_seq``.

        The line is the exact CRC-framed entry on disk; the windowed
        client joins these into multi-record frames without re-encoding.
        """
        out: List[Tuple[TelemetryRecord, str]] = []
        for segment in self.segments:
            if segment.max_seq <= above_seq:
                continue
            for record, line in zip(segment.records, segment.lines):
                if record.seq <= above_seq:
                    continue
                out.append((record, line))
                if limit is not None and len(out) >= limit:
                    return out
        return out

    @property
    def floor_seq(self) -> int:
        """Lowest seq the vehicle may still offer.

        Equals the oldest pending seq, or ``last_seq + 1`` when the
        spool is drained.  Evictions raise the floor past the evicted
        records, which is exactly what lets the ingest watermark skip
        them instead of waiting forever.
        """
        for segment in self.segments:
            if segment.records:
                return segment.records[0].seq
        return self.last_seq + 1

    # ------------------------------------------------------------------
    def append(self, record: TelemetryRecord) -> None:
        """Durably spool one record (must carry a fresh, higher seq)."""
        self.append_many([record])

    def append_many(self, records: List[TelemetryRecord]) -> None:
        """Durably spool a batch with one flush (and one fsync).

        Same per-record guarantees as :meth:`append` -- every record
        hits the file before the method returns -- but the flush/fsync
        cost is paid once per batch, which is what makes the pipelined
        uplink's emit path cheap.
        """
        if not records:
            return
        for record in records:
            if record.seq <= self.last_seq:
                raise ValueError(
                    f"seq must increase: {record.seq} after {self.last_seq}"
                )
            line = encode_entry(record.encode_line())
            self._file.write(line + "\n")
            segment = self._active()
            segment.records.append(record)
            segment.lines.append(line)
            segment.nbytes += len(line) + 1
            segment.max_seq = record.seq
            self.last_seq = record.seq
            self.appended += 1
            if len(segment.records) >= self.config.segment_max_records:
                self._rotate()
        self._file.flush()
        if self.config.fsync == "always":
            self._fsync()
        self._enforce_budget()

    def _rotate(self) -> None:
        self._file.flush()
        if self.config.fsync in ("always", "rotate"):
            self._fsync()
        self._file.close()
        self._active().closed = True
        self._open_segment()

    def _enforce_budget(self) -> None:
        budget = self.config.max_bytes
        if budget is None:
            return
        while self.total_bytes > budget:
            victim = next((s for s in self.segments if s.closed), None)
            if victim is None:
                return  # only the active segment left: exempt
            lost = victim.records
            self.segments.remove(victim)
            victim.path.unlink(missing_ok=True)
            self.evicted += len(lost)
            if lost and self.on_evict is not None:
                self.on_evict(lost)

    # ------------------------------------------------------------------
    def ack_through(self, seq: int) -> List[TelemetryRecord]:
        """Release every pending record with ``record.seq <= seq``.

        Returns the released records; persists the watermark so a
        recovery never resurrects acknowledged records.  Stale (lower)
        watermarks are no-ops -- acks are cumulative.
        """
        if seq <= self.ack_mark:
            return []
        released: List[TelemetryRecord] = []
        for segment in list(self.segments):
            if segment.records and segment.records[0].seq <= seq:
                keep = []
                keep_lines = []
                for record, line in zip(segment.records, segment.lines):
                    if record.seq > seq:
                        keep.append(record)
                        keep_lines.append(line)
                    else:
                        released.append(record)
                segment.records = keep
                segment.lines = keep_lines
            if segment.closed and segment.max_seq <= seq:
                segment.path.unlink(missing_ok=True)
                self.segments.remove(segment)
        self.ack_mark = seq
        self._write_mark()
        self.acked += len(released)
        return released

    def _write_mark(self) -> None:
        path = self._mark_path()
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": WAL_MARK_SCHEMA, "ack_through": self.ack_mark},
                handle,
            )
            handle.flush()
            if self.config.fsync != "never":
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.flush()
            if self.config.fsync != "never":
                self._fsync()
            self._file.close()

    def stats(self) -> dict:
        return {
            "pending": self.pending,
            "segments": len(self.segments),
            "bytes": self.total_bytes,
            "appended": self.appended,
            "acked": self.acked,
            "evicted": self.evicted,
            "truncated": self.truncated,
            "last_seq": self.last_seq,
            "ack_through": self.ack_mark,
        }

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls, config: WalConfig, source: str
    ) -> Tuple["WalSpooler", RecoveryReport]:
        """Rebuild a spool from its directory after a crash.

        A torn *tail* line of the *last* segment (the only line a
        mid-write crash can damage) is physically truncated away and
        counted; damage anywhere else raises
        :class:`WalCorruptionError`.  Records at or below the persisted
        ack watermark are not resurrected.
        """
        spooler = cls(config, source, _from_recover=True)
        report = RecoveryReport()
        config.directory.mkdir(parents=True, exist_ok=True)
        paths = sorted(config.directory.glob("wal-*.log"))
        spooler.ack_mark = cls._read_mark(config.directory)
        report.ack_through = spooler.ack_mark
        last_seq = spooler.ack_mark

        for file_no, path in enumerate(paths):
            is_last = file_no == len(paths) - 1
            segment, seqs, dropped = cls._read_segment(
                path, source, is_last=is_last
            )
            report.truncated_lines += dropped
            spooler.truncated += dropped
            if segment is None:
                continue  # torn header on the last file: removed
            if seqs:
                last_seq = max(last_seq, seqs[-1])
            kept = [
                (r, ln) for r, ln in zip(segment.records, segment.lines)
                if r.seq > spooler.ack_mark
            ]
            segment.records = [r for r, _ in kept]
            segment.lines = [ln for _, ln in kept]
            segment.closed = True
            spooler.segments.append(segment)

        spooler.last_seq = last_seq
        if spooler.segments:
            spooler._next_index = spooler.segments[-1].index + 1
        # Resume appends: reopen the last segment if it has room,
        # otherwise start a new one.
        tail = spooler.segments[-1] if spooler.segments else None
        if (
            tail is not None
            and len(tail.records) < config.segment_max_records
            and tail.path.exists()
        ):
            tail.closed = False
            spooler._file = open(tail.path, "a", encoding="utf-8")
        else:
            spooler._open_segment()
        report.segments = len(spooler.segments)
        report.pending = spooler.pending
        report.last_seq = spooler.last_seq
        return spooler, report

    @staticmethod
    def _read_mark(directory: Path) -> int:
        path = directory / "ackmark.json"
        if not path.exists():
            return -1
        try:
            data = json.loads(path.read_text())
        except ValueError:
            return -1  # torn sidecar: fall back to re-acking duplicates
        if data.get("schema") != WAL_MARK_SCHEMA:
            raise SchemaVersionError("WAL ack mark", data.get("schema"),
                                     WAL_MARK_SCHEMA)
        return int(data["ack_through"])

    @staticmethod
    def _read_segment(
        path: Path, source: str, is_last: bool
    ) -> Tuple[Optional[_Segment], List[int], int]:
        """Parse one segment file -> (segment, seqs seen, torn lines).

        Repairs a torn tail in place (truncate); ``segment is None``
        when the last file's *header* was torn (file removed).
        """
        raw = path.read_bytes()
        text = raw.decode("utf-8", errors="replace")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        index = int(path.stem.split("-")[1])
        segment = _Segment(index, path)

        # Header line.
        header: Optional[dict] = None
        if lines:
            try:
                parsed = json.loads(lines[0])
                header = parsed if isinstance(parsed, dict) else None
            except ValueError:
                header = None
        if header is None:
            if is_last:
                path.unlink(missing_ok=True)
                return None, [], 1
            raise WalCorruptionError(f"{path}: unreadable segment header")
        if header.get("schema") != WAL_SCHEMA:
            raise SchemaVersionError(str(path), header.get("schema"),
                                     WAL_SCHEMA)

        seqs: List[int] = []
        kept_bytes = len(lines[0].encode("utf-8")) + 1
        dropped = 0
        for line_no, line in enumerate(lines[1:], start=2):
            fields = decode_entry(line)
            record = _entry_to_record(fields) if fields is not None else None
            if record is None:
                at_tail = is_last and line_no == len(lines)
                if not at_tail:
                    raise WalCorruptionError(
                        f"{path}:{line_no}: corrupt WAL entry mid-file"
                    )
                # Torn tail: physically truncate the damaged line away.
                with open(path, "r+b") as handle:
                    handle.truncate(kept_bytes)
                dropped = 1
                break
            segment.records.append(record)
            segment.lines.append(line)
            segment.max_seq = record.seq
            seqs.append(record.seq)
            kept_bytes += len(line.encode("utf-8")) + 1
        segment.nbytes = kept_bytes
        return segment, seqs, dropped

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<WalSpooler {self.source} pending={self.pending} "
            f"segments={len(self.segments)} ack={self.ack_mark}>"
        )


# ----------------------------------------------------------------------
# Fleet-side append-before-ack log
# ----------------------------------------------------------------------
class RecordLog:
    """Plain append-only record log with watermark markers.

    The ingestor appends every *fresh* record here (then the per-batch
    watermark marker) before acknowledging the batch, and calls
    :meth:`reset` after each durable checkpoint folds the log's
    contents into the snapshot.  :meth:`open_existing` replays the log
    after a crash, tolerating (and truncating) a torn tail line.
    """

    def __init__(self, path: Path, fsync: str = "rotate",
                 _replay: bool = False):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.entries = 0
        self.truncated = 0
        #: Replayed (record, None) / (None, (source, seq)) entries --
        #: populated by :meth:`open_existing` only.
        self.replayed: List[
            Tuple[Optional[TelemetryRecord], Optional[Tuple[str, int]]]
        ] = []
        if not _replay:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")
            self._write_header()

    def _write_header(self) -> None:
        header = json.dumps(
            {"schema": WAL_SCHEMA, "segment": 0, "source": "*fleet*"},
            separators=(",", ":"), sort_keys=True,
        )
        self._file.write(header + "\n")
        self._file.flush()

    # ------------------------------------------------------------------
    def append_record(self, record: TelemetryRecord) -> None:
        self._file.write(encode_entry(record.encode_line()) + "\n")
        self.entries += 1

    def append_raw(self, entry: str) -> None:
        """Append an already CRC-framed entry line verbatim.

        The frame path hands the vehicle's WAL lines straight through:
        the CRC was verified at decode, so re-encoding (the single
        hottest cost of the stop-and-wait ingest path) is skipped.
        """
        self._file.write(entry + "\n")
        self.entries += 1

    def append_marker(self, source: str, seq: int) -> None:
        body = json.dumps([MARKER_TAG, source, seq], separators=(",", ":"))
        self._file.write(encode_entry(body) + "\n")
        self.entries += 1

    def sync(self) -> None:
        """Make appended entries durable per the fsync policy."""
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())

    def reset(self) -> None:
        """Truncate after a checkpoint absorbed every entry."""
        self._file.close()
        self._file = open(self.path, "w", encoding="utf-8")
        self._write_header()
        if self.fsync != "never":
            os.fsync(self._file.fileno())
        self.entries = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())
            self._file.close()

    # ------------------------------------------------------------------
    @classmethod
    def open_existing(cls, path: Path, fsync: str = "rotate") -> "RecordLog":
        """Replay an existing log (crash recovery); creates if absent."""
        path = Path(path)
        if not path.exists():
            return cls(path, fsync)
        log = cls(path, fsync, _replay=True)
        raw = path.read_text(encoding="utf-8", errors="replace")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return cls(path, fsync)
        try:
            header = json.loads(lines[0])
        except ValueError:
            header = None
        if not isinstance(header, dict):
            raise WalCorruptionError(f"{path}: unreadable log header")
        if header.get("schema") != WAL_SCHEMA:
            raise SchemaVersionError(str(path), header.get("schema"),
                                     WAL_SCHEMA)
        kept = len(lines[0].encode("utf-8")) + 1
        for line_no, line in enumerate(lines[1:], start=2):
            fields = decode_entry(line)
            entry = None
            if fields is not None:
                if (
                    len(fields) == 3 and fields[0] == MARKER_TAG
                    and isinstance(fields[2], int)
                ):
                    entry = (None, (fields[1], fields[2]))
                else:
                    record = _entry_to_record(fields)
                    if record is not None:
                        entry = (record, None)
            if entry is None:
                if line_no != len(lines):
                    raise WalCorruptionError(
                        f"{path}:{line_no}: corrupt log entry mid-file"
                    )
                with open(path, "r+b") as handle:
                    handle.truncate(kept)
                log.truncated = 1
                break
            log.replayed.append(entry)
            log.entries += 1
            kept += len(line.encode("utf-8")) + 1
        log._file = open(path, "a", encoding="utf-8")
        return log

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RecordLog {self.path.name} entries={self.entries}>"
