"""Uplink wire envelopes and the adversarial transport channel.

The uplink speaks two CRC-framed JSON envelopes over an unreliable
datagram channel:

- a **batch** (vehicle -> fleet): ``repro-uplink-batch/1`` carrying an
  ordered slice of spooled wire records, and
- an **ack** (fleet -> vehicle): ``repro-uplink-ack/1`` carrying the
  per-source *cumulative* acknowledgment watermark (every spooled seq
  at or below it is durable fleet-side).

:class:`AdversarialChannel` is the simulated link the chaos harness
(and any test) runs these envelopes through.  It reuses the network
layer's :class:`~repro.network.link.Frame` as the in-flight unit and
:class:`~repro.network.link.JitterModel` for delay sampling, and plays
the fault-injection campaign's role of ground truth: every fault it
injects (drop, duplicate, reorder, corrupt, partition) is drawn from a
seeded ``numpy`` stream, counted in :class:`ChannelStats`, and recorded
as :class:`~repro.faults.base.Injection` entries -- deterministic and
auditable, in the idiom of :mod:`repro.faults.injectors`.

Time is a bare integer step counter supplied by the driver -- no wall
clock anywhere, so every interleaving is replayable.
"""

from __future__ import annotations

import heapq
import json
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.base import Injection
from repro.network.link import Frame, JitterModel
from repro.telemetry.records import TelemetryRecord

#: Envelope schema identifiers.
BATCH_SCHEMA = "repro-uplink-batch/1"
ACK_SCHEMA = "repro-uplink-ack/1"
#: Pipelined multi-record frame: a CRC-framed header line followed by
#: the records' WAL entry lines verbatim (one per line).  Unlike a
#: batch envelope there is no re-serialization: the vehicle sends the
#: exact bytes its WAL holds, and the ingestor appends them verbatim.
FRAME_SCHEMA = "repro-uplink-frame/1"
#: Control-plane epoch distribution rides the same channel: an epoch
#: frame travels the downlink (fleet -> vehicle), its ack the uplink.
EPOCH_FRAME_SCHEMA = "repro-adaptive-frame/1"
EPOCH_ACK_SCHEMA = "repro-adaptive-frame-ack/1"
#: Gateway session control (vehicle <-> fleet gateway handshake).
HELLO_SCHEMA = "repro-gateway-hello/1"
WELCOME_SCHEMA = "repro-gateway-welcome/1"
REJECT_SCHEMA = "repro-gateway-reject/1"


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def encode_envelope(doc: dict) -> str:
    """Serialize *doc* with a leading CRC so corruption is detectable."""
    body = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x}:{body}"


def decode_envelope(payload: str) -> Optional[dict]:
    """Inverse of :func:`encode_envelope`; ``None`` on any damage."""
    if not isinstance(payload, str) or len(payload) < 10 or payload[8] != ":":
        return None
    body = payload[9:]
    try:
        crc = int(payload[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        doc = json.loads(body)
    except ValueError:
        return None
    return doc if isinstance(doc, dict) else None


def encode_batch(
    source: str, batch_id: int, records: Sequence[TelemetryRecord]
) -> str:
    """One uplink batch envelope (records stay in spool order)."""
    return encode_envelope({
        "schema": BATCH_SCHEMA,
        "source": source,
        "batch_id": batch_id,
        "records": [list(record.to_wire()) for record in records],
    })


def decode_batch(doc: dict) -> Optional[List[TelemetryRecord]]:
    """Rebuild the record list of a decoded batch envelope."""
    try:
        return [
            TelemetryRecord.from_wire(tuple(fields))
            for fields in doc["records"]
        ]
    except (KeyError, TypeError, ValueError):
        return None


def encode_ack(
    source: str,
    batch_id: int,
    ack_through: int,
    sack: Optional[Sequence[Sequence[int]]] = None,
    shed: Optional[Sequence[int]] = None,
    window: Optional[int] = None,
) -> str:
    """One cumulative acknowledgment envelope.

    The pipelined protocol rides three additive fields on the same
    ``repro-uplink-ack/1`` schema (absent fields mean stop-and-wait
    semantics, so old acks stay decodable):

    - ``sack`` -- selective-ack ``[lo, hi]`` ranges above the
      cumulative watermark that are already durable fleet-side, so the
      client skips retransmitting them;
    - ``shed`` -- the *cumulative sorted* list of seqs the gateway shed
      under overload (counted rejection, never silent): the client
      must stop offering them and account them in its ledger;
    - ``window`` -- the advertised per-connection receive window in
      records (explicit backpressure: 0 means "stall until the next
      window update").
    """
    doc = {
        "schema": ACK_SCHEMA,
        "source": source,
        "batch_id": batch_id,
        "ack_through": ack_through,
    }
    if sack:
        doc["sack"] = [list(pair) for pair in sack]
    if shed:
        doc["shed"] = list(shed)
    if window is not None:
        doc["window"] = int(window)
    return encode_envelope(doc)


# ----------------------------------------------------------------------
# Pipelined multi-record frames
# ----------------------------------------------------------------------
def encode_frame(
    source: str, frame_id: int, floor: int, entries: Sequence[str]
) -> str:
    """One pipelined uplink frame.

    ``entries`` are CRC-framed WAL lines (from
    :meth:`~repro.telemetry.uplink.wal.WalSpooler.pending_entries`),
    joined verbatim under a CRC-framed header line.  ``floor`` is the
    lowest seq the vehicle may still offer (the spool's
    :attr:`~repro.telemetry.uplink.wal.WalSpooler.floor_seq` at build
    time): the ingestor advances its dedup watermark to ``floor - 1``,
    which is what keeps eviction from stalling the cumulative ack.
    """
    header = json.dumps(
        {"schema": FRAME_SCHEMA, "source": source, "frame_id": frame_id,
         "floor": floor, "count": len(entries)},
        separators=(",", ":"), sort_keys=True,
    )
    crc = zlib.crc32(header.encode("utf-8")) & 0xFFFFFFFF
    if not entries:
        # An empty frame is a pure floor/ack probe; the trailing newline
        # keeps it distinguishable from single-line JSON envelopes.
        return f"{crc:08x}:{header}\n"
    return "\n".join([f"{crc:08x}:{header}", *entries])


def decode_frame(
    payload: str,
) -> Optional[Tuple[dict, List[TelemetryRecord], List[str]]]:
    """``(header, records, raw entry lines)``; ``None`` on any damage.

    A frame is all-or-nothing: a corrupt header, a corrupt record line,
    or a truncated tail (``count`` mismatch) rejects the whole frame --
    the retransmit timer heals it, exactly-once dedup absorbs the
    overlap.
    """
    if not isinstance(payload, str) or "\n" not in payload:
        return None
    lines = payload.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # empty-frame probe: header line + trailing newline
    head = lines[0]
    if len(head) < 10 or head[8] != ":":
        return None
    body = head[9:]
    try:
        crc = int(head[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        header = json.loads(body)
    except ValueError:
        return None
    if (
        not isinstance(header, dict)
        or header.get("schema") != FRAME_SCHEMA
        or not isinstance(header.get("source"), str)
        or not isinstance(header.get("frame_id"), int)
        or not isinstance(header.get("floor"), int)
        or header.get("count") != len(lines) - 1
    ):
        return None
    records: List[TelemetryRecord] = []
    for line in lines[1:]:
        if len(line) < 10 or line[8] != ":":
            return None
        entry_body = line[9:]
        try:
            entry_crc = int(line[:8], 16)
        except ValueError:
            return None
        if zlib.crc32(entry_body.encode("utf-8")) & 0xFFFFFFFF != entry_crc:
            return None
        try:
            fields = json.loads(entry_body)
        except ValueError:
            return None
        if not isinstance(fields, list):
            return None
        try:
            records.append(TelemetryRecord.from_wire(tuple(fields)))
        except ValueError:
            return None
    return header, records, lines[1:]


def encode_hello(source: str, token: str, life: int = 0) -> str:
    """Session-open request (vehicle -> gateway) with the shared secret."""
    return encode_envelope({
        "schema": HELLO_SCHEMA,
        "source": source,
        "token": token,
        "life": life,
    })


def encode_welcome(source: str, window: int) -> str:
    """Session grant carrying the initial receive window (records)."""
    return encode_envelope({
        "schema": WELCOME_SCHEMA,
        "source": source,
        "window": int(window),
    })


def encode_reject(
    source: str, reason: str, retry_after: Optional[int] = None
) -> str:
    """Counted, never-silent refusal.

    ``reason`` is ``auth`` (terminal: bad shared secret), ``hello``
    (no session -- e.g. the gateway crashed and forgot it; re-handshake
    and resume), or ``rate`` (token bucket empty; back off
    ``retry_after`` steps and retransmit).
    """
    doc = {"schema": REJECT_SCHEMA, "source": source, "reason": reason}
    if retry_after is not None:
        doc["retry_after"] = int(retry_after)
    return encode_envelope(doc)


def encode_epoch_frame(vehicle: str, epoch_doc: dict) -> str:
    """One budget-epoch frame (fleet -> vehicle downlink)."""
    return encode_envelope({
        "schema": EPOCH_FRAME_SCHEMA,
        "vehicle": vehicle,
        "epoch": epoch_doc,
    })


def decode_epoch_frame(doc: dict) -> Optional[Tuple[str, dict]]:
    """``(vehicle, epoch_doc)`` of a decoded epoch frame; ``None`` when
    the envelope is not a well-formed epoch frame."""
    if (
        not isinstance(doc, dict)
        or doc.get("schema") != EPOCH_FRAME_SCHEMA
        or not isinstance(doc.get("vehicle"), str)
        or not isinstance(doc.get("epoch"), dict)
    ):
        return None
    return doc["vehicle"], doc["epoch"]


def encode_epoch_ack(vehicle: str, epoch_id: int, status: str) -> str:
    """A vehicle's durable epoch acknowledgment (uplink direction).

    ``status`` is ``applied`` (budgets installed) or ``deferred`` (the
    epoch is durable vehicle-side but application waits for the
    degradation ladder to return to NORMAL).
    """
    return encode_envelope({
        "schema": EPOCH_ACK_SCHEMA,
        "vehicle": vehicle,
        "epoch_id": epoch_id,
        "status": status,
    })


# ----------------------------------------------------------------------
# Fault plan
# ----------------------------------------------------------------------
@dataclass
class ChannelFaultPlan:
    """Adversarial behavior of one channel direction.

    Probabilities are i.i.d. per frame from the channel's seeded RNG;
    ``partitions`` are ``[start, end)`` step windows during which the
    channel delivers *nothing* (both the blunt instrument and the only
    deterministic-by-schedule fault, mirroring the injector catalogue's
    window idiom).
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    corrupt_prob: float = 0.0
    #: Extra delivery delay (steps) a reordered frame suffers.
    reorder_extra: int = 5
    #: Uniform jitter amplitude (steps) added to every delivery.
    jitter_steps: int = 0
    partitions: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "reorder_prob", "corrupt_prob"):
            value = getattr(self, name)
            if not (0.0 <= value < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        for start, end in self.partitions:
            if end <= start:
                raise ValueError(f"empty partition window [{start}, {end})")

    def partitioned(self, step: int) -> bool:
        return any(start <= step < end for start, end in self.partitions)

    @property
    def adversarial(self) -> bool:
        return bool(
            self.drop_prob or self.dup_prob or self.reorder_prob
            or self.corrupt_prob or self.partitions
        )


@dataclass
class ChannelStats:
    """Cumulative per-channel counters (ground truth for the ledger)."""

    offered: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0
    partition_dropped: int = 0
    #: Frames that arrived while the receiving endpoint was crashed.
    dead_letter: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)


# ----------------------------------------------------------------------
# The channel
# ----------------------------------------------------------------------
class AdversarialChannel:
    """A lossy, duplicating, reordering, corrupting datagram channel.

    ``deliver(frame, now)`` is invoked for each frame whose delivery
    step has come (during :meth:`step`).  Determinism: the RNG stream
    is seeded from the channel name (crc32, never ``hash``) xor the
    run seed, matching the load generator's convention.
    """

    def __init__(
        self,
        name: str,
        deliver: Callable[[Frame, int], None],
        plan: Optional[ChannelFaultPlan] = None,
        seed: int = 0,
        base_delay: int = 1,
    ):
        if base_delay < 1:
            raise ValueError("base_delay must be >= 1 step")
        self.name = name
        self.deliver = deliver
        self.plan = plan or ChannelFaultPlan()
        self.base_delay = int(base_delay)
        self.stats = ChannelStats()
        self._rng = np.random.default_rng(
            (seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
        )
        self._jitter = JitterModel(
            "uniform" if self.plan.jitter_steps else "none",
            self.plan.jitter_steps,
        )
        #: (deliver_at, tie-break order, frame) min-heap.
        self._inflight: List[Tuple[int, int, Frame]] = []
        self._order = 0
        self.injections: List[Injection] = [
            Injection(kind="partition", target=name,
                      start_ns=start, end_ns=end)
            for start, end in self.plan.partitions
        ]

    # ------------------------------------------------------------------
    def send(self, payload: str, src: str, dst: str, now: int) -> bool:
        """Offer one datagram; False when the channel ate it."""
        plan = self.plan
        rng = self._rng
        self.stats.offered += 1
        if plan.partitioned(now):
            self.stats.partition_dropped += 1
            return False
        if plan.drop_prob and rng.random() < plan.drop_prob:
            self.stats.dropped += 1
            return False
        if plan.corrupt_prob and rng.random() < plan.corrupt_prob:
            payload = self._corrupt(payload)
            self.stats.corrupted += 1
        delay = self.base_delay + self._jitter.sample(rng)
        if plan.reorder_prob and rng.random() < plan.reorder_prob:
            delay += plan.reorder_extra
            self.stats.reordered += 1
        self._push(payload, src, dst, now + delay)
        if plan.dup_prob and rng.random() < plan.dup_prob:
            self.stats.duplicated += 1
            self._push(payload, src, dst,
                       now + delay + 1 + self._jitter.sample(rng))
        return True

    def _corrupt(self, payload: str) -> str:
        index = int(self._rng.integers(0, len(payload)))
        flip = "#" if payload[index] != "#" else "*"
        return payload[:index] + flip + payload[index + 1:]

    def _push(self, payload: str, src: str, dst: str, at: int) -> None:
        frame = Frame(payload=payload, size_bytes=len(payload),
                      src=src, dst=dst, seq=self._order)
        self._order += 1
        heapq.heappush(self._inflight, (at, frame.seq, frame))

    # ------------------------------------------------------------------
    def step(self, now: int) -> int:
        """Deliver every frame due at or before *now*; returns count."""
        delivered = 0
        inflight = self._inflight
        while inflight and inflight[0][0] <= now:
            _, _, frame = heapq.heappop(inflight)
            self.stats.delivered += 1
            self.deliver(frame, now)
            delivered += 1
        return delivered

    def pending(self) -> int:
        return len(self._inflight)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<AdversarialChannel {self.name} inflight={len(self._inflight)} "
            f"offered={self.stats.offered}>"
        )
