"""Deterministic chaos harness for the store-and-forward uplink.

One scenario = one fault plan per channel direction + a crash schedule.
The driver owns virtual time (a bare step counter), emits each
vehicle's share of the deterministic fleet stream into its WAL spool,
ticks the retrying clients, steps the adversarial channels, and kills /
recovers either endpoint exactly on schedule.  Because every random
draw comes from a seeded stream and no wall clock is read, a scenario
replays byte-identically -- a failing schedule is a repro, not a flake.

The driver is the *omniscient ledger*: component counters die with the
process they live in, so ground truth is kept here, as per-vehicle seq
sets fed by the spool's ``on_evict`` and the client's ``on_acked``
hooks.  At the end of every scenario it asserts:

- **ledger law** -- ``offered == acked + spooled + evicted`` as a
  *disjoint set union* per vehicle (no record lost, none double-lived);
- **digest convergence** -- the fleet store's content digest equals a
  fault-free reference fed the same stream directly (fault classes
  that lose nothing), which also proves no (m,k) miss was
  double-counted or lost, since miss counters are part of the digest;
- **recovery equivalence** -- an ingestor recovered cold from disk
  (checkpoint + WAL replay) produces the same digest as the live one,
  in *every* scenario;
- **counted eviction** -- scenarios that force the disk budget must
  see ``evicted > 0`` (and still balance the ledger).

Run it: ``python -m repro chaos`` (add ``--quick`` in CI).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.telemetry.loadgen import FleetConfig, FleetLoadGenerator
from repro.telemetry.records import TelemetryRecord
from repro.telemetry.service import ServiceConfig, TelemetryService
from repro.telemetry.uplink.client import (
    RetryingUplinkClient,
    UplinkClientConfig,
)
from repro.telemetry.uplink.ingest import UplinkIngestor, store_digest
from repro.telemetry.uplink.transport import (
    AdversarialChannel,
    ChannelFaultPlan,
    decode_envelope,
)
from repro.telemetry.uplink.wal import WalConfig, WalSpooler
from repro.telemetry.uplink.window import (
    WindowedClientConfig,
    WindowedUplinkClient,
)

#: Uplink protocols the harness can drive.
PROTOCOLS = ("windowed", "stop_and_wait")

#: Cumulative per-scenario protocol counters the report may carry.
#: ``load_report`` warns on anything else (additive evolution, same
#: contract as the telemetry schema guards).
KNOWN_PROTOCOL_COUNTERS = frozenset({
    # stop-and-wait client
    "batches_sent", "retries",
    # windowed client
    "frames_sent", "retransmits", "fast_retransmits", "dup_acks",
    "window_stalls", "probes", "floor_probes", "shed_records", "hellos",
    "rate_rejects", "hello_rejects",
    # shared
    "records_sent", "timeouts", "acks", "stale_acks", "circuit_opens",
    # gateway side
    "shed_by_class", "auth_rejects", "session_rejects",
    "window_rejects", "gateway_rate_rejects",
})

#: Client counters folded into the per-scenario protocol section
#: (cumulative only -- gauges like ``in_flight`` stay out).
_CLIENT_COUNTER_KEYS = frozenset({
    "batches_sent", "retries",
    "frames_sent", "retransmits", "fast_retransmits", "dup_acks",
    "window_stalls", "probes", "floor_probes", "shed_records", "hellos",
    "rate_rejects", "hello_rejects",
    "records_sent", "timeouts", "acks", "stale_acks", "circuit_opens",
})


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class ChaosConfig:
    """Fleet shape and driver knobs shared by every scenario."""

    vehicles: int = 3
    frames: int = 40
    seed: int = 2025
    #: Records each live vehicle spools per step.
    emit_per_step: int = 8
    #: Hard cap on driver steps (a scenario that does not converge by
    #: then fails its ``converged`` check).
    max_steps: int = 5000
    #: WAL fsync policy.  Chaos kills *processes*, not power, so
    #: ``never`` keeps sweeps fast without weakening what is tested.
    fsync: str = "never"
    segment_max_records: int = 32
    checkpoint_every: Optional[int] = 4
    #: Which uplink client drives each vehicle: the pipelined windowed
    #: ARQ (default) or the original stop-and-wait (kept as a
    #: differential baseline).
    protocol: str = "windowed"
    #: Fault cadence of the *emitted* stream (0: clean -- chaos usually
    #: injects its own faults in transport; gateway overload scenarios
    #: raise it to get an alert/telemetry/dashboard class mix).
    faulty_every: int = 0

    def __post_init__(self) -> None:
        if self.vehicles < 1:
            raise ValueError("vehicles must be >= 1")
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.emit_per_step < 1:
            raise ValueError("emit_per_step must be >= 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"protocol must be one of {PROTOCOLS}, got {self.protocol!r}"
            )

    def fleet_config(self) -> FleetConfig:
        return FleetConfig(
            vehicles=self.vehicles, frames=self.frames, seed=self.seed,
            faulty_every=self.faulty_every,
        )

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            queue_capacity=1 << 16,
            store=self.fleet_config().store_config(),
        )

    def client_config(self) -> UplinkClientConfig:
        return UplinkClientConfig(
            batch_records=16, ack_timeout=6, backoff_base=2,
            backoff_max=32, failure_threshold=4, cooldown=10,
            seed=self.seed,
        )

    def windowed_client_config(
        self, token: Optional[str] = None
    ) -> WindowedClientConfig:
        return WindowedClientConfig(
            frame_records=16, window_frames=8, ack_timeout=6,
            backoff_base=2, backoff_max=32, failure_threshold=4,
            cooldown=10, dup_ack_threshold=3, seed=self.seed,
            token=token,
        )

    def protocol_client_config(
        self, token: Optional[str] = None
    ) -> Union[UplinkClientConfig, WindowedClientConfig]:
        if self.protocol == "windowed":
            return self.windowed_client_config(token)
        return self.client_config()


@dataclass(frozen=True)
class CrashEvent:
    """Kill one endpoint at ``step``; recover it ``down_for`` later."""

    step: int
    side: str  # "vehicle" | "server"
    vehicle: int = 0  # vehicle index (vehicle side only)
    down_for: int = 8
    torn_tail: bool = False

    def __post_init__(self) -> None:
        if self.side not in ("vehicle", "server"):
            raise ValueError(f"side must be vehicle|server, got {self.side!r}")
        if self.step < 0 or self.down_for < 1:
            raise ValueError("need step >= 0 and down_for >= 1")


@dataclass
class ChaosScenario:
    """One named fault x crash schedule."""

    name: str
    description: str = ""
    up: ChannelFaultPlan = field(default_factory=ChannelFaultPlan)
    down: ChannelFaultPlan = field(default_factory=ChannelFaultPlan)
    crashes: Tuple[CrashEvent, ...] = ()
    #: Vehicle WAL disk budget (None: unbounded).
    wal_max_bytes: Optional[int] = None
    #: Compare the fleet store digest against the fault-free reference
    #: (off only for scenarios that *lose* records by design).
    check_digest: bool = True
    expect_evictions: bool = False

    def make_driver(
        self, config: "ChaosConfig", workdir: Path
    ) -> "ChaosDriver":
        """Driver factory -- gateway scenarios override this."""
        return ChaosDriver(self, config, workdir)


def default_scenarios() -> List[ChaosScenario]:
    """The sweep ``python -m repro chaos`` runs: every fault class,
    three crash points per side, a kitchen-sink mix, and a forced
    disk-budget eviction."""
    return [
        ChaosScenario(
            name="baseline",
            description="clean channels, no crashes (harness sanity)",
        ),
        ChaosScenario(
            name="drop",
            description="15% datagram loss in both directions",
            up=ChannelFaultPlan(drop_prob=0.15),
            down=ChannelFaultPlan(drop_prob=0.15),
        ),
        ChaosScenario(
            name="duplicate",
            description="25% duplication both ways (dedup must absorb)",
            up=ChannelFaultPlan(dup_prob=0.25),
            down=ChannelFaultPlan(dup_prob=0.25),
        ),
        ChaosScenario(
            name="reorder",
            description="heavy reordering + jitter both ways",
            up=ChannelFaultPlan(reorder_prob=0.3, reorder_extra=7,
                                jitter_steps=2),
            down=ChannelFaultPlan(reorder_prob=0.2, jitter_steps=2),
        ),
        ChaosScenario(
            name="corrupt",
            description="bit flips; CRC framing must reject, retry heals",
            up=ChannelFaultPlan(corrupt_prob=0.2),
            down=ChannelFaultPlan(corrupt_prob=0.1),
        ),
        ChaosScenario(
            name="partition",
            description="full two-way partition for 20 steps",
            up=ChannelFaultPlan(partitions=((12, 32),)),
            down=ChannelFaultPlan(partitions=((12, 32),)),
        ),
        ChaosScenario(
            name="vehicle_crash",
            description="vehicle killed at 3 points; one torn WAL tail",
            crashes=(
                CrashEvent(step=6, side="vehicle", vehicle=0),
                CrashEvent(step=18, side="vehicle", vehicle=1,
                           torn_tail=True),
                CrashEvent(step=30, side="vehicle", vehicle=0),
            ),
        ),
        ChaosScenario(
            name="server_crash",
            description="fleet ingestor killed at 3 points",
            crashes=(
                CrashEvent(step=6, side="server"),
                CrashEvent(step=20, side="server"),
                CrashEvent(step=34, side="server"),
            ),
        ),
        ChaosScenario(
            name="chaos_mixed",
            description="drop+dup+reorder+corrupt + partition + crashes",
            up=ChannelFaultPlan(drop_prob=0.08, dup_prob=0.08,
                                reorder_prob=0.1, corrupt_prob=0.05,
                                partitions=((24, 34),)),
            down=ChannelFaultPlan(drop_prob=0.08, dup_prob=0.08,
                                  corrupt_prob=0.05),
            crashes=(
                CrashEvent(step=10, side="vehicle", vehicle=0,
                           torn_tail=True),
                CrashEvent(step=16, side="server"),
            ),
        ),
        ChaosScenario(
            name="eviction",
            description="uplink partitioned while the WAL budget fills:"
                        " oldest records evicted, counted, ledger holds",
            up=ChannelFaultPlan(partitions=((0, 60),)),
            wal_max_bytes=4096,
            check_digest=False,
            expect_evictions=True,
        ),
    ]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Outcome of one scenario run (JSON-friendly)."""

    name: str
    ok: bool = True
    converged_at: Optional[int] = None
    checks: List[dict] = field(default_factory=list)
    ledger: dict = field(default_factory=dict)
    channels: dict = field(default_factory=dict)
    ingest: dict = field(default_factory=dict)
    recoveries: dict = field(default_factory=dict)
    #: Cumulative protocol counters (retransmits, dup-acks, window
    #: stalls, shed-by-class, ...) summed across vehicle lives.
    protocol: dict = field(default_factory=dict)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append({"name": name, "ok": bool(ok), "detail": detail})
        if not ok:
            self.ok = False

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "converged_at": self.converged_at,
            "checks": self.checks,
            "ledger": self.ledger,
            "channels": self.channels,
            "ingest": self.ingest,
            "recoveries": self.recoveries,
            "protocol": self.protocol,
        }

    def render(self) -> str:
        flags = " ".join(
            f"{c['name']}={'OK' if c['ok'] else 'FAIL'}" for c in self.checks
        )
        status = "PASS" if self.ok else "FAIL"
        at = self.converged_at if self.converged_at is not None else "-"
        return f"{status:4s} {self.name:<14s} converged@{at!s:<6} {flags}"


# ----------------------------------------------------------------------
# Driver internals
# ----------------------------------------------------------------------
class _Vehicle:
    """One vehicle endpoint: stream cursor + spool + client + ledger."""

    def __init__(
        self,
        source: str,
        records: List[TelemetryRecord],
        wal_config: WalConfig,
        client_config: Union[UplinkClientConfig, WindowedClientConfig],
        send,
    ):
        self.source = source
        self.records = records
        self.wal_config = wal_config
        self.client_config = client_config
        self._send = send
        self.cursor = 0
        self.alive = True
        self.lives = 0
        self.recoveries = 0
        self.truncated_lines = 0
        # Ground-truth ledger sets (survive endpoint crashes).
        self.offered: Set[int] = set()
        self.acked: Set[int] = set()
        self.evicted: Set[int] = set()
        #: Seqs the gateway announced as shed (released as *shed*, not
        #: acked -- a fourth disjoint ledger bucket).
        self.shed: Set[int] = set()
        #: Protocol counters folded across client lives.
        self.proto: Dict[str, int] = {}
        self.spooler = WalSpooler.open_fresh(wal_config, source)
        self.client = self._make_client()
        self._wire()

    def _make_client(self):
        if isinstance(self.client_config, WindowedClientConfig):
            return WindowedUplinkClient(
                self.spooler, self._send, self.client_config,
                life=self.lives,
            )
        return RetryingUplinkClient(
            self.spooler, self._send, self.client_config, life=self.lives
        )

    def _wire(self) -> None:
        self.spooler.on_evict = lambda lost: self.evicted.update(
            record.seq for record in lost
        )
        self.client.on_acked = lambda released: self.acked.update(
            record.seq for record in released
        )
        if hasattr(self.client, "on_shed"):
            self.client.on_shed = lambda released: self.shed.update(
                record.seq for record in released
            )

    def fold_proto(self) -> None:
        """Fold this client life's cumulative counters into the
        ledger-side totals (called before the client is discarded, and
        once at scenario end for the live client)."""
        for key, value in self.client.stats().items():
            if key in _CLIENT_COUNTER_KEYS and isinstance(value, int):
                self.proto[key] = self.proto.get(key, 0) + value

    # ------------------------------------------------------------------
    def emit(self, budget: int) -> None:
        while budget > 0 and self.cursor < len(self.records):
            record = self.records[self.cursor]
            self.spooler.append(record)
            self.offered.add(record.seq)
            self.cursor += 1
            budget -= 1

    @property
    def drained(self) -> bool:
        return self.cursor >= len(self.records)

    # ------------------------------------------------------------------
    def kill(self, torn_tail: bool) -> None:
        """Simulate process death at a record boundary -- or, with
        *torn_tail*, mid-append: the newest WAL line is half-written."""
        self.alive = False
        self.fold_proto()
        handle = self.spooler._file
        if handle is not None and not handle.closed:
            handle.flush()
            handle.close()
        if torn_tail:
            self._tear_tail()

    def _tear_tail(self) -> None:
        # Only the active segment's newest record can be mid-write, and
        # only a still-pending record may be rewound in the ledger.
        active = self.spooler.segments[-1]
        if not active.records:
            return  # nothing pending in the tail file: clean crash
        raw = active.path.read_bytes()
        lines = raw.split(b"\n")
        if len(lines) < 3:  # header + record + trailing ""
            return
        last = lines[-2]
        kept = raw[: len(raw) - len(last) - 1]
        active.path.write_bytes(kept + last[: len(last) // 2])
        # That append "never happened": rewind the cursor and ledger so
        # the recovered vehicle re-spools the same record.
        torn_seq = self.spooler.last_seq
        self.offered.discard(torn_seq)
        self.cursor -= 1

    def recover(self) -> None:
        self.spooler, report = WalSpooler.recover(
            self.wal_config, self.source
        )
        self.lives += 1
        self.recoveries += 1
        self.truncated_lines += report.truncated_lines
        self.client = self._make_client()
        self._wire()
        self.alive = True

    # ------------------------------------------------------------------
    def ledger_json(self) -> dict:
        spooled = set(self.spooler.pending_seqs())
        union = self.acked | spooled | self.evicted | self.shed
        disjoint = (
            len(self.acked) + len(spooled) + len(self.evicted)
            + len(self.shed) == len(union)
        )
        return {
            "offered": len(self.offered),
            "acked": len(self.acked),
            "spooled": len(spooled),
            "evicted": len(self.evicted),
            "shed": len(self.shed),
            "balanced": self.offered == union and disjoint,
        }


class ChaosDriver:
    """Runs one scenario to convergence and verifies its invariants."""

    def __init__(
        self, scenario: ChaosScenario, config: ChaosConfig, workdir: Path
    ):
        self.scenario = scenario
        self.config = config
        self.workdir = Path(workdir) / scenario.name
        fleet = config.fleet_config()
        all_records = FleetLoadGenerator(fleet).materialize()
        streams: Dict[str, List[TelemetryRecord]] = {
            source: [] for source in fleet.vehicle_ids()
        }
        for record in all_records:
            streams[record.source].append(record)

        # The fault-free reference: the same stream, ingested directly.
        reference = TelemetryService(config.service_config())
        reference.ingest_many(all_records)
        reference.pump()
        self.reference_digest = store_digest(reference)

        self.up = AdversarialChannel(
            "uplink", self._deliver_up, scenario.up, seed=config.seed
        )
        self.down = AdversarialChannel(
            "downlink", self._deliver_down, scenario.down, seed=config.seed
        )
        self.vehicles: List[_Vehicle] = []
        for source in fleet.vehicle_ids():
            wal_config = WalConfig(
                directory=self.workdir / source,
                fsync=config.fsync,
                segment_max_records=config.segment_max_records,
                max_bytes=scenario.wal_max_bytes,
            )
            self.vehicles.append(_Vehicle(
                source, streams[source], wal_config,
                self._vehicle_client_config(source),
                self._make_send(source),
            ))
        self.server_dir = self.workdir / "fleet"
        self.server_up = True
        self.server_recoveries = 0
        self.dead_ingests = 0
        self.dead_acks = 0
        self.ingestor = UplinkIngestor(
            TelemetryService(config.service_config()),
            self.server_dir,
            fsync=config.fsync,
            checkpoint_every=config.checkpoint_every,
        )
        self._now = 0

    # ------------------------------------------------------------------
    def _vehicle_client_config(self, source: str):
        """Per-vehicle client config (gateway driver injects tokens)."""
        return self.config.protocol_client_config()

    def _make_send(self, source: str):
        return lambda payload, now: self.up.send(
            payload, src=source, dst="fleet", now=now
        )

    def _deliver_up(self, frame, now: int) -> None:
        if not self.server_up:
            self.up.stats.dead_letter += 1
            self.dead_ingests += 1
            return
        ack = self.ingestor.handle_payload(frame.payload, now)
        if ack is not None:
            self.down.send(ack, src="fleet", dst=frame.src, now=now)

    def _server_step(self, now: int) -> None:
        """Per-step server work (the gateway driver drains its backlog
        and outbox here; the bare ingestor is purely reactive)."""

    def _server_idle(self) -> bool:
        """Extra convergence predicate for stateful servers."""
        return True

    def _deliver_down(self, frame, now: int) -> None:
        vehicle = next(
            (v for v in self.vehicles if v.source == frame.dst), None
        )
        if vehicle is None or not vehicle.alive:
            self.down.stats.dead_letter += 1
            self.dead_acks += 1
            return
        doc = decode_envelope(frame.payload)
        if doc is not None:
            vehicle.client.on_ack(doc, now)

    # ------------------------------------------------------------------
    def _kill(self, event: CrashEvent) -> bool:
        if event.side == "server":
            if not self.server_up:
                return False
            self.server_up = False
            self.ingestor.close()
            return True
        vehicle = self.vehicles[event.vehicle % len(self.vehicles)]
        if not vehicle.alive:
            return False
        vehicle.kill(event.torn_tail)
        return True

    def _recover(self, event: CrashEvent) -> None:
        if event.side == "server":
            self.ingestor, _ = UplinkIngestor.recover(
                self.server_dir,
                self.config.service_config(),
                fsync=self.config.fsync,
                checkpoint_every=self.config.checkpoint_every,
            )
            self.server_up = True
            self.server_recoveries += 1
        else:
            self.vehicles[event.vehicle % len(self.vehicles)].recover()

    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        result = ScenarioResult(name=self.scenario.name)
        kills = sorted(self.scenario.crashes, key=lambda e: e.step)
        pending_kills = list(kills)
        pending_recoveries: Dict[int, List[CrashEvent]] = {}

        for now in range(self.config.max_steps):
            self._now = now
            for event in pending_recoveries.pop(now, []):
                self._recover(event)
            while pending_kills and pending_kills[0].step == now:
                event = pending_kills.pop(0)
                if self._kill(event):
                    pending_recoveries.setdefault(
                        now + event.down_for, []
                    ).append(event)
            for vehicle in self.vehicles:
                if vehicle.alive:
                    vehicle.emit(self.config.emit_per_step)
            self.up.step(now)
            self._server_step(now)
            self.down.step(now)
            for vehicle in self.vehicles:
                if vehicle.alive:
                    vehicle.client.tick(now)
            if (
                not pending_kills and not pending_recoveries
                and self.server_up
                and all(v.alive and v.drained for v in self.vehicles)
                and all(v.client.idle() for v in self.vehicles)
                and self.up.pending() == 0 and self.down.pending() == 0
                and self._server_idle()
            ):
                result.converged_at = now
                break

        self._finish(result)
        return result

    # ------------------------------------------------------------------
    def _finish(self, result: ScenarioResult) -> None:
        scenario = self.scenario
        result.check(
            "converged", result.converged_at is not None,
            f"not converged within {self.config.max_steps} steps"
            if result.converged_at is None else "",
        )
        result.ledger = {
            v.source: v.ledger_json() for v in self.vehicles
        }
        balanced = all(
            entry["balanced"] for entry in result.ledger.values()
        )
        result.check(
            "ledger", balanced,
            "offered != acked + spooled + evicted (disjoint) somewhere"
            if not balanced else "",
        )
        evicted_total = sum(len(v.evicted) for v in self.vehicles)
        if scenario.expect_evictions:
            result.check(
                "evictions", evicted_total > 0,
                "scenario expected the disk budget to evict records",
            )
        else:
            result.check(
                "no_evictions", evicted_total == 0,
                f"{evicted_total} records evicted without a budget",
            )
        result.check(
            "accounting", self.ingestor.service.accounting_ok(),
            "fleet service accounting law violated",
        )

        live_digest = store_digest(self.ingestor.service)
        if scenario.check_digest:
            result.check(
                "digest", live_digest == self.reference_digest,
                "fleet store diverged from the fault-free reference",
            )
        self.ingestor.close()
        recovered, _ = UplinkIngestor.recover(
            self.server_dir,
            self.config.service_config(),
            fsync=self.config.fsync,
            checkpoint_every=self.config.checkpoint_every,
        )
        recovered_digest = store_digest(recovered.service)
        recovered.close()
        result.check(
            "recovery_digest", recovered_digest == live_digest,
            "cold recovery (checkpoint + WAL replay) != live store",
        )
        for vehicle in self.vehicles:
            vehicle.spooler.close()

        result.channels = {
            "up": self.up.stats.to_json(),
            "down": self.down.stats.to_json(),
        }
        result.ingest = self.ingestor.stats()
        totals: Dict[str, int] = {}
        for vehicle in self.vehicles:
            if vehicle.alive:  # dead clients folded at kill() time
                vehicle.fold_proto()
            for key, value in vehicle.proto.items():
                totals[key] = totals.get(key, 0) + value
        result.protocol = totals
        self._finish_server(result)
        result.recoveries = {
            "server": self.server_recoveries,
            "vehicles": {
                v.source: {
                    "recoveries": v.recoveries,
                    "truncated_lines": v.truncated_lines,
                }
                for v in self.vehicles if v.recoveries
            },
        }

    def _finish_server(self, result: ScenarioResult) -> None:
        """Server-side scenario checks (gateway driver adds its own)."""


# ----------------------------------------------------------------------
# Sweep + CLI
# ----------------------------------------------------------------------
def run_chaos(
    config: Optional[ChaosConfig] = None,
    scenarios: Optional[List[ChaosScenario]] = None,
    workdir: Optional[Path] = None,
) -> dict:
    """Run a scenario sweep; returns the JSON report document."""
    config = config or ChaosConfig()
    scenarios = scenarios if scenarios is not None else default_scenarios()
    results: List[ScenarioResult] = []
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            for scenario in scenarios:
                results.append(
                    scenario.make_driver(config, Path(tmp)).run()
                )
    else:
        for scenario in scenarios:
            results.append(
                scenario.make_driver(config, Path(workdir)).run()
            )
    return {
        "schema": "repro-chaos-report/1",
        "config": {
            "vehicles": config.vehicles,
            "frames": config.frames,
            "seed": config.seed,
            "fsync": config.fsync,
            "protocol": config.protocol,
        },
        "ok": all(r.ok for r in results),
        "scenarios": [r.to_json() for r in results],
    }


def load_report(source: Union[str, Path, dict]) -> dict:
    """Load (and sanity-guard) a ``--report`` JSON document.

    Unknown per-scenario protocol counters warn instead of failing --
    the same additive-evolution contract as the telemetry schema
    guards: a report written by a newer build stays readable."""
    if isinstance(source, dict):
        report = source
    else:
        report = json.loads(Path(source).read_text())
    schema = report.get("schema")
    if schema != "repro-chaos-report/1":
        raise ValueError(f"not a chaos report (schema={schema!r})")
    for entry in report.get("scenarios", []):
        counters = entry.get("protocol", {})
        unknown = sorted(set(counters) - KNOWN_PROTOCOL_COUNTERS)
        if unknown:
            warnings.warn(
                f"chaos report scenario {entry.get('name')!r}: ignoring "
                f"unknown protocol counter(s) {unknown} "
                f"(written by a newer build?)",
                stacklevel=2,
            )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="uplink fault x crash chaos sweep with ledger checks",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small fleet (CI smoke)")
    parser.add_argument("--vehicles", type=int, default=None)
    parser.add_argument("--frames", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", help="run only NAME (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    parser.add_argument("--report", type=Path, default=None,
                        metavar="PATH", help="write the JSON report here")
    parser.add_argument("--dir", type=Path, default=None,
                        metavar="PATH", help="work under PATH (kept)")
    parser.add_argument("--fsync", choices=("always", "rotate", "never"),
                        default="never")
    parser.add_argument("--protocol", choices=PROTOCOLS,
                        default="windowed",
                        help="uplink client protocol (default: windowed)")
    args = parser.parse_args(argv)

    scenarios = default_scenarios()
    if args.protocol == "windowed":
        # Gateway scenarios need the windowed client (frames + sessions).
        from repro.telemetry.gateway.chaos import gateway_scenarios

        scenarios = scenarios + gateway_scenarios()
    if args.list:
        for scenario in scenarios:
            print(f"{scenario.name:<14s} {scenario.description}")
        return 0
    if args.scenario:
        known = {scenario.name for scenario in scenarios}
        unknown = [name for name in args.scenario if name not in known]
        if unknown:
            parser.error(f"unknown scenario(s): {', '.join(unknown)}")
        scenarios = [s for s in scenarios if s.name in set(args.scenario)]

    config = ChaosConfig(
        vehicles=args.vehicles or (2 if args.quick else 3),
        frames=args.frames or (16 if args.quick else 40),
        seed=args.seed,
        fsync=args.fsync,
        protocol=args.protocol,
    )
    report = run_chaos(config, scenarios, workdir=args.dir)
    for entry in report["scenarios"]:
        result = ScenarioResult(
            name=entry["name"], ok=entry["ok"],
            converged_at=entry["converged_at"], checks=entry["checks"],
        )
        print(result.render())
    print(
        f"chaos: {'ALL PASS' if report['ok'] else 'FAILURES'} "
        f"({len(report['scenarios'])} scenarios, "
        f"vehicles={config.vehicles}, frames={config.frames}, "
        f"seed={config.seed})"
    )
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report -> {args.report}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
