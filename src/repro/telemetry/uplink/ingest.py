"""Fleet-side at-least-once ingestion with idempotent deduplication.

The transport is allowed to deliver a batch zero, one, or five times,
in any order.  :class:`UplinkIngestor` turns that into *exactly-once
application* against the :class:`~repro.telemetry.service.TelemetryService`
using one :class:`DedupWatermark` per source: a cumulative watermark
(every seq at or below it has been seen) plus a bounded set of
above-watermark seqs.  Duplicates therefore never double-count (m,k)
misses, and reordered stale batches are absorbed silently.

Durability follows the vehicle-side rule, mirrored: **append before
ack**.  Fresh records and the per-batch watermark marker are written to
an append-only :class:`~repro.telemetry.uplink.wal.RecordLog` and
synced *before* the acknowledgment envelope is produced, so a fleet
crash after an ack can always rebuild the acknowledged state:
:meth:`UplinkIngestor.recover` restores the last atomic checkpoint
(written with the usual ``tmp`` + ``os.replace`` dance) and replays the
log *through the dedup layer*, which makes replay idempotent by
construction -- replaying twice is the same as replaying once.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.telemetry.records import SchemaVersionError, TelemetryRecord
from repro.telemetry.service import ServiceConfig, TelemetryService
from repro.telemetry.uplink.transport import (
    BATCH_SCHEMA,
    decode_batch,
    decode_envelope,
    decode_frame,
    encode_ack,
)
from repro.telemetry.uplink.wal import RecordLog

#: Schema identifier of the durable ingest checkpoint document.
CHECKPOINT_SCHEMA = "repro-uplink-checkpoint/1"


class DedupWatermark:
    """Exactly-once admission over an at-least-once record stream.

    ``watermark`` is cumulative: every seq at or below it was admitted
    (or explicitly skipped via :meth:`advance_to`).  Seqs above it that
    have been seen wait in ``seen`` until the watermark sweeps past
    them, so the structure stays small when delivery is mostly in
    order -- the common case under a stop-and-wait client.
    """

    __slots__ = ("watermark", "seen", "admitted", "duplicates")

    def __init__(self, watermark: int = -1):
        self.watermark = watermark
        self.seen: Set[int] = set()
        self.admitted = 0
        self.duplicates = 0

    def admit(self, seq: int) -> bool:
        """True exactly once per seq, however often it is offered."""
        if seq <= self.watermark or seq in self.seen:
            self.duplicates += 1
            return False
        self.seen.add(seq)
        self.admitted += 1
        self._sweep()
        return True

    def advance_to(self, seq: int) -> None:
        """Declare every seq at or below *seq* settled.

        Sound under the stop-and-wait client: a batch's records arrive
        in spool (seq) order and anything below the batch is either
        already admitted or evicted vehicle-side -- it will never be
        offered again, so collapsing the window loses nothing.

        The pipelined protocol must NOT call this with a frame maximum
        (frames arrive out of order; a lower frame may still be in
        flight).  It calls it with ``floor - 1`` instead, where
        ``floor`` is the lowest seq the vehicle can still offer -- see
        :func:`~repro.telemetry.uplink.transport.encode_frame`.
        """
        if seq <= self.watermark:
            return
        self.watermark = seq
        self.seen = {s for s in self.seen if s > seq}
        # The jump may land directly below out-of-order settled seqs;
        # without this sweep the watermark deadlocks when those seqs
        # are never re-offered (e.g. shed-announced records a windowed
        # client holds back, so the floor stops rising).
        self._sweep()

    def _sweep(self) -> None:
        """Fold contiguous settled seqs into the cumulative watermark."""
        while self.watermark + 1 in self.seen:
            self.watermark += 1
            self.seen.discard(self.watermark)

    def sack_ranges(self, limit: int = 16) -> List[List[int]]:
        """Contiguous ``[lo, hi]`` runs of above-watermark seen seqs.

        These ride acks as selective acknowledgments so the windowed
        client skips retransmitting frames that are already durable.
        Truncated to the *lowest* ``limit`` runs (the ones retransmit
        timers would fire for first); dropping higher runs is safe --
        sack is an optimization, cumulative acks are the truth.
        """
        runs: List[List[int]] = []
        run: Optional[List[int]] = None
        for seq in sorted(self.seen):
            if run is not None and seq == run[1] + 1:
                run[1] = seq
            else:
                if run is not None:
                    runs.append(run)
                    if len(runs) >= limit:
                        return runs
                run = [seq, seq]
        if run is not None:
            runs.append(run)
        return runs

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "watermark": self.watermark,
            "seen": sorted(self.seen),
            "admitted": self.admitted,
            "duplicates": self.duplicates,
        }

    @classmethod
    def from_json(cls, data: dict) -> "DedupWatermark":
        dedup = cls(int(data["watermark"]))
        dedup.seen = set(data.get("seen", ()))
        dedup.admitted = int(data.get("admitted", 0))
        dedup.duplicates = int(data.get("duplicates", 0))
        dedup._sweep()  # normalize checkpoints from pre-sweep versions
        return dedup

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DedupWatermark wm={self.watermark} held={len(self.seen)} "
            f"admitted={self.admitted} dup={self.duplicates}>"
        )


@dataclass
class IngestRecoveryReport:
    """What :meth:`UplinkIngestor.recover` rebuilt from disk."""

    checkpoint_loaded: bool = False
    replayed_records: int = 0
    replayed_fresh: int = 0
    replayed_markers: int = 0
    truncated_lines: int = 0


class UplinkIngestor:
    """Batches in, acks out; durable before every acknowledgment."""

    def __init__(
        self,
        service: TelemetryService,
        directory: Path,
        fsync: str = "rotate",
        checkpoint_every: Optional[int] = 8,
        _log: Optional[RecordLog] = None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 or None")
        self.service = service
        self.directory = Path(directory)
        self.fsync = fsync
        self.checkpoint_every = checkpoint_every
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log = _log if _log is not None else RecordLog(
            self._wal_path(), fsync
        )
        self.dedup: Dict[str, DedupWatermark] = {}
        #: Admitted-but-not-yet-applied records (seq above the dedup
        #: watermark, waiting for lower seqs).  Durable in the log /
        #: checkpoint; bounded by the client's window.
        self._held: Dict[str, Dict[int, TelemetryRecord]] = {}
        #: Called with each batch's *fresh* (deduplicated) records just
        #: after they were applied -- the control plane's observation
        #: tap.  Soft state: recovery replay does not re-fire it.
        self.on_fresh: Optional[Callable[[List[TelemetryRecord]], None]] = None
        #: Called with ``(source, newly settled shed seqs)`` when an
        #: overload ``shed`` hook rejects records (gateway accounting).
        self.on_shed_settled: Optional[Callable[[str, List[int]], None]] = None
        self._since_checkpoint = 0
        # Counters.
        self.payloads = 0
        self.corrupt_payloads = 0
        self.foreign_payloads = 0
        self.batches = 0
        self.frames = 0
        self.records_seen = 0
        self.records_fresh = 0
        self.records_duplicate = 0
        self.records_shed = 0
        self.acks_sent = 0
        self.checkpoints = 0

    # ------------------------------------------------------------------
    def _wal_path(self) -> Path:
        return self.directory / "ingest-wal.log"

    def _checkpoint_path(self) -> Path:
        return self.directory / "checkpoint.json"

    def _dedup(self, source: str) -> DedupWatermark:
        dedup = self.dedup.get(source)
        if dedup is None:
            dedup = self.dedup[source] = DedupWatermark()
        return dedup

    def _held_for(self, source: str) -> Dict[int, TelemetryRecord]:
        held = self._held.get(source)
        if held is None:
            held = self._held[source] = {}
        return held

    def _drain_held(self, source: str) -> List[TelemetryRecord]:
        """Admitted records whose every lower seq is now settled, in
        seq order -- the only order the store ever sees."""
        held = self._held.get(source)
        if not held:
            return []
        watermark = self._dedup(source).watermark
        ready = sorted(seq for seq in held if seq <= watermark)
        return [held.pop(seq) for seq in ready]

    # ------------------------------------------------------------------
    def handle_payload(self, payload: str, now: int = 0) -> Optional[str]:
        """Process one uplink datagram; returns the ack payload or
        ``None`` when the datagram was corrupt / not a batch (counted,
        never silent)."""
        self.payloads += 1
        if isinstance(payload, str) and "\n" in payload:
            # Pipelined multi-record frame (header line + entry lines).
            header = self.ingest_frame(payload, now)
            if header is None:
                return None
            return self.ack_payload(header["source"], header["frame_id"])
        doc = decode_envelope(payload)
        if doc is None:
            self.corrupt_payloads += 1
            return None
        if doc.get("schema") != BATCH_SCHEMA or not isinstance(
            doc.get("source"), str
        ):
            self.foreign_payloads += 1
            return None
        records = decode_batch(doc)
        if records is None:
            self.corrupt_payloads += 1
            return None
        source = doc["source"]
        dedup = self._dedup(source)
        self.batches += 1
        self.records_seen += len(records)

        fresh: List[TelemetryRecord] = []
        for record in records:
            if dedup.admit(record.seq):
                fresh.append(record)
            else:
                self.records_duplicate += 1
        if records:
            batch_max = max(record.seq for record in records)
            dedup.advance_to(batch_max)
        # Durability before acknowledgment: fresh records plus the
        # watermark marker hit the log and are synced first.
        if fresh:
            for record in fresh:
                self.log.append_record(record)
            self.records_fresh += len(fresh)
        if records:
            self.log.append_marker(source, dedup.watermark)
        self.log.sync()
        if fresh:
            self.service.ingest_many(fresh)
            self.service.pump()
            if self.on_fresh is not None:
                self.on_fresh(fresh)
        self._since_checkpoint += 1
        if (
            self.checkpoint_every is not None
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        ack = encode_ack(
            source, int(doc.get("batch_id", -1)), dedup.watermark
        )
        self.acks_sent += 1
        return ack

    # ------------------------------------------------------------------
    def ingest_frame(
        self,
        payload: str,
        now: int = 0,
        sync: bool = True,
        shed: Optional[Callable[[List[TelemetryRecord]], Set[int]]] = None,
    ) -> Optional[dict]:
        """Ingest one pipelined frame; returns its header (or ``None``
        when the frame was damaged -- counted, never silent).

        Frames arrive out of order, so the dedup watermark is advanced
        only to ``floor - 1`` (seqs the vehicle can no longer offer)
        and then through contiguous admission.  ``sync=False`` defers
        log durability to the caller (the gateway coalesces one sync
        per step across many frames) -- the caller MUST sync before
        acknowledging.

        ``shed`` is the gateway's overload hook: it nominates seqs to
        reject by class.  A nominated seq is *settled* in dedup (so the
        cumulative ack sweeps past it) but never applied -- unless an
        earlier copy was already admitted, in which case the nomination
        is void (the record IS durable; shedding it now would lie).
        Newly settled shed seqs are reported through
        :attr:`on_shed_settled` and counted, never silent.
        """
        decoded = decode_frame(payload)
        if decoded is None:
            self.corrupt_payloads += 1
            return None
        header, records, lines = decoded
        source = header["source"]
        dedup = self._dedup(source)
        self.frames += 1
        self.records_seen += len(records)
        floor = header["floor"]
        if floor > 0:
            dedup.advance_to(floor - 1)
        nominated = shed(records) if shed is not None else ()
        held = self._held_for(source)
        newly_shed: List[int] = []
        for record, line in zip(records, lines):
            if record.seq in nominated:
                if dedup.admit(record.seq):
                    newly_shed.append(record.seq)
                    self.records_shed += 1
                else:
                    self.records_duplicate += 1
                continue
            if dedup.admit(record.seq):
                # The line's CRC was verified in decode_frame: relay it
                # to the log verbatim, no re-encode.  Durable now,
                # applied below only once every lower seq is settled --
                # out-of-order frames must not perturb the store's
                # per-source gap/reorder accounting, which is what
                # keeps the pipelined store state byte-identical to
                # stop-and-wait.
                self.log.append_raw(line)
                held[record.seq] = record
                self.records_fresh += 1
            else:
                self.records_duplicate += 1
        if newly_shed and self.on_shed_settled is not None:
            self.on_shed_settled(source, newly_shed)
        self.log.append_marker(source, dedup.watermark)
        if sync:
            self.log.sync()
        fresh = self._drain_held(source)
        if fresh:
            self.service.ingest_many(fresh)
            self.service.pump()
            if self.on_fresh is not None:
                self.on_fresh(fresh)
        self._since_checkpoint += 1
        if (
            self.checkpoint_every is not None
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return header

    def ack_payload(
        self,
        source: str,
        frame_id: int,
        shed: Optional[List[int]] = None,
        window: Optional[int] = None,
    ) -> str:
        """One ack envelope from current dedup state (watermark +
        selective-ack ranges), with optional gateway fields."""
        dedup = self._dedup(source)
        self.acks_sent += 1
        return encode_ack(
            source, frame_id, dedup.watermark,
            sack=dedup.sack_ranges(), shed=shed, window=window,
        )

    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Atomically persist store + dedup state, then truncate the
        log (its contents are now folded into the checkpoint)."""
        self.service.pump()
        doc = {
            "schema": CHECKPOINT_SCHEMA,
            "store": self.service.snapshot(),
            "dedup": {
                source: dedup.to_json()
                for source, dedup in sorted(self.dedup.items())
            },
            # Admitted-but-unapplied records must survive the log
            # truncation below -- they are durable, just waiting for
            # lower seqs before the store may see them.
            "held": {
                source: [
                    list(record.to_wire())
                    for _, record in sorted(held.items())
                ]
                for source, held in sorted(self._held.items()) if held
            },
        }
        path = self._checkpoint_path()
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, separators=(",", ":"), sort_keys=True)
            handle.flush()
            if self.fsync != "never":
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.log.reset()
        self.checkpoints += 1
        self._since_checkpoint = 0

    def close(self) -> None:
        self.log.close()

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: Path,
        service_config: Optional[ServiceConfig] = None,
        fsync: str = "rotate",
        checkpoint_every: Optional[int] = 8,
    ) -> Tuple["UplinkIngestor", IngestRecoveryReport]:
        """Rebuild an ingestor after a crash: checkpoint, then log
        replay *through the dedup layer* (idempotent by construction)."""
        directory = Path(directory)
        report = IngestRecoveryReport()
        service = TelemetryService(service_config)
        dedup: Dict[str, DedupWatermark] = {}
        held: Dict[str, Dict[int, TelemetryRecord]] = {}

        checkpoint_path = directory / "checkpoint.json"
        if checkpoint_path.exists():
            data = json.loads(checkpoint_path.read_text(encoding="utf-8"))
            if data.get("schema") != CHECKPOINT_SCHEMA:
                raise SchemaVersionError(
                    "uplink checkpoint", data.get("schema"), CHECKPOINT_SCHEMA
                )
            service.restore(data["store"])
            dedup = {
                source: DedupWatermark.from_json(state)
                for source, state in data.get("dedup", {}).items()
            }
            for source, rows in data.get("held", {}).items():
                restored = [TelemetryRecord.from_wire(tuple(row))
                            for row in rows]
                held[source] = {r.seq: r for r in restored}
            report.checkpoint_loaded = True

        log = RecordLog.open_existing(directory / "ingest-wal.log", fsync)
        report.truncated_lines = log.truncated
        for record, marker in log.replayed:
            if record is not None:
                report.replayed_records += 1
                source_dedup = dedup.get(record.source)
                if source_dedup is None:
                    source_dedup = dedup[record.source] = DedupWatermark()
                if source_dedup.admit(record.seq):
                    held.setdefault(record.source, {})[record.seq] = record
                    report.replayed_fresh += 1
            elif marker is not None:
                source, seq = marker
                source_dedup = dedup.get(source)
                if source_dedup is None:
                    source_dedup = dedup[source] = DedupWatermark()
                source_dedup.advance_to(seq)
                report.replayed_markers += 1
        # Apply in seq order per source, exactly as the live path
        # would have; what stays held is above the watermark.
        for source, records in sorted(held.items()):
            watermark = dedup[source].watermark
            ready = sorted(seq for seq in records if seq <= watermark)
            if ready:
                service.ingest_many([records.pop(seq) for seq in ready])
        service.pump()

        ingestor = cls(
            service, directory, fsync=fsync,
            checkpoint_every=checkpoint_every, _log=log,
        )
        ingestor.dedup = dedup
        ingestor._held = {s: h for s, h in held.items() if h}
        return ingestor, report

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "payloads": self.payloads,
            "corrupt_payloads": self.corrupt_payloads,
            "foreign_payloads": self.foreign_payloads,
            "batches": self.batches,
            "frames": self.frames,
            "records_seen": self.records_seen,
            "records_fresh": self.records_fresh,
            "records_duplicate": self.records_duplicate,
            "records_shed": self.records_shed,
            "acks_sent": self.acks_sent,
            "checkpoints": self.checkpoints,
            "sources": {
                source: dedup.to_json()
                for source, dedup in sorted(self.dedup.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<UplinkIngestor sources={len(self.dedup)} "
            f"fresh={self.records_fresh} dup={self.records_duplicate}>"
        )


def store_digest(service: TelemetryService) -> str:
    """Canonical content digest of a service's store state.

    Per-source/per-key snapshots are invariant under cross-source
    delivery interleavings that preserve per-source order, so two
    services that applied the same record set converge to one digest.
    """
    service.pump()
    body = json.dumps(service.snapshot(), separators=(",", ":"),
                      sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()
