"""The vehicle-side retrying uplink client.

Stop-and-wait over the spool: the client sends the oldest pending
records as one batch, then waits for the cumulative ack watermark to
cover the batch before sending the next.  That discipline is what makes
the fleet side's dedup watermark sound (a seq at or below the watermark
is *always* a duplicate, see
:class:`~repro.telemetry.uplink.ingest.DedupWatermark`), and it makes
every retry safe: a lost ack just means the same batch is offered
again and deduplicated.

Failure handling, all in deterministic virtual steps:

- **timeout** -- no covering ack within ``ack_timeout`` steps: resend
  after exponential backoff (``backoff_base * 2^(n-1)``, capped) plus
  *deterministic jitter* drawn from the client's seeded RNG stream, so
  a fleet of clients desynchronizes identically on every run;
- **circuit breaker** -- after ``failure_threshold`` consecutive
  timeouts the circuit opens for ``cooldown`` steps (no sends at all),
  then half-opens with a single probe batch; one covering ack closes
  it again.  This keeps a partitioned vehicle from hammering the link.

The client owns no durability: records live in the
:class:`~repro.telemetry.uplink.wal.WalSpooler` until acked, so a
client crash loses nothing -- a fresh client over the recovered spool
resumes exactly where the acks stopped.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.telemetry.records import TelemetryRecord
from repro.telemetry.uplink.transport import ACK_SCHEMA, encode_batch
from repro.telemetry.uplink.wal import WalSpooler


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class UplinkClientConfig:
    """Retry/backoff/breaker policy, in virtual steps."""

    batch_records: int = 64
    ack_timeout: int = 8
    backoff_base: int = 2
    backoff_max: int = 64
    failure_threshold: int = 4
    cooldown: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        if self.ack_timeout < 1:
            raise ValueError("ack_timeout must be >= 1")
        if self.backoff_base < 1 or self.backoff_max < self.backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_max")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")


@dataclass
class _InFlight:
    batch_id: int
    max_seq: int
    deadline: int


class RetryingUplinkClient:
    """Drains a :class:`WalSpooler` through an unreliable send callable."""

    def __init__(
        self,
        spooler: WalSpooler,
        send: Callable[[str, int], bool],
        config: Optional[UplinkClientConfig] = None,
        life: int = 0,
    ):
        self.spooler = spooler
        self.source = spooler.source
        self._send = send
        self.config = config or UplinkClientConfig()
        # Deterministic jitter stream; ``life`` salts restarts so a
        # recovered client doesn't replay its predecessor's jitter.
        self._rng = np.random.default_rng(
            (self.config.seed * 0x9E3779B1
             + zlib.crc32(self.source.encode()) + life) & 0xFFFFFFFF
        )
        self.circuit = CircuitState.CLOSED
        self._reopen_at = 0
        self._in_flight: Optional[_InFlight] = None
        self._next_send_at = 0
        self._next_batch_id = 0
        self._last_lead_seq: Optional[int] = None
        self.consecutive_failures = 0
        #: Called with the records a fresh ack released from the spool.
        self.on_acked: Optional[Callable[[List[TelemetryRecord]], None]] = None
        # Counters.
        self.batches_sent = 0
        self.records_sent = 0
        self.retries = 0
        self.timeouts = 0
        self.acks = 0
        self.stale_acks = 0
        self.circuit_opens = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> bool:
        return self._in_flight is not None

    def idle(self) -> bool:
        """Nothing left to do (spool drained, nothing awaiting ack)."""
        return self._in_flight is None and self.spooler.pending == 0

    # ------------------------------------------------------------------
    def tick(self, now: int) -> bool:
        """Advance the client at step *now*; True when a batch went out."""
        if self.circuit is CircuitState.OPEN:
            if now < self._reopen_at:
                return False
            self.circuit = CircuitState.HALF_OPEN
        flight = self._in_flight
        if flight is not None:
            if now < flight.deadline:
                return False
            self._on_timeout(now)
            return False
        if now < self._next_send_at:
            return False
        batch = self.spooler.pending_records(limit=self.config.batch_records)
        if not batch:
            return False
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        payload = encode_batch(self.source, batch_id, batch)
        self._send(payload, now)
        self.batches_sent += 1
        self.records_sent += len(batch)
        # A resend of the same leading seq is a retry, not fresh offer.
        if batch[0].seq == self._last_lead_seq:
            self.retries += 1
        self._last_lead_seq = batch[0].seq
        self._in_flight = _InFlight(
            batch_id=batch_id,
            max_seq=batch[-1].seq,
            deadline=now + self.config.ack_timeout,
        )
        return True

    def _on_timeout(self, now: int) -> None:
        self.timeouts += 1
        self.consecutive_failures += 1
        self._in_flight = None
        config = self.config
        if (
            self.circuit is CircuitState.HALF_OPEN
            or self.consecutive_failures >= config.failure_threshold
        ):
            self.circuit = CircuitState.OPEN
            self.circuit_opens += 1
            self._reopen_at = now + config.cooldown
            self._next_send_at = self._reopen_at
            return
        exponent = min(self.consecutive_failures - 1, 16)
        delay = min(config.backoff_max, config.backoff_base << exponent)
        jitter = int(self._rng.integers(0, config.backoff_base + 1))
        self._next_send_at = now + delay + jitter

    # ------------------------------------------------------------------
    def on_ack(self, doc: dict, now: int) -> bool:
        """Fold one decoded ack envelope; True when it made progress."""
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != ACK_SCHEMA
            or doc.get("source") != self.source
            or not isinstance(doc.get("ack_through"), int)
        ):
            return False
        self.acks += 1
        ack_through = doc["ack_through"]
        released = self.spooler.ack_through(ack_through)
        if released and self.on_acked is not None:
            self.on_acked(released)
        flight = self._in_flight
        if flight is not None and ack_through >= flight.max_seq:
            # The in-flight batch is durable fleet-side: reset failure
            # state and allow an immediate next send.
            self._in_flight = None
            self.consecutive_failures = 0
            self.circuit = CircuitState.CLOSED
            self._next_send_at = now
            return True
        if not released:
            self.stale_acks += 1
        return bool(released)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "source": self.source,
            "circuit": self.circuit.value,
            "in_flight": self.in_flight,
            "batches_sent": self.batches_sent,
            "records_sent": self.records_sent,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "acks": self.acks,
            "stale_acks": self.stale_acks,
            "circuit_opens": self.circuit_opens,
            "consecutive_failures": self.consecutive_failures,
            "spool": self.spooler.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RetryingUplinkClient {self.source} circuit={self.circuit.value} "
            f"pending={self.spooler.pending}>"
        )
