"""Pipelined sliding-window ARQ over the WAL spooler.

The stop-and-wait client (:mod:`repro.telemetry.uplink.client`) keeps
exactly one batch in flight; round-trip latency therefore bounds
throughput.  :class:`WindowedUplinkClient` keeps up to
``window_frames`` multi-record frames in flight and overlaps the acks,
while preserving the invariants the fleet side depends on:

- **exactly-once ingest** -- every record travels as the exact
  CRC-framed WAL line the spool holds (see
  :func:`~repro.telemetry.uplink.transport.encode_frame`), and every
  retransmission re-offers seqs the dedup watermark absorbs;
- **the ledger law** -- ``offered == acked + spooled + evicted``
  (``+ shed`` when a gateway sheds under overload): records only leave
  the spool through a cumulative ack, an eviction, or a *counted* shed
  announcement;
- **the circuit breaker** -- consecutive timeouts of the *oldest*
  unacked frame (not of every frame in a burst) trip the breaker, and
  while HALF_OPEN exactly one designated probe frame may fly.

Because frames arrive out of order, the stop-and-wait trick of
collapsing the dedup window to the batch maximum is unsound here.
Instead every frame carries a **floor**: the lowest seq the vehicle can
still offer (the spool's oldest pending seq, which evictions raise).
The ingestor advances its watermark to ``floor - 1`` and otherwise only
through contiguous admission, so no undelivered seq is ever declared
settled.

Failure handling mirrors the stop-and-wait client, per frame and in
deterministic virtual steps: per-frame retransmit timers with
exponential backoff and seeded jitter, **fast retransmit** of the
oldest unacked frame after ``dup_ack_threshold`` duplicate cumulative
acks, and selective acks (``sack``) that suppress retransmission of
frames already durable above the watermark.

Gateway sessions are optional: give the config a ``token`` and the
client performs the HELLO/WELCOME handshake first, honors advertised
receive windows (counted ``window_stalls`` when flow control blocks the
pipe -- explicit backpressure, never silent), partitions released
records into acked vs shed along the gateway's cumulative shed
announcements, and re-handshakes when a recovered gateway answers with
a ``hello`` reject.  Without a token the client speaks to a bare
:class:`~repro.telemetry.uplink.ingest.UplinkIngestor` unchanged.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.telemetry.records import TelemetryRecord
from repro.telemetry.uplink.client import CircuitState
from repro.telemetry.uplink.transport import (
    ACK_SCHEMA,
    REJECT_SCHEMA,
    WELCOME_SCHEMA,
    encode_frame,
    encode_hello,
)
from repro.telemetry.uplink.wal import WalSpooler


@dataclass
class WindowedClientConfig:
    """Window/retry/breaker policy, in virtual steps."""

    #: Records per frame (a frame is one datagram).
    frame_records: int = 16
    #: Maximum unacked frames in flight (the ARQ window).
    window_frames: int = 8
    ack_timeout: int = 8
    backoff_base: int = 2
    backoff_max: int = 64
    failure_threshold: int = 4
    cooldown: int = 24
    #: Duplicate cumulative acks before fast retransmit.
    dup_ack_threshold: int = 3
    seed: int = 0
    #: Shared secret for the gateway handshake; ``None`` disables the
    #: session layer entirely (bare-ingestor mode).
    token: Optional[str] = None

    def __post_init__(self) -> None:
        if self.frame_records < 1:
            raise ValueError("frame_records must be >= 1")
        if self.window_frames < 1:
            raise ValueError("window_frames must be >= 1")
        if self.ack_timeout < 1:
            raise ValueError("ack_timeout must be >= 1")
        if self.backoff_base < 1 or self.backoff_max < self.backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_max")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if self.dup_ack_threshold < 1:
            raise ValueError("dup_ack_threshold must be >= 1")


class _Frame:
    """One in-flight seq range ``[lo_seq, hi_seq]``."""

    __slots__ = ("frame_id", "lo_seq", "hi_seq", "count", "deadline",
                 "resend_at", "tries", "flying", "sacked")

    def __init__(self, frame_id: int, lo_seq: int, hi_seq: int, count: int,
                 deadline: int):
        self.frame_id = frame_id
        self.lo_seq = lo_seq
        self.hi_seq = hi_seq
        #: Records in the most recent transmission (flow-control unit).
        self.count = count
        self.deadline = deadline
        #: Earliest step a timed-out frame may retransmit.
        self.resend_at = 0
        self.tries = 1
        #: True while a transmission is out and the deadline is armed.
        self.flying = True
        #: Selectively acknowledged: durable fleet-side, skip
        #: retransmission, release on the cumulative ack.
        self.sacked = False


#: Handshake phases.  ``established`` is the resting state; tokenless
#: clients start (and stay) there.
_HS_ESTABLISHED = "established"
_HS_PENDING = "pending"
_HS_REJECTED = "rejected"


class WindowedUplinkClient:
    """Drains a :class:`WalSpooler` with a pipelined frame window."""

    def __init__(
        self,
        spooler: WalSpooler,
        send: Callable[[str, int], bool],
        config: Optional[WindowedClientConfig] = None,
        life: int = 0,
    ):
        self.spooler = spooler
        self.source = spooler.source
        self._send = send
        self.config = config or WindowedClientConfig()
        self.life = life
        # Deterministic jitter stream, salted by restart life like the
        # stop-and-wait client.
        self._rng = np.random.default_rng(
            (self.config.seed * 0x9E3779B1
             + zlib.crc32(self.source.encode()) + life) & 0xFFFFFFFF
        )
        self.circuit = CircuitState.CLOSED
        #: Breaker transition log: ``(step, from, to, reason)``.
        self.transitions: List[Tuple[int, str, str, str]] = []
        self._reopen_at = 0
        self._probe_frame_id: Optional[int] = None
        self._flight: List[_Frame] = []
        self._next_send_at = 0
        self._next_frame_id = 0
        #: Highest seq ever put into a frame (new frames start above it).
        self._sent_through = spooler.ack_mark
        self.consecutive_failures = 0
        self.handshake = (
            _HS_ESTABLISHED if self.config.token is None else _HS_PENDING
        )
        self._hello_deadline: Optional[int] = None
        self._hello_tries = 0
        #: Advertised receive window in records (None: unlimited).
        self.peer_window: Optional[int] = None
        self._stalled = False
        self._last_ack_value: Optional[int] = None
        self._dup_count = 0
        #: Every seq the gateway ever announced as shed (cumulative).
        self.shed_announced: Set[int] = set()
        #: Called with the records a fresh ack released as *acked*.
        self.on_acked: Optional[Callable[[List[TelemetryRecord]], None]] = None
        #: Called with the records a fresh ack released as *shed*.
        self.on_shed: Optional[Callable[[List[TelemetryRecord]], None]] = None
        # Counters.
        self.frames_sent = 0
        self.records_sent = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.acks = 0
        self.stale_acks = 0
        self.dup_acks = 0
        self.window_stalls = 0
        self.circuit_opens = 0
        self.probes = 0
        self.shed_records = 0
        self.hellos = 0
        self.rate_rejects = 0
        self.hello_rejects = 0
        self.floor_probes = 0
        self.auth_rejected = False

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> bool:
        return bool(self._flight)

    @property
    def inflight_records(self) -> int:
        return sum(frame.count for frame in self._flight)

    def idle(self) -> bool:
        """Nothing left to do (drained, or terminally rejected)."""
        if self.handshake == _HS_REJECTED:
            return True
        return not self._flight and self.spooler.pending == 0

    # ------------------------------------------------------------------
    def _transition(self, now: int, to: CircuitState, reason: str) -> None:
        self.transitions.append(
            (now, self.circuit.value, to.value, reason)
        )
        self.circuit = to

    def _open_circuit(self, now: int, reason: str) -> None:
        self._transition(now, CircuitState.OPEN, reason)
        self.circuit_opens += 1
        self._reopen_at = now + self.config.cooldown
        self._next_send_at = self._reopen_at
        self._probe_frame_id = None
        # Freeze every frame; they resume (probe first) after cooldown.
        for frame in self._flight:
            frame.flying = False
            frame.resend_at = self._reopen_at

    def _oldest_unacked(self) -> Optional[_Frame]:
        for frame in self._flight:
            if not frame.sacked:
                return frame
        return None

    # ------------------------------------------------------------------
    def _entries_for(self, lo: int, hi: int) -> List[Tuple[TelemetryRecord, str]]:
        """Still-pending, not-shed entries of a frame's seq range."""
        out = []
        for record, line in self.spooler.pending_entries(above_seq=lo - 1):
            if record.seq > hi:
                break
            if record.seq not in self.shed_announced:
                out.append((record, line))
        return out

    def _transmit(self, frame: _Frame, now: int) -> None:
        """(Re)send one frame from current spool state.

        Ranges hollowed out by eviction or shed announcements go out as
        empty floor-probe frames -- they still carry the floor, which
        is what lets the ingest watermark sweep past the gap and retire
        the frame.
        """
        entries = self._entries_for(frame.lo_seq, frame.hi_seq)
        payload = encode_frame(
            self.source, frame.frame_id, self.spooler.floor_seq,
            [line for _, line in entries],
        )
        self._send(payload, now)
        frame.count = len(entries)
        frame.deadline = now + self.config.ack_timeout
        frame.flying = True
        self.frames_sent += 1
        self.records_sent += len(entries)

    def _backoff(self, tries: int) -> int:
        config = self.config
        exponent = min(tries - 1, 16)
        delay = min(config.backoff_max, config.backoff_base << exponent)
        jitter = int(self._rng.integers(0, config.backoff_base + 1))
        return delay + jitter

    # ------------------------------------------------------------------
    def tick(self, now: int) -> int:
        """Advance the client at step *now*; returns frames sent."""
        if self.handshake == _HS_REJECTED:
            return 0
        if self.circuit is CircuitState.OPEN:
            if now < self._reopen_at:
                return 0
            self._transition(now, CircuitState.HALF_OPEN,
                             "cooldown elapsed")
        if self.handshake != _HS_ESTABLISHED:
            self._tick_hello(now)
            return 0
        if self.circuit is CircuitState.HALF_OPEN:
            return self._tick_half_open(now)
        return self._tick_closed(now)

    def _tick_hello(self, now: int) -> None:
        if self._hello_deadline is not None and now < self._hello_deadline:
            return
        if now < self._next_send_at:
            return
        self._send(
            encode_hello(self.source, self.config.token or "", self.life),
            now,
        )
        self.hellos += 1
        self._hello_tries += 1
        self._hello_deadline = (
            now + self.config.ack_timeout + self._backoff(self._hello_tries)
        )

    def _tick_half_open(self, now: int) -> int:
        """Exactly one designated probe frame may fly while half-open."""
        probe = None
        if self._probe_frame_id is not None:
            probe = next(
                (f for f in self._flight
                 if f.frame_id == self._probe_frame_id), None,
            )
            if probe is None:  # retired by an ack between ticks
                self._probe_frame_id = None
        if probe is not None:
            if probe.flying and now >= probe.deadline:
                probe.flying = False
                self.timeouts += 1
                self.consecutive_failures += 1
                self._open_circuit(now, "probe timeout")
            return 0
        # Designate: oldest unacked frame, else one fresh frame, else
        # (all in flight sacked) the oldest frame as a floor carrier.
        probe = self._oldest_unacked()
        if probe is None:
            sent = self._send_new_frames(now, limit=1)
            if sent:
                probe = self._flight[-1]
                self._probe_frame_id = probe.frame_id
                self.probes += 1
                return sent
            if not self._flight:
                return 0
            probe = self._flight[0]
            probe.tries += 1
            self._transmit(probe, now)
            self._probe_frame_id = probe.frame_id
            self.probes += 1
            self.floor_probes += 1
            return 1
        probe.tries += 1
        self._transmit(probe, now)
        self._probe_frame_id = probe.frame_id
        self.probes += 1
        self.retransmits += 1
        return 1

    def _tick_closed(self, now: int) -> int:
        sent = 0
        # Timeouts first: only the oldest unacked frame's timeout feeds
        # the breaker -- a windowed burst dying to one partition must
        # count as one failure episode, not ``window_frames`` of them.
        oldest = self._oldest_unacked()
        for frame in self._flight:
            if frame.sacked or not frame.flying:
                continue
            if now < frame.deadline:
                continue
            frame.flying = False
            self.timeouts += 1
            if frame is oldest:
                self.consecutive_failures += 1
                if self.consecutive_failures >= self.config.failure_threshold:
                    self._open_circuit(now, "failure threshold")
                    return sent
            frame.resend_at = now + self._backoff(frame.tries)
        # Retransmissions whose backoff elapsed.
        for frame in self._flight:
            if frame.sacked or frame.flying:
                continue
            if now < frame.resend_at:
                continue
            frame.tries += 1
            self._transmit(frame, now)
            self.retransmits += 1
            sent += 1
        # New frames while the window (and the peer's) has room.
        if now >= self._next_send_at:
            sent += self._send_new_frames(now)
        # Every in-flight frame selectively acked yet the cumulative
        # ack lags: the gap below is a seq the vehicle will never offer
        # (a hole in the seq space, an eviction, a shed hold-back), so
        # nothing above would ever fly again.  Keep re-offering the
        # oldest frame purely as a *floor carrier* -- its floor is what
        # lets the ingest watermark sweep the gap and release the
        # flight.  Counted, never silent.
        if not sent and self._flight and self._oldest_unacked() is None:
            probe = self._flight[0]
            if probe.flying:
                if now >= probe.deadline:
                    probe.flying = False
                    probe.resend_at = now + self._backoff(probe.tries)
            elif now >= probe.resend_at:
                probe.tries += 1
                self._transmit(probe, now)
                self.floor_probes += 1
                sent += 1
        return sent

    def _send_new_frames(self, now: int, limit: Optional[int] = None) -> int:
        sent = 0
        config = self.config
        while len(self._flight) < config.window_frames:
            if limit is not None and sent >= limit:
                break
            take = config.frame_records
            if self.peer_window is not None:
                room = self.peer_window - self.inflight_records
                if room < 1:
                    if not self._stalled:
                        self._stalled = True
                        self.window_stalls += 1
                    break
                take = min(take, room)
            entries = self.spooler.pending_entries(
                limit=take, above_seq=self._sent_through
            )
            entries = [
                (r, ln) for r, ln in entries
                if r.seq not in self.shed_announced
            ]
            if not entries:
                break
            self._stalled = False
            frame = _Frame(
                frame_id=self._next_frame_id,
                lo_seq=entries[0][0].seq,
                hi_seq=entries[-1][0].seq,
                count=len(entries),
                deadline=now + config.ack_timeout,
            )
            self._next_frame_id += 1
            payload = encode_frame(
                self.source, frame.frame_id, self.spooler.floor_seq,
                [line for _, line in entries],
            )
            self._send(payload, now)
            self.frames_sent += 1
            self.records_sent += len(entries)
            self._sent_through = frame.hi_seq
            self._flight.append(frame)
            sent += 1
        return sent

    # ------------------------------------------------------------------
    def on_ack(self, doc: dict, now: int) -> bool:
        """Fold one decoded control envelope; True on progress."""
        if not isinstance(doc, dict) or doc.get("source") != self.source:
            return False
        schema = doc.get("schema")
        if schema == WELCOME_SCHEMA:
            return self._on_welcome(doc, now)
        if schema == REJECT_SCHEMA:
            return self._on_reject(doc, now)
        if schema != ACK_SCHEMA or not isinstance(
            doc.get("ack_through"), int
        ):
            return False
        if self.handshake == _HS_REJECTED:
            return False
        self.acks += 1
        progressed = False
        if isinstance(doc.get("window"), int):
            self.peer_window = doc["window"]
            if self.peer_window > self.inflight_records:
                self._stalled = False
        for seq in doc.get("shed", ()):
            if isinstance(seq, int):
                self.shed_announced.add(seq)
        ack_through = doc["ack_through"]
        released = self.spooler.ack_through(ack_through)
        if released:
            acked = [r for r in released
                     if r.seq not in self.shed_announced]
            shed = [r for r in released if r.seq in self.shed_announced]
            if acked and self.on_acked is not None:
                self.on_acked(acked)
            if shed:
                self.shed_records += len(shed)
                if self.on_shed is not None:
                    self.on_shed(shed)
            progressed = True
        for pair in doc.get("sack", ()):
            if (
                isinstance(pair, (list, tuple)) and len(pair) == 2
                and all(isinstance(x, int) for x in pair)
            ):
                lo, hi = pair
                for frame in self._flight:
                    if (
                        not frame.sacked
                        and lo <= frame.lo_seq and frame.hi_seq <= hi
                    ):
                        frame.sacked = True
        retained = [f for f in self._flight if f.hi_seq > ack_through]
        if len(retained) != len(self._flight):
            self._flight = retained
            progressed = True
        if progressed:
            self.consecutive_failures = 0
            self._dup_count = 0
            self._last_ack_value = ack_through
            if self.circuit is not CircuitState.CLOSED:
                self._transition(now, CircuitState.CLOSED, "ack progress")
                self._probe_frame_id = None
            self._next_send_at = now
            return True
        self.stale_acks += 1
        if ack_through == self._last_ack_value and self._flight:
            self.dup_acks += 1
            self._dup_count += 1
            if self._dup_count >= self.config.dup_ack_threshold:
                self._dup_count = 0
                self._fast_retransmit(now)
        else:
            self._last_ack_value = ack_through
            self._dup_count = 0
        return False

    def _fast_retransmit(self, now: int) -> None:
        """Dup-ack threshold hit: resend the oldest unacked frame now
        (unless the breaker is open or half-open -- probes rule there)."""
        if self.circuit is not CircuitState.CLOSED:
            return
        frame = self._oldest_unacked()
        if frame is None:
            return
        frame.tries += 1
        self._transmit(frame, now)
        self.retransmits += 1
        self.fast_retransmits += 1

    def _on_welcome(self, doc: dict, now: int) -> bool:
        if self.handshake == _HS_REJECTED:
            return False
        self.handshake = _HS_ESTABLISHED
        self._hello_deadline = None
        self._hello_tries = 0
        if isinstance(doc.get("window"), int):
            self.peer_window = doc["window"]
        self._next_send_at = now
        return True

    def _on_reject(self, doc: dict, now: int) -> bool:
        reason = doc.get("reason")
        if reason == "auth":
            self.auth_rejected = True
            self.handshake = _HS_REJECTED
            return True
        if reason == "hello":
            # The gateway forgot the session (crash): re-handshake; the
            # flight is kept, retransmit timers resume after WELCOME.
            self.hello_rejects += 1
            if self.config.token is not None:
                self.handshake = _HS_PENDING
                self._hello_deadline = None
            return True
        if reason == "rate":
            self.rate_rejects += 1
            retry_after = doc.get("retry_after")
            if isinstance(retry_after, int):
                self._next_send_at = max(
                    self._next_send_at, now + retry_after
                )
            return True
        return False

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "source": self.source,
            "circuit": self.circuit.value,
            "handshake": self.handshake,
            "in_flight_frames": len(self._flight),
            "in_flight_records": self.inflight_records,
            "peer_window": self.peer_window,
            "frames_sent": self.frames_sent,
            "records_sent": self.records_sent,
            "retransmits": self.retransmits,
            "fast_retransmits": self.fast_retransmits,
            "timeouts": self.timeouts,
            "acks": self.acks,
            "stale_acks": self.stale_acks,
            "dup_acks": self.dup_acks,
            "window_stalls": self.window_stalls,
            "circuit_opens": self.circuit_opens,
            "probes": self.probes,
            "shed_records": self.shed_records,
            "hellos": self.hellos,
            "rate_rejects": self.rate_rejects,
            "hello_rejects": self.hello_rejects,
            "floor_probes": self.floor_probes,
            "auth_rejected": self.auth_rejected,
            "consecutive_failures": self.consecutive_failures,
            "transitions": [list(t) for t in self.transitions],
            "spool": self.spooler.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<WindowedUplinkClient {self.source} "
            f"circuit={self.circuit.value} flight={len(self._flight)} "
            f"pending={self.spooler.pending}>"
        )
