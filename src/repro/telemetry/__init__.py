"""Fleet telemetry: ingest monitoring verdicts at scale, alert early.

The paper's monitors detect deadline misses *inside* one
vehicle/process.  This package is the fleet-side counterpart a safety
case needs (ROADMAP: "heavy traffic from millions of users"): monitors
publish flat :mod:`~repro.telemetry.records` through emitter hooks, an
ingestion :mod:`~repro.telemetry.pipeline` with bounded queues and
explicit backpressure accounting feeds a sharded
:mod:`~repro.telemetry.store` of incremental (m,k) automata and
streaming latency histograms, and a rules-based
:mod:`~repro.telemetry.alerts` engine raises operator alerts *before*
constraints are violated.  ``python -m repro telemetry`` drives it all
with a deterministic multi-vehicle :mod:`~repro.telemetry.loadgen`.

Getting records from the vehicle to the fleet over a real (lossy,
partitioning, crashing) link is :mod:`repro.telemetry.uplink`: durable
store-and-forward spooling, a retrying transport client, idempotent
at-least-once ingestion, and the ``python -m repro chaos`` sweep that
proves the whole path under adversarial faults.
"""

from repro.telemetry.alerts import (
    Alert,
    AlertEngine,
    AlertLog,
    AlertPolicy,
    AlertSeverity,
    RULE_HEARTBEAT,
    RULE_LATENCY_BUDGET,
    RULE_MK_MARGIN,
    RULE_MK_VIOLATION,
    RULE_QUEUE_DROPS,
    RULE_QUEUE_SATURATION,
    RULE_SEQ_GAP,
)
from repro.telemetry.automata import MKAutomaton
from repro.telemetry.emitter import (
    MonitorTelemetrySink,
    TelemetryEmitter,
    attach_stack,
    replay_stack_records,
    stack_chain_map,
    stack_store_config,
)
from repro.telemetry.histogram import StreamingHistogram
from repro.telemetry.loadgen import (
    FleetConfig,
    FleetLoadGenerator,
    LoadReport,
    run_load,
)
from repro.telemetry.pipeline import IngestQueue
from repro.telemetry.records import (
    RecordKind,
    SchemaVersionError,
    TelemetryRecord,
    WIRE_SCHEMA,
    decode_stream,
    encode_stream,
)
from repro.telemetry.service import ServiceConfig, TelemetryService
from repro.telemetry.store import (
    ChainState,
    ChainStateStore,
    SourceState,
    StoreConfig,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertLog",
    "AlertPolicy",
    "AlertSeverity",
    "ChainState",
    "ChainStateStore",
    "FleetConfig",
    "FleetLoadGenerator",
    "IngestQueue",
    "LoadReport",
    "MKAutomaton",
    "MonitorTelemetrySink",
    "RecordKind",
    "RULE_HEARTBEAT",
    "RULE_LATENCY_BUDGET",
    "RULE_MK_MARGIN",
    "RULE_MK_VIOLATION",
    "RULE_QUEUE_DROPS",
    "RULE_QUEUE_SATURATION",
    "RULE_SEQ_GAP",
    "SchemaVersionError",
    "ServiceConfig",
    "SourceState",
    "StoreConfig",
    "StreamingHistogram",
    "TelemetryEmitter",
    "TelemetryRecord",
    "TelemetryService",
    "WIRE_SCHEMA",
    "attach_stack",
    "decode_stream",
    "encode_stream",
    "replay_stack_records",
    "run_load",
    "stack_chain_map",
    "stack_store_config",
]
