"""The rules-based alerting engine and the alert log.

Rules fire on two paths:

- **apply-path rules** consume the :class:`~repro.telemetry.store.ApplyOutcome`
  facts of every applied record: (m,k) window violated (CRITICAL),
  (m,k) margin exhausted -- one more miss violates -- (WARNING),
  per-segment latency over budget for N consecutive evaluation windows
  (WARNING), sequence gap in a source's record stream (WARNING);
- **poll-path rules** run against a supplied "now": heartbeat gap (a
  source silent longer than its allowance, CRITICAL) and ingest-queue
  saturation / backpressure drops (WARNING / CRITICAL).

Alert identity is deliberately episodic: a margin stays exhausted for
many records but alerts once per episode; a heartbeat gap alerts once
until traffic resumes.  Flooding an operator with one alert per record
is how real deployments train people to ignore pagers.

Timestamps on alerts are *record/poll* timestamps -- data time, not
wall-clock -- so a replayed campaign produces byte-identical alert logs
in serial and parallel runs.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.pipeline import IngestQueue
from repro.telemetry.store import ApplyOutcome, ChainStateStore

#: Rule identifiers (the stable vocabulary of the alert log).
RULE_MK_VIOLATION = "mk_violation"
RULE_MK_MARGIN = "mk_margin_exhausted"
RULE_LATENCY_BUDGET = "latency_over_budget"
RULE_SEQ_GAP = "sequence_gap"
RULE_HEARTBEAT = "heartbeat_gap"
RULE_QUEUE_SATURATION = "queue_saturation"
RULE_QUEUE_DROPS = "queue_drops"


class AlertSeverity(enum.Enum):
    """How loudly an alert should ring."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One raised alert (immutable, JSON-able via :meth:`to_json`)."""

    timestamp_ns: int
    rule: str
    severity: AlertSeverity
    source: str
    chain: str = ""
    segment: str = ""
    activation: int = -1
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "timestamp_ns": self.timestamp_ns,
            "rule": self.rule,
            "severity": self.severity.value,
            "source": self.source,
            "chain": self.chain,
            "segment": self.segment,
            "activation": self.activation,
            "detail": self.detail,
        }

    def render(self) -> str:
        """One human-readable log line."""
        subject = self.chain or self.segment or "-"
        return (
            f"[{self.severity.value.upper():8s}] t={self.timestamp_ns} "
            f"{self.rule} {self.source}/{subject} n={self.activation}: "
            f"{self.detail}"
        )


@dataclass
class AlertLog:
    """Append-only alert record with aggregate views."""

    alerts: List[Alert] = field(default_factory=list)

    def append(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.rule] = counts.get(alert.rule, 0) + 1
        return dict(sorted(counts.items()))

    def count(self, rule: str) -> int:
        return sum(1 for alert in self.alerts if alert.rule == rule)

    def for_rule(self, rule: str) -> List[Alert]:
        return [alert for alert in self.alerts if alert.rule == rule]

    def counts_by_source(self, rule: str) -> Dict[str, int]:
        """Per-source counts of one rule (canary cohorts are compared
        on exactly this view)."""
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            if alert.rule == rule:
                counts[alert.source] = counts.get(alert.source, 0) + 1
        return dict(sorted(counts.items()))

    def to_jsonl(self) -> str:
        """The persisted form: one JSON object per line."""
        return "".join(
            json.dumps(alert.to_json(), separators=(",", ":")) + "\n"
            for alert in self.alerts
        )

    def render(self, limit: Optional[int] = None) -> str:
        shown = self.alerts if limit is None else self.alerts[:limit]
        lines = [alert.render() for alert in shown]
        if limit is not None and len(self.alerts) > limit:
            lines.append(f"... {len(self.alerts) - limit} more alerts")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.alerts)


@dataclass
class AlertPolicy:
    """Poll-path thresholds."""

    #: Max silence before a source's heartbeat-gap alert, ns.
    heartbeat_gap_ns: int = 500_000_000
    #: Queue fill fraction that counts as saturated.
    queue_watermark: float = 0.9

    def __post_init__(self) -> None:
        if self.heartbeat_gap_ns <= 0:
            raise ValueError("heartbeat_gap_ns must be positive")
        if not (0.0 < self.queue_watermark <= 1.0):
            raise ValueError("queue_watermark must be in (0, 1]")


class AlertEngine:
    """Turns store facts and poll observations into logged alerts."""

    def __init__(self, policy: Optional[AlertPolicy] = None):
        self.policy = policy or AlertPolicy()
        self.log = AlertLog()
        #: Queue drops already accounted by previous polls.
        self._drops_alerted = 0
        #: Dedup flag for the saturation episode.
        self._saturated = False

    # ------------------------------------------------------------------
    def observe(self, outcome: ApplyOutcome) -> None:
        """Apply-path rules: evaluate the facts of one applied record."""
        record = outcome.record
        if outcome.seq_gap:
            self.log.append(Alert(
                timestamp_ns=record.timestamp_ns,
                rule=RULE_SEQ_GAP,
                severity=AlertSeverity.WARNING,
                source=record.source,
                chain=record.chain,
                segment=record.segment,
                activation=record.activation,
                detail=(
                    f"{outcome.seq_gap} record(s) missing before seq "
                    f"{record.seq}"
                ),
            ))
        if outcome.mk_violation:
            self.log.append(Alert(
                timestamp_ns=record.timestamp_ns,
                rule=RULE_MK_VIOLATION,
                severity=AlertSeverity.CRITICAL,
                source=record.source,
                chain=record.chain,
                activation=record.activation,
                detail=(
                    f"(m,k) window violated, margin {outcome.margin}"
                ),
            ))
        elif outcome.margin_exhausted_now:
            self.log.append(Alert(
                timestamp_ns=record.timestamp_ns,
                rule=RULE_MK_MARGIN,
                severity=AlertSeverity.WARNING,
                source=record.source,
                chain=record.chain,
                activation=record.activation,
                detail="(m,k) miss budget exhausted: one more miss violates",
            ))
        if outcome.latency_window_over_streak:
            self.log.append(Alert(
                timestamp_ns=record.timestamp_ns,
                rule=RULE_LATENCY_BUDGET,
                severity=AlertSeverity.WARNING,
                source=record.source,
                chain=record.chain,
                segment=record.segment,
                activation=record.activation,
                detail=(
                    f"p95 over budget for "
                    f"{outcome.latency_window_over_streak} consecutive "
                    f"windows"
                ),
            ))

    # ------------------------------------------------------------------
    def poll(
        self,
        now_ns: int,
        store: ChainStateStore,
        queue: Optional[IngestQueue] = None,
    ) -> int:
        """Poll-path rules; returns how many alerts were raised."""
        raised = 0
        for name in sorted(store.sources):
            state = store.sources[name]
            if state.last_seen_ns < 0 or state.gap_open:
                continue
            silence = now_ns - state.last_seen_ns
            if silence > self.policy.heartbeat_gap_ns:
                state.gap_open = True
                self.log.append(Alert(
                    timestamp_ns=now_ns,
                    rule=RULE_HEARTBEAT,
                    severity=AlertSeverity.CRITICAL,
                    source=name,
                    detail=(
                        f"no records for {silence} ns "
                        f"(allowed {self.policy.heartbeat_gap_ns})"
                    ),
                ))
                raised += 1
        if queue is not None:
            new_drops = queue.dropped - self._drops_alerted
            if new_drops > 0:
                self._drops_alerted = queue.dropped
                self.log.append(Alert(
                    timestamp_ns=now_ns,
                    rule=RULE_QUEUE_DROPS,
                    severity=AlertSeverity.CRITICAL,
                    source="ingest",
                    detail=(
                        f"{new_drops} record(s) dropped under backpressure "
                        f"({queue.dropped} total)"
                    ),
                ))
                raised += 1
            if queue.saturation >= self.policy.queue_watermark:
                if not self._saturated:
                    self._saturated = True
                    self.log.append(Alert(
                        timestamp_ns=now_ns,
                        rule=RULE_QUEUE_SATURATION,
                        severity=AlertSeverity.WARNING,
                        source="ingest",
                        detail=(
                            f"queue {queue.depth}/{queue.capacity} "
                            f"({queue.saturation:.0%}) full"
                        ),
                    ))
                    raised += 1
            else:
                self._saturated = False
        return raised
