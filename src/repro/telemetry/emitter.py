"""Emitters: how monitors and stacks publish telemetry records.

Three layers of glue live here:

- :class:`TelemetryEmitter` -- owns one source identity (one
  vehicle/process), stamps the per-source monotonic ``seq`` every
  record carries, and forwards finished records to a sink callable
  (usually ``service.ingest``).
- :class:`MonitorTelemetrySink` -- implements the narrow hook contract
  the core monitors call (``segment_event`` / ``exception_event``; see
  ``telemetry_sinks`` on
  :class:`~repro.core.local_monitor.LocalSegmentRuntime` and
  :class:`~repro.core.remote_monitor.SyncRemoteMonitor`), resolving
  each segment to its chain and feeding the emitter.  The hook is
  guarded at the call sites, so an unmonitored run pays one falsy list
  check per event and nothing else.
- stack-level helpers -- :func:`attach_stack` wires a live
  :class:`~repro.perception.stack.PerceptionStack` (monitors, chain
  runtimes, optionally the degradation manager) to an emitter;
  :func:`replay_stack_records` converts an already-finished run into a
  deterministic record stream, which is how the fault campaign and the
  load generator feed the service.

Timestamps in replayed streams are synthesized from activation index
and recorded latency (data time), never from a wall clock, so replays
are bit-stable across hosts and process placement.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.telemetry.records import RecordKind, TelemetryRecord

Sink = Callable[[TelemetryRecord], object]


def base_segment_name(segment_name: str) -> str:
    """Strip a keyed-monitor suffix: ``s2[front]`` -> ``s2``."""
    index = segment_name.find("[")
    return segment_name if index < 0 else segment_name[:index]


class TelemetryEmitter:
    """Stamps source identity + sequence numbers onto outgoing records."""

    __slots__ = ("source", "sink", "seq", "emitted", "spans")

    def __init__(self, source: str, sink: Sink):
        self.source = source
        self.sink = sink
        self.seq = 0
        self.emitted = 0
        #: Optional SpanRecorder (duck-typed; see repro.tracing.spans):
        #: when set, every emitted record leaves an instant span so the
        #: uplink/ingestion cost shows up in traces next to the chain.
        self.spans = None

    def _emit(self, record: TelemetryRecord) -> None:
        self.sink(record)
        self.emitted += 1
        if self.spans is not None:
            self.spans.instant(
                "telemetry.emit",
                "telemetry",
                ts=record.timestamp_ns,
                kind=record.kind.value,
                seq=record.seq,
            )

    def _next_seq(self) -> int:
        seq = self.seq
        self.seq = seq + 1
        return seq

    # ------------------------------------------------------------------
    def segment(
        self,
        chain: str,
        segment: str,
        activation: int,
        verdict: str,
        latency_ns: Optional[int],
        timestamp_ns: int,
    ) -> None:
        """One segment activation outcome."""
        self._emit(TelemetryRecord(
            kind=RecordKind.SEGMENT, source=self.source, chain=chain,
            segment=segment, activation=activation, latency_ns=latency_ns,
            verdict=verdict, timestamp_ns=timestamp_ns,
            seq=self._next_seq(),
        ))

    def chain(
        self, chain: str, activation: int, violated: bool, timestamp_ns: int
    ) -> None:
        """One finalized chain activation verdict."""
        self._emit(TelemetryRecord(
            kind=RecordKind.CHAIN, source=self.source, chain=chain,
            activation=activation, verdict="miss" if violated else "ok",
            timestamp_ns=timestamp_ns, seq=self._next_seq(),
        ))

    def exception(
        self,
        chain: str,
        segment: str,
        activation: int,
        detection_latency_ns: Optional[int],
        timestamp_ns: int,
    ) -> None:
        """One raised temporal exception (diagnostics stream)."""
        self._emit(TelemetryRecord(
            kind=RecordKind.EXCEPTION, source=self.source, chain=chain,
            segment=segment, activation=activation,
            latency_ns=detection_latency_ns, verdict="exception",
            timestamp_ns=timestamp_ns, seq=self._next_seq(),
        ))

    def mode(self, level: str, reason: str, timestamp_ns: int) -> None:
        """One degradation-mode transition."""
        self._emit(TelemetryRecord(
            kind=RecordKind.MODE, source=self.source, verdict=reason,
            level=level, timestamp_ns=timestamp_ns, seq=self._next_seq(),
        ))

    def heartbeat(self, timestamp_ns: int) -> None:
        """Liveness beacon."""
        self._emit(TelemetryRecord(
            kind=RecordKind.HEARTBEAT, source=self.source,
            timestamp_ns=timestamp_ns, seq=self._next_seq(),
        ))


class MonitorTelemetrySink:
    """The hook object core monitors call (``telemetry_sinks`` entries).

    Parameters
    ----------
    emitter:
        Destination emitter (owns source identity and sequencing).
    chain_of:
        segment name -> chain name; unknown segments map to ``""``.
        Keyed per-instance segment names (``s2[front]``) resolve via
        their base name.
    """

    __slots__ = ("emitter", "chain_of")

    def __init__(
        self, emitter: TelemetryEmitter, chain_of: Optional[Dict[str, str]] = None
    ):
        self.emitter = emitter
        self.chain_of = chain_of or {}

    def _chain(self, segment_name: str) -> str:
        chain = self.chain_of.get(segment_name)
        if chain is None:
            chain = self.chain_of.get(base_segment_name(segment_name), "")
        return chain

    def segment_event(
        self,
        segment_name: str,
        activation: int,
        verdict: str,
        latency_ns: Optional[int],
        timestamp_ns: int,
    ) -> None:
        self.emitter.segment(
            self._chain(segment_name), segment_name, activation, verdict,
            latency_ns, timestamp_ns,
        )

    def exception_event(
        self,
        segment_name: str,
        activation: int,
        detection_latency_ns: Optional[int],
        timestamp_ns: int,
    ) -> None:
        self.emitter.exception(
            self._chain(segment_name), segment_name, activation,
            detection_latency_ns, timestamp_ns,
        )

    def mode_event(self, old: str, new: str, reason: str, timestamp_ns: int) -> None:
        self.emitter.mode(new, reason, timestamp_ns)


# ----------------------------------------------------------------------
# Stack wiring
# ----------------------------------------------------------------------
def stack_chain_map(stack) -> Dict[str, str]:
    """segment name -> chain name for one perception stack.

    A segment shared by several chains (the paper's fused segments) maps
    to the first chain in sorted order -- stable, if arbitrary; chain
    verdict records carry the authoritative per-chain truth.
    """
    chain_of: Dict[str, str] = {}
    for chain_name in sorted(stack.chain_runtimes):
        runtime = stack.chain_runtimes[chain_name]
        for segment in runtime.chain.segments:
            chain_of.setdefault(segment.name, chain_name)
    return chain_of


def attach_stack(stack, emitter: TelemetryEmitter, manager=None) -> MonitorTelemetrySink:
    """Wire a live stack's monitors (and optional degradation manager)
    to *emitter*; returns the installed sink."""
    sink = MonitorTelemetrySink(emitter, stack_chain_map(stack))
    emitter.spans = getattr(stack.sim, "spans", None)
    for runtime in stack.local_runtimes.values():
        runtime.telemetry_sinks.append(sink)
    for monitor in stack.remote_monitors.values():
        monitor.telemetry_sinks.append(sink)
    if manager is not None:
        manager.telemetry_sinks.append(sink)
    return sink


def replay_stack_records(
    stack,
    source: str,
    n_frames: int,
    manager=None,
) -> Iterator[TelemetryRecord]:
    """Deterministic record stream of one finished stack run.

    Emission order (and therefore sequence numbering) is fixed:
    segment outcomes per monitor source in recorded order, sources
    sorted by name; then chain verdicts per activation, chains sorted;
    then degradation-mode transitions.  Timestamps are synthesized as
    ``activation * period + latency`` (data time).
    """
    emitted: List[TelemetryRecord] = []
    emitter = TelemetryEmitter(source, emitted.append)
    chain_of = stack_chain_map(stack)
    period = stack.config.period

    sources = {}
    sources.update(stack.local_runtimes)
    sources.update(stack.remote_monitors)
    for name in sorted(sources):
        monitor = sources[name]
        segment_name = monitor.segment.name
        chain = chain_of.get(
            segment_name, chain_of.get(base_segment_name(segment_name), "")
        )
        for n, latency, outcome in monitor.latencies:
            timestamp = n * period + max(0, latency)
            emitter.segment(
                chain, segment_name, n, outcome.value, latency, timestamp
            )

    for chain_name in sorted(stack.chain_runtimes):
        runtime = stack.chain_runtimes[chain_name]
        report = runtime.finalize(n_frames - 1)
        for n, violated in enumerate(report.misses):
            emitter.chain(chain_name, n, violated, (n + 1) * period)

    if manager is not None:
        for t, old, new, reason in manager.transitions:
            emitter.mode(new.value, reason, t)

    return iter(emitted)


def stack_store_config(stack, n_shards: int = 8):
    """A :class:`~repro.telemetry.store.StoreConfig` matching a stack:
    per-chain (m,k) from the chain definitions, per-segment latency
    budgets from the assigned monitored deadlines (d_mon)."""
    from repro.telemetry.store import StoreConfig

    mk_by_chain = {
        name: (runtime.chain.mk.m, runtime.chain.mk.k)
        for name, runtime in stack.chain_runtimes.items()
    }
    budget_by_segment: Dict[str, int] = {}
    monitors = {}
    monitors.update(stack.local_runtimes)
    monitors.update(stack.remote_monitors)
    for monitor in monitors.values():
        segment = monitor.segment
        if segment.d_mon is not None:
            budget_by_segment[segment.name] = segment.d_mon
    return StoreConfig(
        n_shards=n_shards,
        mk_by_chain=mk_by_chain,
        budget_by_segment=budget_by_segment,
    )
