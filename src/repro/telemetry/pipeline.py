"""Bounded ingestion with explicit backpressure accounting.

The cardinal rule of the service (and the acceptance criterion of the
subsystem) is **zero silent drops**: every record offered to the
pipeline is either applied to the store or shows up in a drop counter.
The queue therefore counts *everything* -- offered, accepted, dropped
(by reason), drained -- and :meth:`IngestQueue.accounting_ok` states
the conservation law that tests and the CLI assert after every run:

    offered == accepted + dropped
    accepted == drained + depth

Capacity is a hard bound (a real deployment maps this to a fixed shm
ring); when full, the *newest* record is dropped and counted, matching
the ring-buffer policy of
:class:`~repro.core.local_monitor.EventRingBuffer`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.telemetry.records import TelemetryRecord

#: Default queue capacity (records).
DEFAULT_CAPACITY = 65536


class IngestQueue:
    """Bounded FIFO between record producers and the store applier."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Deque[TelemetryRecord] = deque()
        self.offered = 0
        self.accepted = 0
        self.drained = 0
        #: Drop counters by reason; "queue_full" is the backpressure drop.
        self.dropped_by_reason: Dict[str, int] = {}
        #: Deepest the queue ever got (saturation diagnostics).
        self.high_watermark = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Records currently buffered."""
        return len(self._items)

    @property
    def dropped(self) -> int:
        """Total records dropped, all reasons."""
        return sum(self.dropped_by_reason.values())

    @property
    def saturation(self) -> float:
        """Current fill fraction in [0, 1]."""
        return len(self._items) / self.capacity

    def accounting_ok(self) -> bool:
        """The no-silent-drop conservation law."""
        return (
            self.offered == self.accepted + self.dropped
            and self.accepted == self.drained + len(self._items)
        )

    # ------------------------------------------------------------------
    def offer(self, record: TelemetryRecord) -> bool:
        """Enqueue *record*; False (and counted) when full."""
        self.offered += 1
        if len(self._items) >= self.capacity:
            self.drop("queue_full")
            return False
        self._items.append(record)
        self.accepted += 1
        depth = len(self._items)
        if depth > self.high_watermark:
            self.high_watermark = depth
        return True

    def offer_many(self, records: List[TelemetryRecord]) -> int:
        """Bulk :meth:`offer`; returns how many were accepted.

        Counter-for-counter equivalent to offering one record at a
        time: the same prefix is accepted, the same suffix is dropped
        as ``queue_full``, and the high watermark lands on the same
        value (offers only deepen the queue, so the final depth is the
        running maximum).
        """
        n = len(records)
        self.offered += n
        items = self._items
        room = self.capacity - len(items)
        if room >= n:
            accepted = n
            items.extend(records)
        else:
            accepted = max(0, room)
            if accepted:
                items.extend(records[:accepted])
            overflow = n - accepted
            self.dropped_by_reason["queue_full"] = (
                self.dropped_by_reason.get("queue_full", 0) + overflow
            )
        self.accepted += accepted
        depth = len(items)
        if depth > self.high_watermark:
            self.high_watermark = depth
        return accepted

    def drop(self, reason: str) -> None:
        """Count one drop under *reason* (offered is counted by offer)."""
        self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1

    def drain(self, max_records: Optional[int] = None) -> List[TelemetryRecord]:
        """Pop up to *max_records* (all, when None) in FIFO order."""
        items = self._items
        if max_records is None or max_records >= len(items):
            batch = list(items)
            items.clear()
        else:
            batch = [items.popleft() for _ in range(max_records)]
        self.drained += len(batch)
        return batch

    def stats(self) -> dict:
        """Counter snapshot (plain types, JSON-able)."""
        return {
            "capacity": self.capacity,
            "offered": self.offered,
            "accepted": self.accepted,
            "drained": self.drained,
            "depth": self.depth,
            "dropped": self.dropped,
            "dropped_by_reason": dict(sorted(self.dropped_by_reason.items())),
            "high_watermark": self.high_watermark,
        }

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<IngestQueue {len(self._items)}/{self.capacity} "
            f"offered={self.offered} dropped={self.dropped}>"
        )
