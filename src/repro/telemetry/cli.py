"""``python -m repro telemetry`` -- fleet ingest load runs and reports.

Examples
--------
Default fleet (8 vehicles, 400 frames), report throughput + alerts::

    python -m repro telemetry

CI smoke: small fleet, persist the alert log, gate on accounting::

    python -m repro telemetry --vehicles 4 --frames 200 \
        --alert-log telemetry-alerts.jsonl

Replay the 11-scenario fault campaign through the service and print
per-scenario alert counts::

    python -m repro telemetry --campaign

The command always verifies the no-silent-drop accounting law and exits
non-zero when it is violated (it never should be) or when a
``--min-throughput`` gate is given and missed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.telemetry.loadgen import FleetConfig, FleetLoadGenerator, run_load
from repro.telemetry.service import ServiceConfig, TelemetryService


def _render_chain_summary(service: TelemetryService, limit: int = 8) -> str:
    rows = service.store.chain_summary()
    lines = [
        f"{'source':14s} {'chain':16s} {'mk':>7s} {'acts':>6s} "
        f"{'miss':>5s} {'viol':>5s} {'margin':>6s}"
    ]
    for row in rows[:limit]:
        lines.append(
            f"{row['source']:14s} {row['chain']:16s} {row['mk']:>7s} "
            f"{row['activations']:>6d} {row['misses']:>5d} "
            f"{row['violations']:>5d} {row['margin']:>6d}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more keys")
    return "\n".join(lines)


def _render_percentiles(service: TelemetryService, limit: int = 6) -> str:
    rows = service.store.segment_percentiles()
    lines = [
        f"{'segment':24s} {'count':>7s} {'p50':>9s} {'p95':>9s} {'p99':>9s}"
    ]
    for name in list(rows)[:limit]:
        p = rows[name]
        lines.append(
            f"{name:24s} {p['count']:>7d} "
            f"{(p['p50'] or 0) / 1e6:>7.2f}ms "
            f"{(p['p95'] or 0) / 1e6:>7.2f}ms "
            f"{(p['p99'] or 0) / 1e6:>7.2f}ms"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more segments")
    return "\n".join(lines)


def _run_campaign_replay() -> int:
    from repro.faults import run_default_campaign

    result = run_default_campaign()
    print("Fault campaign replayed through the telemetry service")
    print(result.render_report())
    print()
    print(f"{'scenario':22s} alerts")
    for scenario in result.scenarios:
        counts = ", ".join(
            f"{rule}={count}"
            for rule, count in sorted(scenario.alert_counts.items())
        ) or "none"
        print(f"{scenario.name:22s} {counts}")
    return 0 if result.passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description="Fleet telemetry service: deterministic load "
        "generation, sharded (m,k) chain-state ingest, alerting.",
    )
    parser.add_argument("--vehicles", type=int, default=8,
                        help="fleet size (default: 8)")
    parser.add_argument("--frames", type=int, default=400,
                        help="frames per vehicle (default: 400)")
    parser.add_argument("--seed", type=int, default=2025,
                        help="fleet stream seed (default: 2025)")
    parser.add_argument("--queue-capacity", type=int, default=65536,
                        help="ingest queue capacity (default: 65536)")
    parser.add_argument("--batch", type=int, default=2048,
                        help="ingest batch size (default: 2048)")
    parser.add_argument("--alert-log", type=Path, default=None, metavar="PATH",
                        help="write the alert log as JSONL to PATH")
    parser.add_argument("--snapshot", type=Path, default=None, metavar="PATH",
                        help="write a store snapshot to PATH and verify "
                        "a restore round-trip")
    parser.add_argument("--min-throughput", type=float, default=0.0,
                        metavar="RPS",
                        help="exit non-zero below this ingest rate "
                        "(default: no gate)")
    parser.add_argument("--campaign", action="store_true",
                        help="replay the fault campaign through the "
                        "service instead of the synthetic fleet")
    args = parser.parse_args(argv)

    if args.campaign:
        return _run_campaign_replay()

    fleet = FleetConfig(
        vehicles=args.vehicles, frames=args.frames, seed=args.seed
    )
    generator = FleetLoadGenerator(fleet)
    service = TelemetryService(ServiceConfig(
        queue_capacity=args.queue_capacity,
        store=fleet.store_config(),
    ))
    report = run_load(service, generator, batch_size=args.batch)

    print(f"Fleet load: {fleet.vehicles} vehicles x {fleet.frames} frames, "
          f"seed {fleet.seed}")
    print(report.render())
    print()
    print(_render_chain_summary(service))
    print()
    print(_render_percentiles(service))

    if args.alert_log is not None:
        args.alert_log.parent.mkdir(parents=True, exist_ok=True)
        args.alert_log.write_text(service.alert_log.to_jsonl())
        print(f"\nwrote {len(service.alert_log)} alerts to {args.alert_log}")
    if args.snapshot is not None:
        snapshot = service.snapshot()
        args.snapshot.parent.mkdir(parents=True, exist_ok=True)
        args.snapshot.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        from repro.telemetry.store import ChainStateStore

        restored = ChainStateStore.restore(
            json.loads(args.snapshot.read_text())
        )
        identical = restored.snapshot() == snapshot
        print(f"wrote snapshot to {args.snapshot} "
              f"(restore round-trip {'OK' if identical else 'MISMATCH'})")
        if not identical:
            return 1

    failed = False
    if not report.accounting_ok:
        print("\nERROR: accounting violated -- a record was neither "
              "applied nor counted as dropped", file=sys.stderr)
        failed = True
    if args.min_throughput and report.records_per_s < args.min_throughput:
        print(f"\nERROR: throughput {report.records_per_s:,.0f} records/s "
              f"below the {args.min_throughput:,.0f} gate", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
