"""The sharded in-memory chain-state store.

State is keyed by ``(source, chain)`` -- one entry per monitored event
chain per vehicle/process -- and partitioned over ``n_shards`` hash
shards.  Sharding uses ``zlib.crc32`` (stable across interpreters and
runs, unlike ``hash``), so a snapshot taken on one host restores onto
another with identical placement, and a future multi-worker deployment
can assign shards to workers without rehashing.

Per key the store maintains exactly the paper-shaped online state, none
of which grows with the record count:

- an incremental (m,k) window automaton
  (:class:`~repro.telemetry.automata.MKAutomaton`) over chain verdicts;
- one streaming latency histogram per segment
  (:class:`~repro.telemetry.histogram.StreamingHistogram`: p50/p95/p99
  without raw samples);
- latency-over-budget evaluation windows (fixed-size record windows;
  a window is "over" when more than 5% of its samples exceeded the
  segment budget -- i.e. its exact windowed p95 is over budget);
- verdict counters.

Per source the store tracks heartbeat (last-seen timestamp), sequence
continuity (gaps/reorders from the per-source ``seq`` field) and the
last reported degradation level.

:meth:`ChainStateStore.apply` returns an :class:`ApplyOutcome` of plain
facts; converting facts into alerts is the
:class:`~repro.telemetry.alerts.AlertEngine`'s business.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.weakly_hard import MKConstraint
from repro.telemetry.automata import MKAutomaton
from repro.telemetry.batch import RecordBatch
from repro.telemetry.histogram import DEFAULT_ALPHA, StreamingHistogram
from repro.telemetry.records import (
    RecordKind,
    SchemaVersionError,
    TelemetryRecord,
)

#: Snapshot schema identifier.
SNAPSHOT_SCHEMA = "repro-telemetry-store/1"

#: Fraction of a latency window allowed over budget before the window
#: counts as "over" (5% == the windowed p95 crossed the budget).
WINDOW_OVER_FRACTION = 0.05

#: Per-source cap on tracked open-gap sequence numbers.  A late record
#: filling a tracked gap heals it (``seq_gaps`` decremented, counted as
#: a reorder); gaps evicted from the window stay counted forever and a
#: very late filler is then classed as a duplicate -- bounded memory
#: wins over perfect attribution at that distance.
MAX_TRACKED_MISSING = 4096


def _warn_unknown_fields(context: str, data: dict, known: frozenset) -> None:
    """Tolerate additive schema evolution: warn, never fail."""
    unknown = sorted(set(data) - set(known))
    if unknown:
        warnings.warn(
            f"{context}: ignoring unknown field(s) {unknown} "
            f"(written by a newer build?)",
            stacklevel=3,
        )


@dataclass
class StoreConfig:
    """Shape and policy knobs of the store."""

    n_shards: int = 8
    #: Relative accuracy of the latency sketches.
    alpha: float = DEFAULT_ALPHA
    #: (m,k) applied to chains without an explicit entry.
    default_mk: Tuple[int, int] = (2, 10)
    #: chain name -> (m, k).
    mk_by_chain: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: segment name -> latency budget in ns (over-budget rule input).
    budget_by_segment: Dict[str, int] = field(default_factory=dict)
    #: Budget for segments without an explicit entry (None = unchecked).
    default_budget_ns: Optional[int] = None
    #: Records per latency evaluation window.
    window_records: int = 20
    #: Consecutive over-budget windows before the latency rule trips.
    latency_windows: int = 3

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.window_records < 1:
            raise ValueError("window_records must be >= 1")
        if self.latency_windows < 1:
            raise ValueError("latency_windows must be >= 1")
        MKConstraint(*self.default_mk)  # validate eagerly
        for chain, mk in self.mk_by_chain.items():
            MKConstraint(*mk)

    def mk_for(self, chain: str) -> Tuple[int, int]:
        return self.mk_by_chain.get(chain, self.default_mk)

    def budget_for(self, segment: str) -> Optional[int]:
        return self.budget_by_segment.get(segment, self.default_budget_ns)

    def to_json(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "alpha": self.alpha,
            "default_mk": list(self.default_mk),
            "mk_by_chain": {c: list(mk) for c, mk in sorted(self.mk_by_chain.items())},
            "budget_by_segment": dict(sorted(self.budget_by_segment.items())),
            "default_budget_ns": self.default_budget_ns,
            "window_records": self.window_records,
            "latency_windows": self.latency_windows,
        }

    _KNOWN_FIELDS = frozenset((
        "n_shards", "alpha", "default_mk", "mk_by_chain",
        "budget_by_segment", "default_budget_ns", "window_records",
        "latency_windows",
    ))

    @classmethod
    def from_json(cls, data: dict) -> "StoreConfig":
        _warn_unknown_fields("store config", data, cls._KNOWN_FIELDS)
        return cls(
            n_shards=data["n_shards"],
            alpha=data["alpha"],
            default_mk=tuple(data["default_mk"]),
            mk_by_chain={c: tuple(mk) for c, mk in data["mk_by_chain"].items()},
            budget_by_segment=dict(data["budget_by_segment"]),
            default_budget_ns=data["default_budget_ns"],
            window_records=data["window_records"],
            latency_windows=data["latency_windows"],
        )


class _SegmentState:
    """Per-(key, segment) latency state."""

    __slots__ = (
        "hist", "budget_ns", "win_records", "win_over",
        "consec_over_windows", "verdicts",
    )

    def __init__(self, alpha: float, budget_ns: Optional[int]):
        self.hist = StreamingHistogram(alpha=alpha)
        self.budget_ns = budget_ns
        #: Samples seen / over budget in the currently filling window.
        self.win_records = 0
        self.win_over = 0
        #: Consecutive closed windows whose p95 was over budget.
        self.consec_over_windows = 0
        self.verdicts: Dict[str, int] = {}

    def to_json(self) -> dict:
        return {
            "hist": self.hist.snapshot(),
            "budget_ns": self.budget_ns,
            "win_records": self.win_records,
            "win_over": self.win_over,
            "consec_over_windows": self.consec_over_windows,
            "verdicts": dict(sorted(self.verdicts.items())),
        }

    _KNOWN_FIELDS = frozenset((
        "hist", "budget_ns", "win_records", "win_over",
        "consec_over_windows", "verdicts",
    ))

    @classmethod
    def from_json(cls, data: dict, alpha: float) -> "_SegmentState":
        _warn_unknown_fields("segment state", data, cls._KNOWN_FIELDS)
        state = cls(alpha=alpha, budget_ns=data["budget_ns"])
        state.hist = StreamingHistogram.restore(data["hist"])
        state.win_records = data["win_records"]
        state.win_over = data["win_over"]
        state.consec_over_windows = data["consec_over_windows"]
        state.verdicts = dict(data["verdicts"])
        return state


class ChainState:
    """Everything the store knows about one (source, chain) key."""

    __slots__ = (
        "automaton", "segments", "records", "last_activation",
        "margin_exhausted",
    )

    def __init__(self, mk: Tuple[int, int]):
        self.automaton = MKAutomaton(mk)
        self.segments: Dict[str, _SegmentState] = {}
        self.records = 0
        self.last_activation = -1
        #: Dedup flag for the margin-exhausted alert (reset on recovery).
        self.margin_exhausted = False

    def to_json(self) -> dict:
        return {
            "automaton": self.automaton.snapshot(),
            "segments": {
                name: self.segments[name].to_json()
                for name in sorted(self.segments)
            },
            "records": self.records,
            "last_activation": self.last_activation,
            "margin_exhausted": self.margin_exhausted,
        }

    _KNOWN_FIELDS = frozenset((
        "automaton", "segments", "records", "last_activation",
        "margin_exhausted",
    ))

    @classmethod
    def from_json(cls, data: dict, alpha: float) -> "ChainState":
        _warn_unknown_fields("chain state", data, cls._KNOWN_FIELDS)
        automaton = MKAutomaton.restore(data["automaton"])
        state = cls((automaton.m, automaton.k))
        state.automaton = automaton
        state.segments = {
            name: _SegmentState.from_json(seg, alpha)
            for name, seg in data["segments"].items()
        }
        state.records = data["records"]
        state.last_activation = data["last_activation"]
        state.margin_exhausted = data["margin_exhausted"]
        return state


class SourceState:
    """Per-source liveness and stream-continuity state.

    Sequence continuity distinguishes three outcomes for an arriving
    ``seq`` (the lossy uplink makes all three reachable):

    - ahead of ``last_seq``: any skipped numbers open a *gap* (tracked
      in ``missing``, bounded by :data:`MAX_TRACKED_MISSING`);
    - filling a tracked gap: a late *reorder* -- the gap heals
      (``seq_gaps`` decremented), it was delay, not loss;
    - anything else at-or-below ``last_seq``: a *duplicate* -- counted,
      and it must never inflate gap or reorder statistics.
    """

    __slots__ = (
        "records", "last_seen_ns", "last_seq", "seq_gaps", "reorders",
        "duplicates", "missing", "level", "gap_open",
    )

    def __init__(self):
        self.records = 0
        self.last_seen_ns = -1
        self.last_seq = -1
        self.seq_gaps = 0
        self.reorders = 0
        self.duplicates = 0
        #: Open-gap seqs still healable by a late arrival (bounded).
        self.missing: set = set()
        self.level = ""
        #: Dedup flag for the heartbeat-gap alert (reset on traffic).
        self.gap_open = False

    def note_missing(self, lo: int, hi: int) -> None:
        """Track ``[lo, hi)`` as open gaps, evicting the oldest beyond
        the cap (evicted gaps stay counted, they just cannot heal)."""
        if hi - lo > MAX_TRACKED_MISSING:
            lo = hi - MAX_TRACKED_MISSING
        missing = self.missing
        missing.update(range(lo, hi))
        overflow = len(missing) - MAX_TRACKED_MISSING
        if overflow > 0:
            for seq in sorted(missing)[:overflow]:
                missing.discard(seq)

    def to_json(self) -> dict:
        return {
            "records": self.records,
            "last_seen_ns": self.last_seen_ns,
            "last_seq": self.last_seq,
            "seq_gaps": self.seq_gaps,
            "reorders": self.reorders,
            "duplicates": self.duplicates,
            "missing": sorted(self.missing),
            "level": self.level,
            "gap_open": self.gap_open,
        }

    _KNOWN_FIELDS = frozenset((
        "records", "last_seen_ns", "last_seq", "seq_gaps", "reorders",
        "duplicates", "missing", "level", "gap_open",
    ))

    @classmethod
    def from_json(cls, data: dict) -> "SourceState":
        _warn_unknown_fields("source state", data, cls._KNOWN_FIELDS)
        state = cls()
        state.records = data["records"]
        state.last_seen_ns = data["last_seen_ns"]
        state.last_seq = data["last_seq"]
        state.seq_gaps = data["seq_gaps"]
        state.reorders = data["reorders"]
        # Additive fields: snapshots from older builds omit them.
        state.duplicates = data.get("duplicates", 0)
        state.missing = set(data.get("missing", ()))
        state.level = data["level"]
        state.gap_open = data["gap_open"]
        return state


class ApplyOutcome:
    """Plain facts one applied record produced (alert-engine input)."""

    __slots__ = (
        "record", "mk_violation", "margin", "margin_exhausted_now",
        "latency_window_over_streak", "seq_gap", "duplicate",
    )

    def __init__(self, record: TelemetryRecord):
        self.record = record
        #: The chain's (m,k) window just violated.
        self.mk_violation = False
        #: Remaining miss budget after this record (None: no automaton).
        self.margin: Optional[int] = None
        #: The margin just reached zero (first time this episode).
        self.margin_exhausted_now = False
        #: N consecutive over-budget windows just completed (the streak
        #: length, reported only at exact multiples of the threshold).
        self.latency_window_over_streak = 0
        #: Sequence numbers skipped right before this record.
        self.seq_gap = 0
        #: The record's seq was already seen for this source.
        self.duplicate = False


class ChainStateStore:
    """Sharded (source, chain) -> :class:`ChainState` map."""

    def __init__(self, config: Optional[StoreConfig] = None):
        self.config = config or StoreConfig()
        self.shards: List[Dict[Tuple[str, str], ChainState]] = [
            {} for _ in range(self.config.n_shards)
        ]
        self.sources: Dict[str, SourceState] = {}
        self.applied = 0

    # ------------------------------------------------------------------
    @staticmethod
    def shard_index(source: str, chain: str, n_shards: int) -> int:
        """Deterministic shard placement (crc32, not ``hash``)."""
        return zlib.crc32(f"{source}\x1f{chain}".encode()) % n_shards

    def chain_state(self, source: str, chain: str) -> ChainState:
        """The state of one key, created on first touch."""
        shard = self.shards[self.shard_index(source, chain, self.config.n_shards)]
        key = (source, chain)
        state = shard.get(key)
        if state is None:
            state = ChainState(self.config.mk_for(chain))
            shard[key] = state
        return state

    def source_state(self, source: str) -> SourceState:
        state = self.sources.get(source)
        if state is None:
            state = SourceState()
            self.sources[source] = state
        return state

    def keys(self) -> List[Tuple[str, str]]:
        """All (source, chain) keys, sorted."""
        return sorted(key for shard in self.shards for key in shard)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # ------------------------------------------------------------------
    def apply(self, record: TelemetryRecord) -> ApplyOutcome:
        """Fold one record into the store; return the produced facts."""
        outcome = ApplyOutcome(record)
        config = self.config
        self.applied += 1

        source = self.source_state(record.source)
        source.records += 1
        if record.timestamp_ns > source.last_seen_ns:
            source.last_seen_ns = record.timestamp_ns
        source.gap_open = False
        seq = record.seq
        if seq > source.last_seq:
            # Emitter seqs start at 0, so skipped numbers -- including
            # before the first record we ever saw -- open a gap.
            if seq > source.last_seq + 1:
                outcome.seq_gap = seq - source.last_seq - 1
                source.seq_gaps += outcome.seq_gap
                source.note_missing(source.last_seq + 1, seq)
            source.last_seq = seq
        elif seq in source.missing:
            # A late arrival filled a counted gap: it was reordering,
            # not loss -- heal the gap count.
            source.missing.discard(seq)
            source.seq_gaps -= 1
            source.reorders += 1
        else:
            source.duplicates += 1
            outcome.duplicate = True

        kind = record.kind
        if kind is RecordKind.SEGMENT:
            state = self.chain_state(record.source, record.chain)
            state.records += 1
            if record.activation > state.last_activation:
                state.last_activation = record.activation
            seg = state.segments.get(record.segment)
            if seg is None:
                seg = _SegmentState(
                    alpha=config.alpha,
                    budget_ns=config.budget_for(record.segment),
                )
                state.segments[record.segment] = seg
            verdict = record.verdict
            seg.verdicts[verdict] = seg.verdicts.get(verdict, 0) + 1
            latency = record.latency_ns
            if latency is not None:
                seg.hist.add(latency)
                if seg.budget_ns is not None:
                    seg.win_records += 1
                    if latency > seg.budget_ns:
                        seg.win_over += 1
                    if seg.win_records >= config.window_records:
                        over = (
                            seg.win_over
                            > WINDOW_OVER_FRACTION * seg.win_records
                        )
                        seg.win_records = 0
                        seg.win_over = 0
                        if over:
                            seg.consec_over_windows += 1
                            if (seg.consec_over_windows
                                    % config.latency_windows == 0):
                                outcome.latency_window_over_streak = (
                                    seg.consec_over_windows
                                )
                        else:
                            seg.consec_over_windows = 0
        elif kind is RecordKind.CHAIN:
            state = self.chain_state(record.source, record.chain)
            state.records += 1
            if record.activation > state.last_activation:
                state.last_activation = record.activation
            automaton = state.automaton
            violated = automaton.record(record.verdict == "miss")
            outcome.margin = automaton.margin
            if violated:
                outcome.mk_violation = True
                state.margin_exhausted = True
            elif automaton.margin <= 0:
                if not state.margin_exhausted:
                    state.margin_exhausted = True
                    outcome.margin_exhausted_now = True
            else:
                state.margin_exhausted = False
        elif kind is RecordKind.MODE:
            source.level = record.level
        # EXCEPTION / HEARTBEAT only refresh the source state above.
        return outcome

    # ------------------------------------------------------------------
    def apply_batch(self, batch: RecordBatch) -> List[ApplyOutcome]:
        """Fold a columnar batch into the store; return *flagged* outcomes.

        State-for-state equivalent to calling :meth:`apply` on every
        row in order (``tests/test_batched_store.py`` and the
        differential suite prove byte-identical snapshots), but records
        are grouped by key so per-record constants are paid per group:

        1. one in-order pass runs the per-source sequence/liveness
           logic (inherently serial) and buckets chain/segment work;
        2. CHAIN groups run through the vectorized
           :meth:`~repro.telemetry.automata.MKAutomaton.record_many`;
        3. SEGMENT groups update verdict counters, windows, and
           histograms with column locals bound once per group.

        Only records whose facts the alert engine acts on (sequence
        gap, (m,k) violation, margin exhausted, latency-window streak)
        materialize an :class:`ApplyOutcome`; they are returned in
        record order, so feeding them to
        :meth:`~repro.telemetry.alerts.AlertEngine.observe` yields a
        byte-identical alert log -- ``observe`` is a no-op for every
        unflagged record.
        """
        n = len(batch)
        if n == 0:
            return []
        config = self.config
        self.applied += n
        kinds = batch.kinds
        sources_col = batch.sources
        chains_col = batch.chains
        segments_col = batch.segments
        activations = batch.activations
        latencies = batch.latencies
        verdicts = batch.verdicts
        levels = batch.levels
        timestamps = batch.timestamps
        seqs = batch.seqs

        flagged: Dict[int, ApplyOutcome] = {}

        def outcome_at(i: int) -> ApplyOutcome:
            out = flagged.get(i)
            if out is None:
                out = ApplyOutcome(batch.record(i))
                flagged[i] = out
            return out

        # Pass 1: per-source state strictly in record order, grouping
        # chain/segment work by key as we go.
        SEGMENT = RecordKind.SEGMENT
        CHAIN = RecordKind.CHAIN
        MODE = RecordKind.MODE
        sources = self.sources
        chain_groups: Dict[Tuple[str, str], List[int]] = {}
        seg_groups: Dict[Tuple[str, str, str], List[int]] = {}
        #: (source, chain) -> [record count, max activation] this batch.
        key_touch: Dict[Tuple[str, str], List[int]] = {}
        dup_indices: List[int] = []
        src_name: Optional[str] = None
        src_state: Optional[SourceState] = None
        for i in range(n):
            name = sources_col[i]
            if name != src_name:
                src_name = name
                src_state = sources.get(name)
                if src_state is None:
                    src_state = SourceState()
                    sources[name] = src_state
            src_state.records += 1
            ts = timestamps[i]
            if ts > src_state.last_seen_ns:
                src_state.last_seen_ns = ts
            src_state.gap_open = False
            seq = seqs[i]
            last = src_state.last_seq
            if seq > last:
                if seq > last + 1:
                    gap = seq - last - 1
                    src_state.seq_gaps += gap
                    src_state.note_missing(last + 1, seq)
                    outcome_at(i).seq_gap = gap
                src_state.last_seq = seq
            elif seq in src_state.missing:
                src_state.missing.discard(seq)
                src_state.seq_gaps -= 1
                src_state.reorders += 1
            else:
                src_state.duplicates += 1
                dup_indices.append(i)

            kind = kinds[i]
            if kind is SEGMENT:
                chain = chains_col[i]
                gkey = (name, chain, segments_col[i])
                grp = seg_groups.get(gkey)
                if grp is None:
                    seg_groups[gkey] = [i]
                else:
                    grp.append(i)
            elif kind is CHAIN:
                chain = chains_col[i]
                tkey = (name, chain)
                grp = chain_groups.get(tkey)
                if grp is None:
                    chain_groups[tkey] = [i]
                else:
                    grp.append(i)
            elif kind is MODE:
                src_state.level = levels[i]
                continue
            else:
                continue
            t = key_touch.get((name, chain))
            if t is None:
                key_touch[(name, chain)] = [1, activations[i]]
            else:
                t[0] += 1
                a = activations[i]
                if a > t[1]:
                    t[1] = a

        # Pass 2a: per-key record counters (count and max commute).
        chain_state = self.chain_state
        for (source, chain), (count, max_act) in key_touch.items():
            state = chain_state(source, chain)
            state.records += count
            if max_act > state.last_activation:
                state.last_activation = max_act

        # Pass 2b: (m,k) automata, one vectorized run per key.
        for (source, chain), idxs in chain_groups.items():
            state = chain_state(source, chain)
            misses = [verdicts[i] == "miss" for i in idxs]
            violated, margins = state.automaton.record_many(misses)
            margin_exhausted = state.margin_exhausted
            for j, i in enumerate(idxs):
                margin = margins[j]
                if violated[j]:
                    out = outcome_at(i)
                    out.mk_violation = True
                    margin_exhausted = True
                elif margin <= 0 and not margin_exhausted:
                    margin_exhausted = True
                    out = outcome_at(i)
                    out.margin_exhausted_now = True
                else:
                    if margin > 0:
                        margin_exhausted = False
                    out = flagged.get(i)
                if out is not None:
                    out.margin = margin
            state.margin_exhausted = margin_exhausted

        # Pass 2c: per-segment verdicts, windows, histograms.
        window_records_cfg = config.window_records
        latency_windows_cfg = config.latency_windows
        for (source, chain, segment), idxs in seg_groups.items():
            state = chain_state(source, chain)
            seg = state.segments.get(segment)
            if seg is None:
                seg = _SegmentState(
                    alpha=config.alpha,
                    budget_ns=config.budget_for(segment),
                )
                state.segments[segment] = seg
            seg_verdicts = seg.verdicts
            budget = seg.budget_ns
            samples: List[int] = []
            if budget is None:
                for i in idxs:
                    verdict = verdicts[i]
                    seg_verdicts[verdict] = seg_verdicts.get(verdict, 0) + 1
                    latency = latencies[i]
                    if latency is not None:
                        samples.append(latency)
            else:
                win_records = seg.win_records
                win_over = seg.win_over
                consec = seg.consec_over_windows
                for i in idxs:
                    verdict = verdicts[i]
                    seg_verdicts[verdict] = seg_verdicts.get(verdict, 0) + 1
                    latency = latencies[i]
                    if latency is None:
                        continue
                    samples.append(latency)
                    win_records += 1
                    if latency > budget:
                        win_over += 1
                    if win_records >= window_records_cfg:
                        over = win_over > WINDOW_OVER_FRACTION * win_records
                        win_records = 0
                        win_over = 0
                        if over:
                            consec += 1
                            if consec % latency_windows_cfg == 0:
                                outcome_at(i).latency_window_over_streak = (
                                    consec
                                )
                        else:
                            consec = 0
                seg.win_records = win_records
                seg.win_over = win_over
                seg.consec_over_windows = consec
            if samples:
                seg.hist.add_many(samples)

        if not flagged:
            return []
        for i in dup_indices:
            out = flagged.get(i)
            if out is not None:
                out.duplicate = True
        return [flagged[i] for i in sorted(flagged)]

    # ------------------------------------------------------------------
    # Fleet-wide summaries
    # ------------------------------------------------------------------
    def chain_summary(self) -> List[dict]:
        """Per-key (m,k) status, sorted by key (reporting/CLI)."""
        rows = []
        for source, chain in self.keys():
            state = self.chain_state(source, chain)
            automaton = state.automaton
            rows.append({
                "source": source,
                "chain": chain,
                "mk": f"({automaton.m},{automaton.k})",
                "activations": automaton.total,
                "misses": automaton.total_misses,
                "violations": automaton.violations,
                "margin": automaton.margin,
                "records": state.records,
            })
        return rows

    def segment_percentiles(self) -> Dict[str, dict]:
        """Fleet-wide per-segment latency percentiles (merged sketches)."""
        merged: Dict[str, StreamingHistogram] = {}
        for shard in self.shards:
            for state in shard.values():
                for name, seg in state.segments.items():
                    sketch = merged.get(name)
                    if sketch is None:
                        sketch = StreamingHistogram(alpha=self.config.alpha)
                        merged[name] = sketch
                    sketch.merge(seg.hist)
        return {
            name: merged[name].percentiles() for name in sorted(merged)
        }

    def total_violations(self) -> int:
        """Sum of (m,k) violations across every key."""
        return sum(
            state.automaton.violations
            for shard in self.shards for state in shard.values()
        )

    def violations_by_source(self) -> Dict[str, int]:
        """Cumulative (m,k) violations per source (the adaptive control
        plane's canary-regression signal)."""
        counts: Dict[str, int] = {}
        for shard in self.shards:
            for (source, _chain), state in shard.items():
                counts[source] = (
                    counts.get(source, 0) + state.automaton.violations
                )
        return counts

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able exact state; inverse of :meth:`restore`."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "config": self.config.to_json(),
            "applied": self.applied,
            "shards": [
                [
                    [source, chain, shard[(source, chain)].to_json()]
                    for source, chain in sorted(shard)
                ]
                for shard in self.shards
            ],
            "sources": {
                name: self.sources[name].to_json()
                for name in sorted(self.sources)
            },
        }

    _KNOWN_FIELDS = frozenset(
        ("schema", "config", "applied", "shards", "sources")
    )

    @classmethod
    def restore(cls, data: dict) -> "ChainStateStore":
        """Rebuild a store from :meth:`snapshot` output.

        Raises :class:`~repro.telemetry.records.SchemaVersionError` for
        a missing/unknown schema identifier (checked before anything
        else is read); unknown extra fields warn and are skipped.
        """
        if not isinstance(data, dict):
            raise SchemaVersionError("store snapshot", type(data).__name__,
                                     SNAPSHOT_SCHEMA)
        if data.get("schema") != SNAPSHOT_SCHEMA:
            raise SchemaVersionError(
                "store snapshot", data.get("schema"), SNAPSHOT_SCHEMA
            )
        _warn_unknown_fields("store snapshot", data, cls._KNOWN_FIELDS)
        config = StoreConfig.from_json(data["config"])
        store = cls(config)
        store.applied = data["applied"]
        if len(data["shards"]) != config.n_shards:
            raise ValueError("snapshot shard count does not match config")
        for index, entries in enumerate(data["shards"]):
            shard = store.shards[index]
            for source, chain, state in entries:
                shard[(source, chain)] = ChainState.from_json(
                    state, config.alpha
                )
        for name, state in data["sources"].items():
            store.sources[name] = SourceState.from_json(state)
        return store

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ChainStateStore keys={len(self)} shards={self.config.n_shards} "
            f"applied={self.applied}>"
        )
