"""The telemetry wire format: one flat record per monitored event.

A :class:`TelemetryRecord` is the unit every producer (local monitors,
remote monitors, chain runtimes, the degradation manager, heartbeat
timers) publishes and the ingestion service consumes.  The format is
deliberately *flat and positional* -- ten fields, no nesting -- so it
survives transports that only move tuples (multiprocessing queues,
JSON lines, shared-memory rings) and so encoding stays off the monitor
hot path's critical section.

Wire schema ``repro-telemetry/1``: a record is the JSON array

    [kind, source, chain, segment, activation, latency_ns, verdict,
     level, timestamp_ns, seq]

with ``kind`` one of :class:`RecordKind`'s values, ``source`` the
vehicle/process identity, ``seq`` a per-source monotonic sequence
number (the store uses it for gap accounting), and ``timestamp_ns`` the
producer's clock.  Unused fields carry ``""`` / ``None`` -- never
omitted, so field positions are stable across kinds.
"""

from __future__ import annotations

import enum
import json
from typing import Iterable, Iterator, List, Optional, Tuple

#: Schema identifier for persisted record streams.
WIRE_SCHEMA = "repro-telemetry/1"

#: Number of positional fields in one wire record.
WIRE_FIELDS = 10


class SchemaVersionError(ValueError):
    """A persisted document carries a schema this build cannot read.

    Raised *before* any state is touched, with the offending and the
    supported identifiers in the message -- never an obscure ``KeyError``
    halfway through a restore.  Unknown *extra* fields inside a known
    schema are tolerated with a warning instead (additive evolution).
    """

    def __init__(self, context: str, found, supported: str):
        super().__init__(
            f"{context}: unsupported schema {found!r} "
            f"(this build reads {supported!r})"
        )
        self.found = found
        self.supported = supported


class RecordKind(enum.Enum):
    """What kind of event a record describes."""

    #: One segment activation outcome (OK/RECOVERED/MISS/SKIPPED).
    SEGMENT = "segment"
    #: One finalized chain activation verdict (``verdict`` ok/miss).
    CHAIN = "chain"
    #: A raised temporal exception (diagnostics; no (m,k) effect).
    EXCEPTION = "exception"
    #: A degradation-mode transition (``level`` = new mode).
    MODE = "mode"
    #: Liveness beacon from a source with no other traffic.
    HEARTBEAT = "heartbeat"


#: Fast path: wire string -> RecordKind (Enum call is surprisingly slow).
_KIND_BY_VALUE = {kind.value: kind for kind in RecordKind}


class TelemetryRecord:
    """One telemetry event in memory.

    ``__slots__`` keeps the per-record footprint small: an ingest run
    holds tens of thousands of these at a time in the bounded queue.
    """

    __slots__ = (
        "kind", "source", "chain", "segment", "activation",
        "latency_ns", "verdict", "level", "timestamp_ns", "seq",
    )

    def __init__(
        self,
        kind: RecordKind,
        source: str,
        chain: str = "",
        segment: str = "",
        activation: int = -1,
        latency_ns: Optional[int] = None,
        verdict: str = "",
        level: str = "",
        timestamp_ns: int = 0,
        seq: int = 0,
    ):
        self.kind = kind
        self.source = source
        self.chain = chain
        self.segment = segment
        self.activation = activation
        self.latency_ns = latency_ns
        self.verdict = verdict
        self.level = level
        self.timestamp_ns = timestamp_ns
        self.seq = seq

    # ------------------------------------------------------------------
    def to_wire(self) -> Tuple:
        """The positional wire tuple (JSON-serializable)."""
        return (
            self.kind.value, self.source, self.chain, self.segment,
            self.activation, self.latency_ns, self.verdict, self.level,
            self.timestamp_ns, self.seq,
        )

    @classmethod
    def from_wire(cls, fields: Tuple) -> "TelemetryRecord":
        """Rebuild a record from its wire tuple; validates the kind."""
        if len(fields) != WIRE_FIELDS:
            raise ValueError(
                f"wire record needs {WIRE_FIELDS} fields, got {len(fields)}"
            )
        kind = _KIND_BY_VALUE.get(fields[0])
        if kind is None:
            raise ValueError(f"unknown record kind {fields[0]!r}")
        record = cls.__new__(cls)
        record.kind = kind
        (_, record.source, record.chain, record.segment, record.activation,
         record.latency_ns, record.verdict, record.level,
         record.timestamp_ns, record.seq) = fields
        return record

    def encode_line(self) -> str:
        """One compact JSON line (the persisted/transport form)."""
        return json.dumps(self.to_wire(), separators=(",", ":"))

    @classmethod
    def decode_line(cls, line: str) -> "TelemetryRecord":
        """Inverse of :meth:`encode_line`."""
        return cls.from_wire(tuple(json.loads(line)))

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, TelemetryRecord):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __hash__(self) -> int:
        return hash(self.to_wire())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TelemetryRecord {self.kind.value} {self.source} "
            f"{self.chain or self.segment} n={self.activation} "
            f"verdict={self.verdict!r} seq={self.seq}>"
        )


def encode_stream(records: Iterable[TelemetryRecord]) -> str:
    """Encode *records* as a schema-headed JSONL document."""
    lines = [json.dumps({"schema": WIRE_SCHEMA})]
    lines.extend(record.encode_line() for record in records)
    return "\n".join(lines) + "\n"


def decode_stream(text: str) -> Iterator[TelemetryRecord]:
    """Decode a document produced by :func:`encode_stream`."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return
    header = json.loads(lines[0])
    if not isinstance(header, dict):
        raise ValueError(f"unsupported telemetry stream header {lines[0]!r}")
    if header.get("schema") != WIRE_SCHEMA:
        raise SchemaVersionError(
            "telemetry stream", header.get("schema"), WIRE_SCHEMA
        )
    for line in lines[1:]:
        yield TelemetryRecord.decode_line(line)


def segment_record(
    source: str,
    chain: str,
    segment: str,
    activation: int,
    latency_ns: Optional[int],
    verdict: str,
    timestamp_ns: int,
    seq: int,
) -> TelemetryRecord:
    """Convenience constructor for the most common record kind."""
    return TelemetryRecord(
        kind=RecordKind.SEGMENT, source=source, chain=chain, segment=segment,
        activation=activation, latency_ns=latency_ns, verdict=verdict,
        timestamp_ns=timestamp_ns, seq=seq,
    )
