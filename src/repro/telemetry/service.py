"""The telemetry service: queue -> store -> alert engine, one object.

:class:`TelemetryService` is the single-process reference deployment of
the subsystem: producers call :meth:`ingest` (or :meth:`ingest_many`),
an explicit :meth:`pump` drains the bounded queue into the sharded
store and feeds the alert engine, and :meth:`poll` runs the time-based
rules (heartbeat, queue health).  Everything is deterministic given the
record stream -- no wall clock is read anywhere -- which is what lets
the fault campaign assert byte-identical alert logs across serial and
parallel runs.

The conservation law every caller may assert (and the CLI does):

    offered == applied + dropped + pending

i.e. **no silent drops** -- see :meth:`accounting_ok`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

from repro.telemetry.alerts import AlertEngine, AlertLog, AlertPolicy
from repro.telemetry.batch import RecordBatch
from repro.telemetry.pipeline import DEFAULT_CAPACITY, IngestQueue
from repro.telemetry.records import TelemetryRecord
from repro.telemetry.store import ChainStateStore, StoreConfig

#: Environment override for :attr:`ServiceConfig.engine`.
ENGINE_ENV = "REPRO_TELEMETRY_ENGINE"

#: Recognized ingest engines.
ENGINES = ("batched", "scalar")


@dataclass
class ServiceConfig:
    """All knobs of one service instance."""

    queue_capacity: int = DEFAULT_CAPACITY
    store: StoreConfig = field(default_factory=StoreConfig)
    alerts: AlertPolicy = field(default_factory=AlertPolicy)
    #: Pump automatically whenever the queue holds this many records
    #: (None: only explicit pump() calls drain the queue).
    auto_pump_batch: Optional[int] = 4096
    #: Ingest engine: "batched" drains through the columnar
    #: :meth:`~repro.telemetry.store.ChainStateStore.apply_batch` hot
    #: path, "scalar" through the per-record reference ``apply``.  None
    #: resolves from the ``REPRO_TELEMETRY_ENGINE`` environment
    #: variable, defaulting to "batched".  Both engines produce
    #: byte-identical store snapshots and alert logs (the differential
    #: suite's headline claim).
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.auto_pump_batch is not None and self.auto_pump_batch < 1:
            raise ValueError("auto_pump_batch must be >= 1 or None")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown telemetry engine {self.engine!r} "
                f"(expected one of {ENGINES})"
            )


class TelemetryService:
    """Bounded ingestion into a sharded chain-state store with alerting."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        engine = self.config.engine
        if engine is None:
            engine = os.environ.get(ENGINE_ENV, "batched")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown telemetry engine {engine!r} "
                f"(expected one of {ENGINES})"
            )
        #: Which ingest engine pump() routes through (fixed at
        #: construction; ``self.engine`` is the *alert* engine).
        self.ingest_engine = engine
        self.queue = IngestQueue(self.config.queue_capacity)
        self.store = ChainStateStore(self.config.store)
        self.engine = AlertEngine(self.config.alerts)
        #: Highest record timestamp applied so far (data time).
        self.watermark_ns = 0
        #: Records applied through *this service's* queue.  Distinct
        #: from ``store.applied``, which is a lifetime counter that
        #: survives snapshot/restore: the accounting law below must
        #: balance against this queue, not against a previous life.
        self.applied_here = 0

    # ------------------------------------------------------------------
    @property
    def alert_log(self) -> AlertLog:
        return self.engine.log

    # ------------------------------------------------------------------
    def ingest(self, record: TelemetryRecord) -> bool:
        """Offer one record; False when it was dropped (and counted)."""
        accepted = self.queue.offer(record)
        batch = self.config.auto_pump_batch
        if batch is not None and len(self.queue) >= batch:
            self.pump(batch)
        return accepted

    def ingest_many(self, records: Iterable[TelemetryRecord]) -> int:
        """Offer a stream; returns how many were accepted."""
        accepted = 0
        for record in records:
            if self.ingest(record):
                accepted += 1
        return accepted

    def ingest_batch(
        self, records: Union[RecordBatch, List[TelemetryRecord]]
    ) -> int:
        """Offer a whole batch at once; returns how many were accepted.

        The bulk analogue of :meth:`ingest_many` with identical
        conservation accounting (offered == applied + dropped +
        pending always holds).  A list is bulk-offered to the queue and
        drained by the next pump; a :class:`RecordBatch` stays columnar
        end to end -- it is applied synchronously after flushing any
        queued records (so record order is preserved), with the
        bounded-queue capacity still governing acceptance.  Chunking
        differs from per-record :meth:`ingest` (which pumps mid-stream
        at ``auto_pump_batch``), but the applied record stream, and
        hence store state and alert log, are identical whenever the
        queue never saturates.
        """
        if isinstance(records, RecordBatch):
            queue = self.queue
            if queue.depth:
                self.pump()
            n = len(records)
            room = queue.capacity
            accepted = n if n <= room else room
            queue.offered += n
            queue.accepted += accepted
            if accepted < n:
                queue.dropped_by_reason["queue_full"] = (
                    queue.dropped_by_reason.get("queue_full", 0)
                    + (n - accepted)
                )
                records = records.slice(accepted)
            if accepted > queue.high_watermark:
                queue.high_watermark = accepted
            queue.drained += accepted
            if accepted:
                self._apply_columns(records)
            return accepted
        accepted = self.queue.offer_many(records)
        batch = self.config.auto_pump_batch
        if batch is not None and len(self.queue) >= batch:
            self.pump()
        return accepted

    def _apply_columns(self, columns: RecordBatch) -> None:
        """Apply a columnar batch and feed flagged facts to alerting."""
        outcomes = self.store.apply_batch(columns)
        watermark = max(columns.timestamps)
        if watermark > self.watermark_ns:
            self.watermark_ns = watermark
        observe = self.engine.observe
        for outcome in outcomes:
            observe(outcome)
        self.applied_here += len(columns)

    def pump(self, max_records: Optional[int] = None) -> int:
        """Drain up to *max_records* into the store; returns the count.

        Routes through the configured ingest engine; both engines leave
        the store, watermark, and alert log byte-identical.
        """
        batch = self.queue.drain(max_records)
        if not batch:
            return 0
        if self.ingest_engine == "batched":
            self._apply_columns(RecordBatch.from_records(batch))
            return len(batch)
        else:
            store = self.store
            observe = self.engine.observe
            watermark = self.watermark_ns
            for record in batch:
                outcome = store.apply(record)
                if record.timestamp_ns > watermark:
                    watermark = record.timestamp_ns
                observe(outcome)
            self.watermark_ns = watermark
        self.applied_here += len(batch)
        return len(batch)

    def poll(self, now_ns: Optional[int] = None) -> int:
        """Run the time-based rules at *now_ns* (default: the data
        watermark -- correct for replay; a live deployment passes its
        clock)."""
        if now_ns is None:
            now_ns = self.watermark_ns
        return self.engine.poll(now_ns, self.store, self.queue)

    def drain(self) -> None:
        """Pump everything, then poll once at the final watermark."""
        self.pump()
        self.poll()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def applied(self) -> int:
        return self.applied_here

    @property
    def dropped(self) -> int:
        return self.queue.dropped

    @property
    def pending(self) -> int:
        return self.queue.depth

    def accounting_ok(self) -> bool:
        """No silent drops: offered == applied + dropped + pending."""
        return (
            self.queue.accounting_ok()
            and self.queue.offered
            == self.applied_here + self.queue.dropped + self.queue.depth
        )

    def stats(self) -> dict:
        """Counter snapshot for reports (plain types)."""
        return {
            "offered": self.queue.offered,
            "applied": self.applied_here,
            "dropped": self.queue.dropped,
            "pending": self.queue.depth,
            "accounting_ok": self.accounting_ok(),
            "keys": len(self.store),
            "sources": len(self.store.sources),
            "violations": self.store.total_violations(),
            "alerts": len(self.engine.log),
            "alerts_by_rule": self.engine.log.counts_by_rule(),
            "queue": self.queue.stats(),
        }

    # ------------------------------------------------------------------
    # Snapshot / restore (store state; the queue must be drained first)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Exact store snapshot.  Refuses while records are pending --
        a snapshot that silently forgot queued records would violate
        the accounting law on restore."""
        if self.queue.depth:
            raise RuntimeError(
                f"cannot snapshot with {self.queue.depth} records pending; "
                f"pump() first"
            )
        return self.store.snapshot()

    def restore(self, data: dict) -> None:
        """Replace the store with a snapshot's state."""
        self.store = ChainStateStore.restore(data)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TelemetryService applied={self.applied} "
            f"pending={self.pending} alerts={len(self.engine.log)}>"
        )
