"""Incremental (m,k) window automata for the chain-state store.

:class:`~repro.core.weakly_hard.MissWindow` is the reference
implementation: a deque of the last k outcomes.  At fleet-ingest rates
that representation is needlessly heavy -- one Python object per
outcome, O(k) memory per monitored key -- so the store uses this
bit-packed automaton instead: the window is one integer (bit i set =
the i-th most recent outcome was a miss), a record is two shifts and a
mask, and the whole state serializes to four integers.

``tests/test_telemetry_automaton.py`` proves record-for-record
equivalence against :class:`MissWindow` on random verdict streams
(hypothesis), which is what licenses the replacement.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.weakly_hard import MKConstraint

#: Below this many outcomes :meth:`MKAutomaton.record_many` loops over
#: :meth:`MKAutomaton.record` instead of paying numpy array setup.
_VECTOR_MIN = 16


class MKAutomaton:
    """O(1) online (m,k) checker over a bit-packed outcome window.

    Semantically identical to :class:`~repro.core.weakly_hard.MissWindow`:
    :meth:`record` returns True whenever the window of the last k
    outcomes holds more than m misses, and every such position counts
    one violation.
    """

    __slots__ = (
        "m", "k", "_state", "_mask", "_out_shift", "_filled",
        "misses_in_window", "total", "total_misses", "violations",
        "last_violation",
    )

    def __init__(self, constraint: Union[MKConstraint, Tuple[int, int]]):
        if isinstance(constraint, tuple):
            constraint = MKConstraint(*constraint)
        if not isinstance(constraint, MKConstraint):
            raise ValueError(
                f"MKAutomaton needs an MKConstraint or (m, k) tuple, "
                f"got {constraint!r}"
            )
        self.m = constraint.m
        self.k = constraint.k
        self._state = 0
        self._mask = (1 << constraint.k) - 1
        self._out_shift = constraint.k - 1
        self._filled = 0
        self.misses_in_window = 0
        self.total = 0
        self.total_misses = 0
        self.violations = 0
        #: Activation index (0-based record count) of the last violation,
        #: or -1.  The store keeps counts, not per-violation lists: a
        #: fleet key may violate millions of times over its lifetime.
        self.last_violation = -1

    @property
    def constraint(self) -> MKConstraint:
        """The checked constraint (reconstructed; not stored)."""
        return MKConstraint(self.m, self.k)

    @property
    def margin(self) -> int:
        """How many further misses the current window tolerates."""
        return self.m - self.misses_in_window

    @property
    def violated(self) -> bool:
        """True if the constraint was ever violated."""
        return self.violations > 0

    def record(self, miss: bool) -> bool:
        """Record one outcome; True if the window now violates."""
        if self._filled == self.k:
            # The outgoing (oldest) bit leaves the window.
            self.misses_in_window -= (self._state >> self._out_shift) & 1
        else:
            self._filled += 1
        if miss:
            self._state = ((self._state << 1) | 1) & self._mask
            self.misses_in_window += 1
            self.total_misses += 1
        else:
            self._state = (self._state << 1) & self._mask
        self.total += 1
        if self.misses_in_window > self.m:
            self.violations += 1
            self.last_violation = self.total - 1
            return True
        return False

    def record_many(
        self, misses: Sequence[bool]
    ) -> Tuple[List[bool], List[int]]:
        """Record a run of outcomes; returns (violated, margin) per outcome.

        Bit-for-bit equivalent to calling :meth:`record` in a loop
        (``tests/test_batched_store.py`` proves it with hypothesis,
        including window-boundary cases): the packed ``_state``, every
        counter, and the returned per-outcome verdicts are identical.
        The vectorized path reconstructs the buffered window, computes
        all windowed miss counts with one cumulative sum, and repacks
        the tail bits -- O(n + k) instead of n automaton steps.
        """
        n = len(misses)
        if n < _VECTOR_MIN:
            violated: List[bool] = []
            margins: List[int] = []
            m = self.m
            for miss in misses:
                violated.append(self.record(bool(miss)))
                margins.append(m - self.misses_in_window)
            return violated, margins
        k = self.k
        m = self.m
        filled0 = self._filled
        # Prior window, oldest outcome first, as 0/1.
        state = self._state
        prior = np.empty(filled0, dtype=np.int64)
        for i in range(filled0):
            prior[i] = (state >> (filled0 - 1 - i)) & 1
        new = np.asarray(misses, dtype=np.int64)
        full = np.concatenate((prior, new))
        csum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(full)))
        # Outcome j sits at position p = filled0 + j; its window covers
        # full[max(0, p-k+1) .. p].
        positions = np.arange(filled0, filled0 + n)
        starts = np.maximum(positions - k + 1, 0)
        in_window = csum[positions + 1] - csum[starts]
        violated_arr = in_window > m
        margins_arr = m - in_window
        # Fold the batch into the scalar counters.
        total0 = self.total
        self.total = total0 + n
        self.total_misses += int(new.sum())
        n_violations = int(violated_arr.sum())
        if n_violations:
            self.violations += n_violations
            last = int(np.nonzero(violated_arr)[0][-1])
            self.last_violation = total0 + last
        self.misses_in_window = int(in_window[-1])
        filled = min(k, filled0 + n)
        self._filled = filled
        # Repack the last `filled` outcomes (newest at bit 0).
        packed = 0
        for bit in full[len(full) - filled:]:
            packed = (packed << 1) | int(bit)
        self._state = packed
        return violated_arr.tolist(), margins_arr.tolist()

    def window_bits(self) -> List[bool]:
        """The buffered window, oldest outcome first (diagnostics)."""
        n = self._filled
        return [bool((self._state >> (n - 1 - i)) & 1) for i in range(n)]

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """JSON-able exact state (restored by :meth:`restore`)."""
        return {
            "m": self.m,
            "k": self.k,
            "state": self._state,
            "filled": self._filled,
            "misses_in_window": self.misses_in_window,
            "total": self.total,
            "total_misses": self.total_misses,
            "violations": self.violations,
            "last_violation": self.last_violation,
        }

    @classmethod
    def restore(cls, data: Dict[str, int]) -> "MKAutomaton":
        """Rebuild an automaton from :meth:`snapshot` output."""
        automaton = cls((data["m"], data["k"]))
        automaton._state = data["state"]
        automaton._filled = data["filled"]
        automaton.misses_in_window = data["misses_in_window"]
        automaton.total = data["total"]
        automaton.total_misses = data["total_misses"]
        automaton.violations = data["violations"]
        automaton.last_violation = data["last_violation"]
        return automaton

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MKAutomaton ({self.m},{self.k}) "
            f"misses={self.misses_in_window} total={self.total} "
            f"violations={self.violations}>"
        )
