"""Overload-hardened fleet gateway over the windowed uplink.

:class:`FleetGateway` fronts the durable
:class:`~repro.telemetry.uplink.ingest.UplinkIngestor` with sessions
(shared-secret HELLO handshake), per-source token-bucket rate limits,
bounded receive windows with explicit window-update backpressure, and
a NORMAL -> DEGRADED -> SAFE overload ladder that sheds by traffic
class (dashboards first, alerts never) with counted, announced -- never
silent -- rejection.  :mod:`repro.telemetry.gateway.chaos` verifies all
of it under the adversarial channel; :mod:`.status` renders the
operator dashboard; :mod:`.socket_server` serves the same object over
TCP.
"""

from repro.telemetry.gateway.chaos import (
    GATEWAY_TOKEN,
    GatewayChaosDriver,
    GatewayChaosScenario,
    gateway_scenarios,
)
from repro.telemetry.gateway.overload import (
    CLASS_ALERT,
    CLASS_DASHBOARD,
    CLASS_TELEMETRY,
    GatewayMode,
    OverloadLadder,
    OverloadPolicy,
    SHED_AT,
    classify,
)
from repro.telemetry.gateway.ratelimit import RateLimitConfig, TokenBucket
from repro.telemetry.gateway.service import FleetGateway, GatewayConfig
from repro.telemetry.gateway.status import (
    DEFAULT_STALE_AFTER_NS,
    render_status,
    status_report,
)

__all__ = [
    "CLASS_ALERT",
    "CLASS_DASHBOARD",
    "CLASS_TELEMETRY",
    "DEFAULT_STALE_AFTER_NS",
    "FleetGateway",
    "GATEWAY_TOKEN",
    "GatewayChaosDriver",
    "GatewayChaosScenario",
    "GatewayConfig",
    "GatewayMode",
    "OverloadLadder",
    "OverloadPolicy",
    "RateLimitConfig",
    "SHED_AT",
    "TokenBucket",
    "classify",
    "gateway_scenarios",
    "render_status",
    "status_report",
]
